"""Simulated NYC TLC trip-distance column (substitute for the January-2016 data).

The paper's second real-data experiment uses the ``trip_distance`` column of
the NYC yellow-cab January 2016 data (10,906,858 rows) multiplied by 1000,
with an exact mean of 4648.2.  The authors note the column is "highly-skewed
… the too big values and the too small values are highly clustered".

:class:`TripDistanceGenerator` synthesises a column with the same qualitative
structure at a configurable scale:

* a dominant cluster of short trips (log-normal around ~1.5 miles),
* a secondary cluster of airport-length trips (~10–20 miles),
* a sprinkle of bogus extreme values (GPS glitches of hundreds of miles),
* a spike of zero-distance records,

all multiplied by 1000 as in the paper.  See DESIGN.md §4 for the substitution
rationale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.base import GeneratedData
from repro.storage.blockstore import BlockStore

__all__ = ["TripDistanceGenerator"]


class TripDistanceGenerator:
    """Synthesises a skewed, clustered trip-distance column (scaled by 1000)."""

    def __init__(
        self,
        rows: int = 1_000_000,
        zero_fraction: float = 0.01,
        airport_fraction: float = 0.04,
        glitch_fraction: float = 0.0005,
        scale: float = 1000.0,
        seed: Optional[int] = None,
    ) -> None:
        if rows <= 0:
            raise ConfigurationError(f"rows must be positive, got {rows}")
        fractions = (zero_fraction, airport_fraction, glitch_fraction)
        if any(f < 0 for f in fractions) or sum(fractions) >= 1.0:
            raise ConfigurationError(
                "zero/airport/glitch fractions must be non-negative and sum below 1"
            )
        self.rows = int(rows)
        self.zero_fraction = float(zero_fraction)
        self.airport_fraction = float(airport_fraction)
        self.glitch_fraction = float(glitch_fraction)
        self.scale = float(scale)
        self.seed = seed

    def generate(self) -> GeneratedData:
        """Generate the scaled trip-distance column."""
        rng = np.random.default_rng(self.seed)
        choices = rng.random(self.rows)
        values = np.empty(self.rows, dtype=float)

        zero_cut = self.zero_fraction
        airport_cut = zero_cut + self.airport_fraction
        glitch_cut = airport_cut + self.glitch_fraction

        zero_mask = choices < zero_cut
        airport_mask = (choices >= zero_cut) & (choices < airport_cut)
        glitch_mask = (choices >= airport_cut) & (choices < glitch_cut)
        city_mask = choices >= glitch_cut

        values[zero_mask] = 0.0
        airport_count = int(airport_mask.sum())
        if airport_count:
            values[airport_mask] = rng.normal(14.0, 4.0, size=airport_count).clip(min=5.0)
        glitch_count = int(glitch_mask.sum())
        if glitch_count:
            values[glitch_mask] = rng.uniform(100.0, 600.0, size=glitch_count)
        city_count = int(city_mask.sum())
        if city_count:
            values[city_mask] = rng.lognormal(mean=np.log(1.6), sigma=0.75, size=city_count)

        values *= self.scale
        return GeneratedData(
            values=values,
            true_mean=float(values.mean()),
            true_std=float(values.std()),
            description=f"simulated TLC trip_distance x{self.scale:g} (rows={self.rows})",
        )

    def generate_store(
        self, name: str = "tlc_trips", block_count: int = 10, column: str = "trip_distance"
    ) -> BlockStore:
        """Generate and evenly partition the column."""
        data = self.generate()
        return BlockStore.from_array(name, data.values, block_count=block_count, column=column)
