"""Simulated TPC-H LINEITEM columns (substitute for the 100 GB benchmark data).

The paper's efficiency experiment (Section VIII-F) runs AVG over a LINEITEM
column of a 100 GB TPC-H database (600 million rows).  Generating genuine
TPC-H data requires the dbgen tool and far more storage than a laptop-scale
reproduction needs, so this module synthesises columns with the same
*distributional* properties defined by the TPC-H specification:

* ``l_quantity`` — uniform integers in [1, 50].
* ``l_extendedprice`` — ``l_quantity * p_retailprice`` where the part retail
  price follows the spec's ladder ``90000 + (partkey/10) % 20001 + 100 *
  (partkey % 1000)`` scaled by 1/100.
* ``l_discount`` — uniform in {0.00, 0.01, ..., 0.10}.
* ``l_tax`` — uniform in {0.00, ..., 0.08}.

Relative runtimes of the samplers (what the experiment measures) depend on
sample handling, not on the absolute table size, so the substitution preserves
the comparison; see DESIGN.md §4.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.storage.table import Table
from repro.storage.blockstore import BlockStore

__all__ = ["LineitemGenerator"]


class LineitemGenerator:
    """Synthesises a LINEITEM-like table at a configurable row count."""

    #: columns produced by :meth:`generate_table`
    COLUMNS = ("l_quantity", "l_extendedprice", "l_discount", "l_tax")

    def __init__(self, rows: int, seed: Optional[int] = None) -> None:
        if rows <= 0:
            raise ConfigurationError(f"rows must be positive, got {rows}")
        self.rows = int(rows)
        self.seed = seed

    def generate_table(self, name: str = "lineitem") -> Table:
        """Generate the four numeric LINEITEM columns."""
        rng = np.random.default_rng(self.seed)
        quantity = rng.integers(1, 51, size=self.rows).astype(float)
        partkey = rng.integers(1, 200_001, size=self.rows)
        retail_price = (90_000 + (partkey / 10) % 20_001 + 100 * (partkey % 1_000)) / 100.0
        extended_price = quantity * retail_price
        discount = rng.integers(0, 11, size=self.rows) / 100.0
        tax = rng.integers(0, 9, size=self.rows) / 100.0
        return Table.from_mapping(
            name,
            {
                "l_quantity": quantity,
                "l_extendedprice": extended_price,
                "l_discount": discount,
                "l_tax": tax,
            },
        )

    def generate_store(
        self,
        name: str = "lineitem",
        block_count: int = 10,
        default_column: str = "l_quantity",
    ) -> BlockStore:
        """Generate and partition the table into ``block_count`` blocks."""
        table = self.generate_table(name)
        return BlockStore.from_table(table, block_count=block_count,
                                     default_column=default_column)

    @staticmethod
    def expected_quantity_mean() -> float:
        """Exact mean of ``l_quantity`` (uniform integers 1..50)."""
        return 25.5

    @staticmethod
    def expected_quantity_std() -> float:
        """Exact standard deviation of ``l_quantity``."""
        # Discrete uniform on 1..50: variance = (n^2 - 1) / 12 with n = 50.
        return float(np.sqrt((50 ** 2 - 1) / 12.0))
