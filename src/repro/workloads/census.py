"""Simulated census salary column (substitute for the Census-Income KDD data).

The paper's first real-data experiment (Section VIII-G) uses the wage column
of the 1994/95 US Census population survey: 299,285 rows with an exact mean of
1740.38 and a strongly right-skewed shape dominated by zeros / small values
with a long high-income tail.  The data set is not redistributable here, so
:class:`SalaryGenerator` synthesises a column with the same size, a similar
mean, and the same qualitative structure:

* a large zero/near-zero spike (respondents without wage income),
* a log-normal body of ordinary wages,
* a sparse extreme tail of very high earners.

ISLA's behaviour on this experiment is driven entirely by that structure
(small values dominate counts, rare huge values dominate variance), so the
substitution preserves what the experiment tests; see DESIGN.md §4.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.base import GeneratedData
from repro.storage.blockstore import BlockStore

__all__ = ["SalaryGenerator"]


class SalaryGenerator:
    """Synthesises a right-skewed, zero-inflated wage column."""

    #: row count of the original Census-Income (KDD) extract
    DEFAULT_ROWS = 299_285

    def __init__(
        self,
        rows: int = DEFAULT_ROWS,
        zero_fraction: float = 0.55,
        body_median: float = 2500.0,
        body_sigma: float = 0.9,
        tail_fraction: float = 0.002,
        tail_scale: float = 60_000.0,
        seed: Optional[int] = None,
    ) -> None:
        if rows <= 0:
            raise ConfigurationError(f"rows must be positive, got {rows}")
        if not 0.0 <= zero_fraction < 1.0:
            raise ConfigurationError(f"zero_fraction must lie in [0, 1), got {zero_fraction}")
        if not 0.0 <= tail_fraction < 1.0 - zero_fraction:
            raise ConfigurationError(
                "tail_fraction must be non-negative and leave room for the body"
            )
        self.rows = int(rows)
        self.zero_fraction = float(zero_fraction)
        self.body_median = float(body_median)
        self.body_sigma = float(body_sigma)
        self.tail_fraction = float(tail_fraction)
        self.tail_scale = float(tail_scale)
        self.seed = seed

    def generate(self) -> GeneratedData:
        """Generate the wage column and report its exact empirical mean/std."""
        rng = np.random.default_rng(self.seed)
        values = np.zeros(self.rows, dtype=float)
        choices = rng.random(self.rows)
        body_mask = choices >= self.zero_fraction
        tail_mask = choices >= 1.0 - self.tail_fraction
        body_mask &= ~tail_mask
        body_count = int(body_mask.sum())
        tail_count = int(tail_mask.sum())
        if body_count:
            values[body_mask] = rng.lognormal(
                mean=np.log(self.body_median), sigma=self.body_sigma, size=body_count
            )
        if tail_count:
            values[tail_mask] = self.tail_scale * (1.0 + rng.pareto(2.5, size=tail_count))
        return GeneratedData(
            values=values,
            true_mean=float(values.mean()),
            true_std=float(values.std()),
            description=(
                f"simulated census wages (rows={self.rows}, "
                f"zero_fraction={self.zero_fraction:g})"
            ),
        )

    def generate_store(
        self, name: str = "salary", block_count: int = 10, column: str = "wage"
    ) -> BlockStore:
        """Generate and evenly partition the column."""
        data = self.generate()
        return BlockStore.from_array(name, data.values, block_count=block_count, column=column)
