"""Non-i.i.d. multi-block workloads (paper Section VIII-D).

The paper's non-i.i.d. experiment generates five blocks, each from its own
normal distribution: N(100, 20^2), N(50, 10^2), N(80, 30^2), N(150, 60^2),
N(120, 40^2), 10^8 rows each.  :class:`NonIIDWorkload` reproduces this at a
configurable scale and also supports arbitrary per-block distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.storage.blockstore import BlockStore
from repro.workloads.base import Workload

__all__ = ["BlockSpec", "NonIIDWorkload"]


@dataclass(frozen=True)
class BlockSpec:
    """Specification of one block's generating distribution."""

    workload: Workload
    rows: int

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ConfigurationError(f"block rows must be positive, got {self.rows}")


#: the five block distributions of the paper's Section VIII-D experiment
PAPER_NONIID_PARAMS: tuple[tuple[float, float], ...] = (
    (100.0, 20.0),
    (50.0, 10.0),
    (80.0, 30.0),
    (150.0, 60.0),
    (120.0, 40.0),
)


class NonIIDWorkload:
    """Generates a block store where every block has its own distribution."""

    def __init__(self, specs: Sequence[BlockSpec], seed: Optional[int] = None) -> None:
        if not specs:
            raise ConfigurationError("NonIIDWorkload requires at least one block spec")
        self.specs = list(specs)
        self.seed = seed

    # ---------------------------------------------------------- construction
    @classmethod
    def paper_blocks(
        cls, rows_per_block: int = 100_000, seed: Optional[int] = None
    ) -> "NonIIDWorkload":
        """The exact five-block setup of Section VIII-D at a configurable scale."""
        from repro.workloads.synthetic import NormalWorkload

        specs = [
            BlockSpec(NormalWorkload(rows_per_block, mean=mu, std=sigma), rows_per_block)
            for mu, sigma in PAPER_NONIID_PARAMS
        ]
        return cls(specs, seed=seed)

    # ------------------------------------------------------------------ API
    @property
    def total_rows(self) -> int:
        """Total rows across all blocks."""
        return sum(spec.rows for spec in self.specs)

    def true_mean(self) -> float:
        """Row-weighted population mean across blocks."""
        weighted = sum(spec.rows * spec.workload.expected_mean() for spec in self.specs)
        return weighted / self.total_rows

    def generate_store(
        self, name: str = "noniid", seed: Optional[int] = None, column: str = "value"
    ) -> BlockStore:
        """Generate every block and assemble the store."""
        effective_seed = self.seed if seed is None else seed
        seed_sequence = np.random.SeedSequence(effective_seed)
        child_seeds = seed_sequence.spawn(len(self.specs))
        arrays: List[np.ndarray] = []
        for spec, child in zip(self.specs, child_seeds):
            rng = np.random.default_rng(child)
            previous_size = spec.workload.size
            spec.workload.size = spec.rows
            try:
                arrays.append(np.asarray(spec.workload._generate(rng), dtype=float))
            finally:
                spec.workload.size = previous_size
        return BlockStore.from_block_arrays(name, arrays, column=column)

    def describe(self) -> str:
        """One-line description for experiment reports."""
        parts = ", ".join(spec.workload.describe() for spec in self.specs)
        return f"noniid([{parts}])"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
