"""Named workload registry used by the experiment CLI and examples."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.workloads.base import Workload
from repro.workloads.synthetic import (
    ExponentialWorkload,
    LogNormalWorkload,
    MixtureWorkload,
    NormalWorkload,
    ParetoWorkload,
    UniformWorkload,
)

__all__ = ["WORKLOADS", "register_workload", "get_workload"]

WorkloadFactory = Callable[[int, int], Workload]


def _paper_default(size: int, seed: int) -> Workload:
    return NormalWorkload(size, mean=100.0, std=20.0, seed=seed)


def _exponential(size: int, seed: int) -> Workload:
    return ExponentialWorkload(size, rate=0.1, seed=seed)


def _uniform(size: int, seed: int) -> Workload:
    return UniformWorkload(size, low=1.0, high=199.0, seed=seed)


def _lognormal(size: int, seed: int) -> Workload:
    return LogNormalWorkload(size, mu=4.0, sigma=0.8, seed=seed)


def _pareto(size: int, seed: int) -> Workload:
    return ParetoWorkload(size, shape=3.0, scale=50.0, seed=seed)


def _bimodal(size: int, seed: int) -> Workload:
    components = [
        NormalWorkload(size, mean=80.0, std=10.0),
        NormalWorkload(size, mean=140.0, std=15.0),
    ]
    return MixtureWorkload(size, components, weights=[0.7, 0.3], seed=seed)


#: registry of named factories ``name -> f(size, seed) -> Workload``
WORKLOADS: Dict[str, WorkloadFactory] = {
    "paper-normal": _paper_default,
    "exponential": _exponential,
    "uniform": _uniform,
    "lognormal": _lognormal,
    "pareto": _pareto,
    "bimodal": _bimodal,
}


def register_workload(name: str, factory: WorkloadFactory) -> None:
    """Register an additional named workload factory."""
    if not name:
        raise ConfigurationError("workload name must be non-empty")
    WORKLOADS[name] = factory


def get_workload(name: str, size: int, seed: int = 0) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        factory = WORKLOADS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from exc
    return factory(size, seed)
