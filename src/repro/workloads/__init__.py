"""Workload generators for every experiment in the paper's Section VIII.

All generators are deterministic given a seed, return plain numpy arrays or
:class:`~repro.storage.blockstore.BlockStore` objects, and record the exact
population mean so experiments can compare against a golden truth without a
full scan (the paper does the same with synthetic data).

Real data sets the paper uses (US Census salary, NYC TLC trip distances,
TPC-H LINEITEM) are not redistributable / not available offline, so this
package ships *simulated* equivalents whose shape (skewness, outlier
structure, scale) matches the published descriptions.  See DESIGN.md §4.
"""

from repro.workloads.synthetic import (
    NormalWorkload,
    ExponentialWorkload,
    UniformWorkload,
    LogNormalWorkload,
    MixtureWorkload,
    ParetoWorkload,
)
from repro.workloads.noniid import NonIIDWorkload, BlockSpec
from repro.workloads.tpch import LineitemGenerator
from repro.workloads.census import SalaryGenerator
from repro.workloads.tlc import TripDistanceGenerator
from repro.workloads.base import Workload, GeneratedData
from repro.workloads.registry import WORKLOADS, get_workload, register_workload

__all__ = [
    "Workload",
    "GeneratedData",
    "NormalWorkload",
    "ExponentialWorkload",
    "UniformWorkload",
    "LogNormalWorkload",
    "MixtureWorkload",
    "ParetoWorkload",
    "NonIIDWorkload",
    "BlockSpec",
    "LineitemGenerator",
    "SalaryGenerator",
    "TripDistanceGenerator",
    "WORKLOADS",
    "get_workload",
    "register_workload",
]
