"""Common workload interfaces."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.storage.blockstore import BlockStore

__all__ = ["GeneratedData", "Workload"]


@dataclass(frozen=True)
class GeneratedData:
    """A generated column together with its known population statistics."""

    values: np.ndarray
    true_mean: float
    true_std: float
    description: str

    @property
    def size(self) -> int:
        """Number of generated rows."""
        return int(self.values.size)

    def to_store(self, name: str, block_count: int = 10, column: str = "value") -> BlockStore:
        """Partition the generated column into an evenly-blocked store."""
        return BlockStore.from_array(name, self.values, block_count=block_count, column=column)


class Workload(abc.ABC):
    """A reproducible data generator.

    Subclasses implement :meth:`_generate`; the base class handles seeding,
    sizing and wrapping the result in :class:`GeneratedData`.
    """

    #: human-readable workload name (subclasses override)
    name: str = "workload"

    def __init__(self, size: int, seed: Optional[int] = None) -> None:
        if size <= 0:
            raise ConfigurationError(f"workload size must be positive, got {size}")
        self.size = int(size)
        self.seed = seed

    # ------------------------------------------------------------------ API
    def generate(self, seed: Optional[int] = None) -> GeneratedData:
        """Generate the column; ``seed`` overrides the constructor seed."""
        effective_seed = self.seed if seed is None else seed
        rng = np.random.default_rng(effective_seed)
        values = np.asarray(self._generate(rng), dtype=float)
        if values.size != self.size:
            raise ConfigurationError(
                f"{type(self).__name__} produced {values.size} rows, expected {self.size}"
            )
        return GeneratedData(
            values=values,
            true_mean=self.expected_mean(),
            true_std=self.expected_std(),
            description=self.describe(),
        )

    def generate_store(
        self,
        name: str,
        block_count: int = 10,
        seed: Optional[int] = None,
        column: str = "value",
    ) -> BlockStore:
        """Generate and partition into a block store in one call."""
        return self.generate(seed=seed).to_store(name, block_count=block_count, column=column)

    # ------------------------------------------------------------ overrides
    @abc.abstractmethod
    def _generate(self, rng: np.random.Generator) -> np.ndarray:
        """Produce ``self.size`` values using ``rng``."""

    @abc.abstractmethod
    def expected_mean(self) -> float:
        """Analytic population mean of the generating distribution."""

    @abc.abstractmethod
    def expected_std(self) -> float:
        """Analytic population standard deviation of the generating distribution."""

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        return f"{self.name}(size={self.size})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
