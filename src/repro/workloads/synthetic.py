"""Synthetic single-distribution workloads.

The paper's default workload is ``N(100, 20^2)`` (Section VIII); Tables VI and
VII use exponential and uniform data respectively.  Log-normal, Pareto and
mixture workloads are provided in addition because the paper motivates ISLA
with skewed/outlier-heavy data, and they are used by the examples and the
ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.base import Workload

__all__ = [
    "NormalWorkload",
    "ExponentialWorkload",
    "UniformWorkload",
    "LogNormalWorkload",
    "ParetoWorkload",
    "MixtureWorkload",
]


class NormalWorkload(Workload):
    """``N(mu, sigma^2)`` — the paper's default data set (mu=100, sigma=20)."""

    name = "normal"

    def __init__(
        self,
        size: int,
        mean: float = 100.0,
        std: float = 20.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(size, seed)
        if std < 0:
            raise ConfigurationError(f"std must be non-negative, got {std}")
        self.mean = float(mean)
        self.std = float(std)

    def _generate(self, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(self.mean, self.std, size=self.size)

    def expected_mean(self) -> float:
        return self.mean

    def expected_std(self) -> float:
        return self.std

    def describe(self) -> str:
        return f"normal(mu={self.mean:g}, sigma={self.std:g}, size={self.size})"


class ExponentialWorkload(Workload):
    """Exponential with rate ``gamma`` — Table VI (mean ``1/gamma``)."""

    name = "exponential"

    def __init__(self, size: int, rate: float = 0.1, seed: Optional[int] = None) -> None:
        super().__init__(size, seed)
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    def _generate(self, rng: np.random.Generator) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=self.size)

    def expected_mean(self) -> float:
        return 1.0 / self.rate

    def expected_std(self) -> float:
        return 1.0 / self.rate

    def describe(self) -> str:
        return f"exponential(gamma={self.rate:g}, size={self.size})"


class UniformWorkload(Workload):
    """Uniform on ``[low, high]`` — Table VII uses [1, 199] (mean 100)."""

    name = "uniform"

    def __init__(
        self,
        size: int,
        low: float = 1.0,
        high: float = 199.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(size, seed)
        if high <= low:
            raise ConfigurationError(f"high must exceed low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def _generate(self, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=self.size)

    def expected_mean(self) -> float:
        return (self.low + self.high) / 2.0

    def expected_std(self) -> float:
        return (self.high - self.low) / math.sqrt(12.0)

    def describe(self) -> str:
        return f"uniform(low={self.low:g}, high={self.high:g}, size={self.size})"


class LogNormalWorkload(Workload):
    """Log-normal with underlying ``N(mu, sigma^2)`` — a skewed stress test."""

    name = "lognormal"

    def __init__(
        self,
        size: int,
        mu: float = 0.0,
        sigma: float = 1.0,
        scale: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(size, seed)
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.scale = float(scale)

    def _generate(self, rng: np.random.Generator) -> np.ndarray:
        return self.scale * rng.lognormal(self.mu, self.sigma, size=self.size)

    def expected_mean(self) -> float:
        return self.scale * math.exp(self.mu + self.sigma ** 2 / 2.0)

    def expected_std(self) -> float:
        variance = (math.exp(self.sigma ** 2) - 1.0) * math.exp(2 * self.mu + self.sigma ** 2)
        return self.scale * math.sqrt(variance)

    def describe(self) -> str:
        return (
            f"lognormal(mu={self.mu:g}, sigma={self.sigma:g}, "
            f"scale={self.scale:g}, size={self.size})"
        )


class ParetoWorkload(Workload):
    """Pareto (heavy-tailed) workload; models extreme outlier columns."""

    name = "pareto"

    def __init__(
        self,
        size: int,
        shape: float = 3.0,
        scale: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(size, seed)
        if shape <= 2.0:
            raise ConfigurationError(
                f"shape must exceed 2 so mean and variance exist, got {shape}"
            )
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    def _generate(self, rng: np.random.Generator) -> np.ndarray:
        # numpy's pareto() is the Lomax form; add 1 and rescale for classic Pareto.
        return self.scale * (1.0 + rng.pareto(self.shape, size=self.size))

    def expected_mean(self) -> float:
        return self.scale * self.shape / (self.shape - 1.0)

    def expected_std(self) -> float:
        shape = self.shape
        variance = (self.scale ** 2) * shape / ((shape - 1.0) ** 2 * (shape - 2.0))
        return math.sqrt(variance)

    def describe(self) -> str:
        return f"pareto(shape={self.shape:g}, scale={self.scale:g}, size={self.size})"


class MixtureWorkload(Workload):
    """A finite mixture of other workloads (superimposed normals, etc.).

    The paper argues real data are often "generated by superimposing several
    normal distributions" (Section VII-B); this workload builds exactly that.
    """

    name = "mixture"

    def __init__(
        self,
        size: int,
        components: Sequence[Workload],
        weights: Optional[Sequence[float]] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(size, seed)
        if not components:
            raise ConfigurationError("mixture requires at least one component")
        if weights is None:
            weights = [1.0] * len(components)
        if len(weights) != len(components):
            raise ConfigurationError("weights and components must have equal length")
        weight_array = np.asarray(weights, dtype=float)
        if np.any(weight_array < 0) or weight_array.sum() == 0:
            raise ConfigurationError("weights must be non-negative and not all zero")
        self.components = list(components)
        self.weights = weight_array / weight_array.sum()

    def _generate(self, rng: np.random.Generator) -> np.ndarray:
        assignment = rng.choice(len(self.components), size=self.size, p=self.weights)
        values = np.empty(self.size, dtype=float)
        for index, component in enumerate(self.components):
            mask = assignment == index
            count = int(mask.sum())
            if count == 0:
                continue
            # Delegate to the component's sampler with a sub-rng for determinism.
            sub_rng = np.random.default_rng(rng.integers(0, 2 ** 32))
            component_size = component.size
            component.size = count
            try:
                values[mask] = component._generate(sub_rng)
            finally:
                component.size = component_size
        return values

    def expected_mean(self) -> float:
        return float(
            sum(w * c.expected_mean() for w, c in zip(self.weights, self.components))
        )

    def expected_std(self) -> float:
        mean = self.expected_mean()
        second_moment = sum(
            w * (c.expected_std() ** 2 + c.expected_mean() ** 2)
            for w, c in zip(self.weights, self.components)
        )
        return math.sqrt(max(0.0, second_moment - mean ** 2))

    def describe(self) -> str:
        parts = ", ".join(component.describe() for component in self.components)
        return f"mixture([{parts}], size={self.size})"
