"""Accuracy-comparison experiments: Tables III–VII and Sections VIII-D / VIII-G."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.core.pre_estimation import PreEstimator
from repro.experiments.harness import (
    DEFAULT_BLOCKS,
    DEFAULT_DATA_SIZE,
    ExperimentResult,
    compare_methods,
)
from repro.extensions.noniid import NonIIDAggregator
from repro.sampling import (
    MeasureBiasedBoundaryAggregator,
    MeasureBiasedValueAggregator,
    StratifiedAggregator,
    UniformAggregator,
)
from repro.workloads.census import SalaryGenerator
from repro.workloads.noniid import NonIIDWorkload
from repro.workloads.synthetic import ExponentialWorkload, NormalWorkload, UniformWorkload
from repro.workloads.tlc import TripDistanceGenerator

__all__ = [
    "run_table5_uniform_stratified",
    "run_table3_accuracy",
    "run_table4_modulation",
    "run_noniid",
    "run_table6_exponential",
    "run_table7_uniform",
    "run_real_data",
]

_PAPER_MEAN = 100.0
_PAPER_STD = 20.0


def _paper_store(size: int, block_count: int, seed: int, name: str = "normal"):
    workload = NormalWorkload(size, mean=_PAPER_MEAN, std=_PAPER_STD, seed=seed)
    return workload.generate_store(name, block_count=block_count)


def run_table5_uniform_stratified(
    datasets: int = 5,
    data_size: int = DEFAULT_DATA_SIZE,
    block_count: int = DEFAULT_BLOCKS,
    precision: float = 0.5,
    seed: int = 0,
) -> ExperimentResult:
    """Table V — ISLA at one third of the sampling rate vs US and STS.

    US and STS use the full Eq.-1 rate ``r``; ISLA receives ``r / 3``.
    """
    result = ExperimentResult(
        experiment_id="table5",
        title="Table V: ISLA (r/3) vs uniform and stratified sampling (r); true mean = 100",
        columns=["ISLA", "US", "STS", "ISLA_error", "US_error", "STS_error"],
        notes=f"desired precision e = {precision}; ISLA uses one third of the sample budget",
    )
    config = ISLAConfig(precision=precision)
    for index in range(datasets):
        store = _paper_store(data_size, block_count, seed=seed + index, name=f"normal{index}")
        comparison = compare_methods(
            ["ISLA", "US", "STS"], store, config, seed=seed + 50 + index,
            isla_rate_fraction=1.0 / 3.0,
        )
        result.add_row(
            f"dataset {index + 1}",
            ISLA=comparison.answers["ISLA"],
            US=comparison.answers["US"],
            STS=comparison.answers["STS"],
            ISLA_error=comparison.error("ISLA"),
            US_error=comparison.error("US"),
            STS_error=comparison.error("STS"),
        )
    return result


def run_table3_accuracy(
    datasets: int = 10,
    data_size: int = DEFAULT_DATA_SIZE,
    block_count: int = DEFAULT_BLOCKS,
    precision: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    """Table III — accuracy of ISLA vs the measure-biased MV and MVB baselines."""
    result = ExperimentResult(
        experiment_id="table3",
        title="Table III: ISLA vs MV vs MVB accuracy; true mean = 100, e = 0.1",
        columns=["ISLA", "MV", "MVB"],
        notes="paper averages: ISLA 100.03, MV 104.00, MVB 100.52",
    )
    config = ISLAConfig(precision=precision)
    sums = {"ISLA": 0.0, "MV": 0.0, "MVB": 0.0}
    for index in range(datasets):
        store = _paper_store(data_size, block_count, seed=seed + index, name=f"normal{index}")
        comparison = compare_methods(
            ["ISLA", "MV", "MVB"], store, config, seed=seed + 70 + index
        )
        for method in sums:
            sums[method] += comparison.answers[method]
        result.add_row(
            f"dataset {index + 1}",
            ISLA=comparison.answers["ISLA"],
            MV=comparison.answers["MV"],
            MVB=comparison.answers["MVB"],
        )
    result.add_row(
        "average", **{method: total / datasets for method, total in sums.items()}
    )
    return result


def run_table4_modulation(
    data_size: int = DEFAULT_DATA_SIZE,
    block_count: int = DEFAULT_BLOCKS,
    precision: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    """Table IV — per-block partial answers: can ISLA modulate sketch0 towards µ?

    The paper records the ten partial answers of data set 1 together with
    ``sketch0`` and contrasts them with MV / MVB on the same blocks.
    """
    store = _paper_store(data_size, block_count, seed=seed, name="normal0")
    config = ISLAConfig(precision=precision)
    isla_result = ISLAAggregator(config, seed=seed + 70).aggregate_avg(store)
    mv = MeasureBiasedValueAggregator(seed=seed + 70)
    mvb = MeasureBiasedBoundaryAggregator(seed=seed + 70)

    result = ExperimentResult(
        experiment_id="table4",
        title="Table IV: per-block modulation abilities (partial answers); true mean = 100",
        columns=["ISLA_partial", "MV_partial", "MVB_partial", "count_S", "count_L", "iterations"],
        notes=f"sketch0 = {isla_result.sketch0:.4f}; final ISLA answer = {isla_result.value:.4f}",
    )
    rate = isla_result.sampling_rate
    for block_result, block in zip(isla_result.block_results, store.blocks):
        single = type(store).from_blocks(f"block{block.block_id}", [block])
        mv_answer = mv.aggregate(single, rate=rate).value
        mvb_answer = mvb.aggregate(single, rate=rate).value
        result.add_row(
            f"partial {block_result.block_id + 1}",
            ISLA_partial=block_result.estimate,
            MV_partial=mv_answer,
            MVB_partial=mvb_answer,
            count_S=float(block_result.count_s),
            count_L=float(block_result.count_l),
            iterations=float(block_result.iterations),
        )
    return result


def run_noniid(
    rows_per_block: int = 100_000,
    precision: float = 0.5,
    runs: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Section VIII-D — five blocks with different normal distributions.

    The exact block parameters of the paper are used: N(100,20²), N(50,10²),
    N(80,30²), N(150,60²), N(120,40²); the true row-weighted mean is 100.
    """
    workload = NonIIDWorkload.paper_blocks(rows_per_block=rows_per_block)
    result = ExperimentResult(
        experiment_id="noniid",
        title="Section VIII-D: non-i.i.d. blocks; true mean = 100",
        columns=["estimate", "abs_error"],
        notes=f"desired precision e = {precision}",
    )
    config = ISLAConfig(precision=precision)
    for run in range(runs):
        store = workload.generate_store(seed=seed + run)
        answer = NonIIDAggregator(config, seed=seed + 500 + run).aggregate_avg(store)
        result.add_row(
            f"run {run + 1}",
            estimate=answer.value,
            abs_error=abs(answer.value - workload.true_mean()),
        )
    return result


def run_table6_exponential(
    rates: Sequence[float] = (0.05, 0.1, 0.15, 0.2),
    data_size: int = DEFAULT_DATA_SIZE,
    block_count: int = DEFAULT_BLOCKS,
    precision: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    """Table VI — exponential distributions with rate gamma (true mean 1/gamma)."""
    result = ExperimentResult(
        experiment_id="table6",
        title="Table VI: exponential distributions (accurate mean = 1/gamma)",
        columns=["accurate", "ISLA", "MV", "MVB"],
    )
    config = ISLAConfig(precision=precision)
    for index, gamma in enumerate(rates):
        workload = ExponentialWorkload(data_size, rate=gamma, seed=seed + index)
        store = workload.generate_store(f"exp{index}", block_count=block_count)
        comparison = compare_methods(
            ["ISLA", "MV", "MVB"], store, config, seed=seed + 600 + index
        )
        result.add_row(
            f"gamma={gamma:g}",
            accurate=1.0 / gamma,
            ISLA=comparison.answers["ISLA"],
            MV=comparison.answers["MV"],
            MVB=comparison.answers["MVB"],
        )
    return result


def run_table7_uniform(
    datasets: int = 5,
    data_size: int = DEFAULT_DATA_SIZE,
    block_count: int = DEFAULT_BLOCKS,
    precision: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    """Table VII — uniform data on [1, 199] (true mean 100)."""
    result = ExperimentResult(
        experiment_id="table7",
        title="Table VII: uniform distribution on [1, 199]; true mean = 100",
        columns=["ISLA", "MV", "MVB"],
        notes="paper: MV ~ 132, MVB ~ 93, ISLA ~ 99.5-99.9",
    )
    config = ISLAConfig(precision=precision)
    for index in range(datasets):
        workload = UniformWorkload(data_size, low=1.0, high=199.0, seed=seed + index)
        store = workload.generate_store(f"uniform{index}", block_count=block_count)
        comparison = compare_methods(
            ["ISLA", "MV", "MVB"], store, config, seed=seed + 700 + index
        )
        result.add_row(
            f"dataset {index + 1}",
            ISLA=comparison.answers["ISLA"],
            MV=comparison.answers["MV"],
            MVB=comparison.answers["MVB"],
        )
    return result


def run_real_data(
    salary_rows: int = 299_285,
    trip_rows: int = 500_000,
    block_count: int = DEFAULT_BLOCKS,
    seed: int = 0,
) -> ExperimentResult:
    """Section VIII-G — real-data analogues (simulated salary and TLC columns).

    The baselines receive twice the sample budget ISLA gets, matching the
    paper (20,000 vs 10,000 samples on the salary data).
    """
    result = ExperimentResult(
        experiment_id="real_data",
        title="Section VIII-G: skewed real-data analogues (simulated; see DESIGN.md §4)",
        columns=["truth", "ISLA", "US", "STS", "MV", "MVB"],
        notes="ISLA uses half the sample budget of the baselines, as in the paper",
    )
    scenarios = [
        ("salary", SalaryGenerator(rows=salary_rows, seed=seed).generate_store(
            "salary", block_count=block_count)),
        ("tlc_trip", TripDistanceGenerator(rows=trip_rows, seed=seed).generate_store(
            "tlc", block_count=block_count)),
    ]
    for name, store in scenarios:
        truth = store.exact_mean()
        sigma = float(store.full_column().std())
        # Precision chosen so the baselines' Eq.-1 budget is ~20k samples.
        baseline_samples = 20_000
        baseline_rate = min(1.0, baseline_samples / store.total_rows)
        isla_rate = baseline_rate / 2.0
        config = ISLAConfig(precision=max(sigma / np.sqrt(baseline_samples) * 1.96, 1e-9))
        answers = {
            "ISLA": ISLAAggregator(config, seed=seed + 900).aggregate_avg(
                store, rate=isla_rate).value,
            "US": UniformAggregator(seed=seed + 901).aggregate(store, rate=baseline_rate).value,
            "STS": StratifiedAggregator(seed=seed + 902).aggregate(
                store, rate=baseline_rate).value,
            "MV": MeasureBiasedValueAggregator(seed=seed + 903).aggregate(
                store, rate=baseline_rate).value,
            "MVB": MeasureBiasedBoundaryAggregator(seed=seed + 904).aggregate(
                store, rate=baseline_rate).value,
        }
        result.add_row(name, truth=truth, **answers)
    return result
