"""Command-line entry point: ``python -m repro.experiments`` / ``isla-experiments``.

Examples
--------
List the available experiments::

    python -m repro.experiments --list

Run one experiment (paper-style table printed to stdout)::

    python -m repro.experiments table3

Run everything at a reduced scale::

    python -m repro.experiments all --data-size 100000

Emit machine-readable perf trajectories (enables telemetry for the run)::

    python -m repro.experiments table3 --metrics-out metrics.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro import obs
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = ["main", "build_parser"]

#: experiments whose runners accept a ``data_size`` keyword
_SIZE_AWARE = {
    "fig6a", "fig6b", "fig6c", "fig6d",
    "table3", "table4", "table5", "table6", "table7",
    "ablation-alpha", "ablation-q",
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="isla-experiments",
        description="Reproduce the tables and figures of the ISLA paper (ICDE 2019).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment identifiers to run (or 'all'); use --list to see them",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--data-size", type=int, default=None,
        help="override the per-data-set row count for the size-aware experiments",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base random seed (default 0)"
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="enable telemetry and write the metrics registry snapshot "
             "(counters + latency histograms) as JSON to PATH",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="enable telemetry for the run even without --metrics-out",
    )
    parser.add_argument(
        "--parallelism", type=int, default=None, metavar="N",
        help="partition-parallel scan width: shard block scans across the "
             "shared scan pool (default: serial; seeded answers are "
             "bit-identical at any width)",
    )
    serving = parser.add_argument_group(
        "serving", "options for the 'serve' entry point (query-serving benchmark)"
    )
    serving.add_argument(
        "--workers", type=int, default=4,
        help="worker threads of the QueryService (default 4)",
    )
    serving.add_argument(
        "--tables", type=int, default=3,
        help="synthetic tables in the serving workload (default 3)",
    )
    serving.add_argument(
        "--repeats", type=int, default=4,
        help="times each unique statement repeats in the workload (default 4)",
    )
    storage = parser.add_argument_group(
        "durable storage", "options for the 'save'/'load' entry points and "
        "'serve --data-dir' (crash-safe on-disk block stores)"
    )
    storage.add_argument(
        "--data-dir", type=str, default=None, metavar="DIR",
        help="directory of durable block stores: 'save' snapshots synthetic "
             "tables into it, 'load' opens and summarises it, 'serve' runs "
             "the benchmark against it (mmap scans)",
    )
    storage.add_argument(
        "--blocks", type=int, default=16, metavar="B",
        help="blocks per table written by the 'save' entry point (default 16)",
    )
    return parser


def _run_serve(args) -> str:
    """The ``serve`` entry point: the serving-subsystem throughput benchmark."""
    from repro.serve.bench import format_report, run_throughput_benchmark

    report = run_throughput_benchmark(
        data_size=args.data_size if args.data_size is not None else 200_000,
        table_count=args.tables,
        repeats=args.repeats,
        workers=args.workers,
        seed=args.seed,
        parallelism=args.parallelism,
        data_dir=args.data_dir,
    )
    return format_report(report)


def _require_data_dir(args, entry: str) -> str:
    if not args.data_dir:
        raise SystemExit(f"the '{entry}' entry point requires --data-dir DIR")
    return args.data_dir


def _run_save(args) -> str:
    """The ``save`` entry point: snapshot synthetic tables to durable storage."""
    from pathlib import Path

    import numpy as np

    from repro.query.engine import AQPEngine

    data_dir = Path(_require_data_dir(args, "save"))
    data_size = args.data_size if args.data_size is not None else 200_000
    rng = np.random.default_rng(args.seed)
    lines = [f"durable save → {data_dir}"]
    with AQPEngine(seed=args.seed) as engine:
        for index in range(args.tables):
            name = f"serve_t{index}"
            values = rng.normal(100.0 + 10.0 * index, 20.0, data_size)
            engine.register_array(name, values, block_count=args.blocks)
            engine.save(name, data_dir / name)
            lines.append(
                f"  {name}: {data_size} rows in {args.blocks} blocks "
                f"(version {engine.catalog.version(name)})"
            )
    return "\n".join(lines)


def _run_load(args) -> str:
    """The ``load`` entry point: open a data directory and summarise it."""
    from repro.query.engine import AQPEngine
    from repro.serve.bench import discover_store_directories

    data_dir = _require_data_dir(args, "load")
    lines = [f"durable load ← {data_dir}"]
    with AQPEngine(seed=args.seed) as engine:
        for directory in discover_store_directories(data_dir):
            name = engine.open(directory)
            durable = engine._durable[name]
            store = durable.store
            recovery = (
                f", recovered {durable.recovered_appends} logged append(s)"
                if durable.recovered_appends
                else ""
            )
            torn = (
                f", discarded {durable.recovered_torn_bytes} torn WAL byte(s)"
                if durable.recovered_torn_bytes
                else ""
            )
            lines.append(
                f"  {name}: {store.block_count} blocks, {store.total_rows} rows, "
                f"columns {list(store.column_names)}, "
                f"version {engine.catalog.version(name)} (mmap){recovery}{torn}"
            )
    return "\n".join(lines)


def _run_parallel(args) -> str:
    """The ``parallel`` entry point: serial vs partition-parallel scan bench."""
    from repro.parallel.bench import format_report, run_benchmark

    levels = (2, 4)
    if args.parallelism is not None:
        levels = tuple(sorted({2, 4, max(1, args.parallelism)}))
    report = run_benchmark(
        rows=args.data_size if args.data_size is not None else 400_000,
        seed=args.seed,
        parallelism_levels=levels,
    )
    return format_report(report)


def _run_one(identifier: str, data_size: Optional[int], seed: int) -> tuple:
    runner = get_experiment(identifier)
    kwargs = {"seed": seed}
    if data_size is not None and identifier in _SIZE_AWARE:
        kwargs["data_size"] = data_size
    with obs.stopwatch(f"experiment.{identifier}", seed=seed) as watch:
        result = runner(**kwargs)
    elapsed = watch.elapsed_seconds
    return f"{result.to_text()}\n(ran in {elapsed:.2f}s)\n", elapsed


def _write_metrics(path: str, per_experiment: Dict[str, float]) -> None:
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "experiments": per_experiment,
        "metrics": obs.get_telemetry().registry.snapshot(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("Available experiments:")
        for identifier, description in list_experiments().items():
            print(f"  {identifier:16s} {description}")
        print(f"  {'serve':16s} query-serving subsystem throughput benchmark "
              "(worker pool + precision-aware cache; --data-dir serves "
              "from durable stores)")
        print(f"  {'parallel':16s} partition-parallel scan benchmark "
              "(serial vs sharded, determinism check)")
        print(f"  {'save':16s} snapshot synthetic tables into --data-dir "
              "(atomic, crash-safe durable stores)")
        print(f"  {'load':16s} open the durable stores under --data-dir and "
              "summarise them (replays the WAL)")
        return 0

    if args.metrics_out or args.telemetry:
        obs.configure(enabled=True)

    identifiers = list(args.experiments)
    if len(identifiers) == 1 and identifiers[0].lower() == "all":
        identifiers = list(EXPERIMENTS)

    per_experiment: Dict[str, float] = {}
    for identifier in identifiers:
        if identifier.lower() == "serve":
            with obs.stopwatch("experiment.serve", seed=args.seed) as watch:
                text = _run_serve(args)
            per_experiment[identifier] = watch.elapsed_seconds
            print(text + "\n")
            continue
        if identifier.lower() == "parallel":
            with obs.stopwatch("experiment.parallel", seed=args.seed) as watch:
                text = _run_parallel(args)
            per_experiment[identifier] = watch.elapsed_seconds
            print(text + "\n")
            continue
        if identifier.lower() in ("save", "load"):
            runner = _run_save if identifier.lower() == "save" else _run_load
            with obs.stopwatch(f"experiment.{identifier}", seed=args.seed) as watch:
                text = runner(args)
            per_experiment[identifier] = watch.elapsed_seconds
            print(text + "\n")
            continue
        text, elapsed = _run_one(identifier, args.data_size, args.seed)
        per_experiment[identifier] = elapsed
        print(text)

    if args.metrics_out:
        _write_metrics(args.metrics_out, per_experiment)
        print(f"metrics written to {args.metrics_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
