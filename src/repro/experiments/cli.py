"""Command-line entry point: ``python -m repro.experiments`` / ``isla-experiments``.

Examples
--------
List the available experiments::

    python -m repro.experiments --list

Run one experiment (paper-style table printed to stdout)::

    python -m repro.experiments table3

Run everything at a reduced scale::

    python -m repro.experiments all --data-size 100000

Emit machine-readable perf trajectories (enables telemetry for the run)::

    python -m repro.experiments table3 --metrics-out metrics.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro import obs
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = ["main", "build_parser"]

#: experiments whose runners accept a ``data_size`` keyword
_SIZE_AWARE = {
    "fig6a", "fig6b", "fig6c", "fig6d",
    "table3", "table4", "table5", "table6", "table7",
    "ablation-alpha", "ablation-q",
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="isla-experiments",
        description="Reproduce the tables and figures of the ISLA paper (ICDE 2019).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment identifiers to run (or 'all'); use --list to see them",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--data-size", type=int, default=None,
        help="override the per-data-set row count for the size-aware experiments",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base random seed (default 0)"
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="enable telemetry and write the metrics registry snapshot "
             "(counters + latency histograms) as JSON to PATH",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="enable telemetry for the run even without --metrics-out",
    )
    parser.add_argument(
        "--parallelism", type=int, default=None, metavar="N",
        help="partition-parallel scan width: shard block scans across the "
             "shared scan pool (default: serial; seeded answers are "
             "bit-identical at any width)",
    )
    serving = parser.add_argument_group(
        "serving", "options for the 'serve' entry point (query-serving benchmark)"
    )
    serving.add_argument(
        "--workers", type=int, default=4,
        help="worker threads of the QueryService (default 4)",
    )
    serving.add_argument(
        "--tables", type=int, default=3,
        help="synthetic tables in the serving workload (default 3)",
    )
    serving.add_argument(
        "--repeats", type=int, default=4,
        help="times each unique statement repeats in the workload (default 4)",
    )
    return parser


def _run_serve(args) -> str:
    """The ``serve`` entry point: the serving-subsystem throughput benchmark."""
    from repro.serve.bench import format_report, run_throughput_benchmark

    report = run_throughput_benchmark(
        data_size=args.data_size if args.data_size is not None else 200_000,
        table_count=args.tables,
        repeats=args.repeats,
        workers=args.workers,
        seed=args.seed,
        parallelism=args.parallelism,
    )
    return format_report(report)


def _run_parallel(args) -> str:
    """The ``parallel`` entry point: serial vs partition-parallel scan bench."""
    from repro.parallel.bench import format_report, run_benchmark

    levels = (2, 4)
    if args.parallelism is not None:
        levels = tuple(sorted({2, 4, max(1, args.parallelism)}))
    report = run_benchmark(
        rows=args.data_size if args.data_size is not None else 400_000,
        seed=args.seed,
        parallelism_levels=levels,
    )
    return format_report(report)


def _run_one(identifier: str, data_size: Optional[int], seed: int) -> tuple:
    runner = get_experiment(identifier)
    kwargs = {"seed": seed}
    if data_size is not None and identifier in _SIZE_AWARE:
        kwargs["data_size"] = data_size
    with obs.stopwatch(f"experiment.{identifier}", seed=seed) as watch:
        result = runner(**kwargs)
    elapsed = watch.elapsed_seconds
    return f"{result.to_text()}\n(ran in {elapsed:.2f}s)\n", elapsed


def _write_metrics(path: str, per_experiment: Dict[str, float]) -> None:
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "experiments": per_experiment,
        "metrics": obs.get_telemetry().registry.snapshot(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("Available experiments:")
        for identifier, description in list_experiments().items():
            print(f"  {identifier:16s} {description}")
        print(f"  {'serve':16s} query-serving subsystem throughput benchmark "
              "(worker pool + precision-aware cache)")
        print(f"  {'parallel':16s} partition-parallel scan benchmark "
              "(serial vs sharded, determinism check)")
        return 0

    if args.metrics_out or args.telemetry:
        obs.configure(enabled=True)

    identifiers = list(args.experiments)
    if len(identifiers) == 1 and identifiers[0].lower() == "all":
        identifiers = list(EXPERIMENTS)

    per_experiment: Dict[str, float] = {}
    for identifier in identifiers:
        if identifier.lower() == "serve":
            with obs.stopwatch("experiment.serve", seed=args.seed) as watch:
                text = _run_serve(args)
            per_experiment[identifier] = watch.elapsed_seconds
            print(text + "\n")
            continue
        if identifier.lower() == "parallel":
            with obs.stopwatch("experiment.parallel", seed=args.seed) as watch:
                text = _run_parallel(args)
            per_experiment[identifier] = watch.elapsed_seconds
            print(text + "\n")
            continue
        text, elapsed = _run_one(identifier, args.data_size, args.seed)
        per_experiment[identifier] = elapsed
        print(text)

    if args.metrics_out:
        _write_metrics(args.metrics_out, per_experiment)
        print(f"metrics written to {args.metrics_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
