"""Parameter-impact experiments: Section VIII-A and Fig. 6(a)–(d)."""

from __future__ import annotations

from typing import Sequence

from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.experiments.harness import (
    DEFAULT_BLOCKS,
    DEFAULT_DATA_SIZE,
    ExperimentResult,
)
from repro.workloads.synthetic import NormalWorkload

__all__ = [
    "run_varying_data_size",
    "run_fig6a_precision",
    "run_fig6b_confidence",
    "run_fig6c_blocks",
    "run_fig6d_boundaries",
]

#: the paper's default synthetic population
_PAPER_MEAN = 100.0
_PAPER_STD = 20.0


def _paper_store(size: int, block_count: int, seed: int, name: str = "normal"):
    workload = NormalWorkload(size, mean=_PAPER_MEAN, std=_PAPER_STD, seed=seed)
    return workload.generate_store(name, block_count=block_count)


def run_varying_data_size(
    sizes: Sequence[int] = (100_000, 300_000, 1_000_000, 3_000_000),
    block_count: int = DEFAULT_BLOCKS,
    precision: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    """E1 — Section VIII-A "Varying Data Size" at laptop scale.

    The paper runs 10^8 … 10^12 rows and observes that the answers are
    essentially unaffected by the data size (the sample size of Eq. 1 depends
    only on sigma, e and beta).  The same claim is checked here on smaller
    sizes.
    """
    result = ExperimentResult(
        experiment_id="E1",
        title="Varying data size (paper Section VIII-A); true mean = 100",
        columns=["rows", "estimate", "abs_error", "sampling_rate", "sample_size"],
        notes="paper sizes were 1e8..1e12; answer quality is size-independent",
    )
    config = ISLAConfig(precision=precision)
    for index, size in enumerate(sizes):
        store = _paper_store(size, block_count, seed=seed + index)
        answer = ISLAAggregator(config, seed=1000 + index).aggregate_avg(store)
        result.add_row(
            f"M={size}",
            rows=float(size),
            estimate=answer.value,
            abs_error=abs(answer.value - _PAPER_MEAN),
            sampling_rate=answer.sampling_rate,
            sample_size=float(answer.sample_size),
        )
    return result


def run_fig6a_precision(
    precisions: Sequence[float] = (0.025, 0.05, 0.075, 0.1, 0.125, 0.15, 0.175, 0.2),
    data_size: int = DEFAULT_DATA_SIZE,
    block_count: int = DEFAULT_BLOCKS,
    datasets: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 6(a) — estimates diverge as the desired precision e is relaxed."""
    result = ExperimentResult(
        experiment_id="fig6a",
        title="Fig. 6(a): varying desired precision e; true mean = 100",
        columns=[f"dataset{i + 1}" for i in range(datasets)] + ["spread"],
    )
    stores = [
        _paper_store(data_size, block_count, seed=seed + i, name=f"normal{i}")
        for i in range(datasets)
    ]
    for precision in precisions:
        config = ISLAConfig(precision=precision)
        answers = [
            ISLAAggregator(config, seed=seed + 100 + i).aggregate_avg(store).value
            for i, store in enumerate(stores)
        ]
        values = {f"dataset{i + 1}": answer for i, answer in enumerate(answers)}
        values["spread"] = max(answers) - min(answers)
        result.add_row(f"e={precision:g}", **values)
    return result


def run_fig6b_confidence(
    confidences: Sequence[float] = (0.8, 0.9, 0.95, 0.98, 0.99),
    data_size: int = DEFAULT_DATA_SIZE,
    block_count: int = DEFAULT_BLOCKS,
    datasets: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 6(b) — estimates contract around the truth as confidence rises."""
    result = ExperimentResult(
        experiment_id="fig6b",
        title="Fig. 6(b): varying confidence beta; true mean = 100",
        columns=[f"dataset{i + 1}" for i in range(datasets)] + ["spread"],
    )
    stores = [
        _paper_store(data_size, block_count, seed=seed + i, name=f"normal{i}")
        for i in range(datasets)
    ]
    for confidence in confidences:
        config = ISLAConfig(precision=0.1, confidence=confidence)
        answers = [
            ISLAAggregator(config, seed=seed + 200 + i).aggregate_avg(store).value
            for i, store in enumerate(stores)
        ]
        values = {f"dataset{i + 1}": answer for i, answer in enumerate(answers)}
        values["spread"] = max(answers) - min(answers)
        result.add_row(f"beta={confidence:g}", **values)
    return result


def run_fig6c_blocks(
    block_counts: Sequence[int] = (6, 10, 14, 18, 24),
    data_size: int = DEFAULT_DATA_SIZE,
    datasets: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 6(c) — the number of blocks hardly affects the answers."""
    result = ExperimentResult(
        experiment_id="fig6c",
        title="Fig. 6(c): varying number of blocks b; true mean = 100",
        columns=[f"dataset{i + 1}" for i in range(datasets)] + ["spread"],
    )
    for block_count in block_counts:
        answers = []
        for i in range(datasets):
            store = _paper_store(data_size, block_count, seed=seed + i, name=f"normal{i}")
            answer = ISLAAggregator(ISLAConfig(precision=0.1), seed=seed + 300 + i)
            answers.append(answer.aggregate_avg(store).value)
        values = {f"dataset{i + 1}": value for i, value in enumerate(answers)}
        values["spread"] = max(answers) - min(answers)
        result.add_row(f"b={block_count}", **values)
    return result


def run_fig6d_boundaries(
    p1_values: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5),
    data_size: int = DEFAULT_DATA_SIZE,
    block_count: int = DEFAULT_BLOCKS,
    datasets: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 6(d) — accuracy vs. the inner boundary parameter p1 (p2 fixed at 2)."""
    result = ExperimentResult(
        experiment_id="fig6d",
        title="Fig. 6(d): varying data boundary parameter p1 (p2 = 2); true mean = 100",
        columns=[f"dataset{i + 1}" for i in range(datasets)] + ["spread"],
        notes="the paper recommends p1 in {0.5, 0.75}; large p1 degrades accuracy",
    )
    stores = [
        _paper_store(data_size, block_count, seed=seed + i, name=f"normal{i}")
        for i in range(datasets)
    ]
    for p1 in p1_values:
        config = ISLAConfig(precision=0.1, p1=p1, p2=2.0)
        answers = [
            ISLAAggregator(config, seed=seed + 400 + i).aggregate_avg(store).value
            for i, store in enumerate(stores)
        ]
        values = {f"dataset{i + 1}": answer for i, answer in enumerate(answers)}
        values["spread"] = max(answers) - min(answers)
        result.add_row(f"p1={p1:g}", **values)
    return result
