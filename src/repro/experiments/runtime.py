"""Runtime comparison on TPC-H-like data — paper Section VIII-F."""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.experiments.harness import DEFAULT_BLOCKS, ExperimentResult
from repro.sampling import (
    MeasureBiasedBoundaryAggregator,
    MeasureBiasedValueAggregator,
    StratifiedAggregator,
    UniformAggregator,
)
from repro.workloads.tpch import LineitemGenerator

__all__ = ["run_runtime_comparison"]


def run_runtime_comparison(
    rows: int = 1_000_000,
    block_count: int = DEFAULT_BLOCKS,
    column: str = "l_quantity",
    precision: float = 0.05,
    repetitions: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """E12 — wall-clock comparison of ISLA, MV, MVB, US and STS on LINEITEM.

    The paper uses a 100 GB TPC-H LINEITEM column (600 M rows) and reports the
    total time of 20 runs; here the column is synthesised at laptop scale (see
    DESIGN.md §4) and ``repetitions`` runs are timed.  Only *relative* times
    are meaningful.
    """
    store = LineitemGenerator(rows, seed=seed).generate_store(block_count=block_count)
    truth = store.exact_mean(column)
    config = ISLAConfig(precision=precision)

    methods = {
        "ISLA": lambda s: ISLAAggregator(config, seed=s).aggregate_avg(store, column).value,
        "MV": lambda s: MeasureBiasedValueAggregator(seed=s).aggregate(
            store, column, precision=precision).value,
        "MVB": lambda s: MeasureBiasedBoundaryAggregator(seed=s).aggregate(
            store, column, precision=precision).value,
        "US": lambda s: UniformAggregator(seed=s).aggregate(
            store, column, precision=precision).value,
        "STS": lambda s: StratifiedAggregator(seed=s).aggregate(
            store, column, precision=precision).value,
    }

    result = ExperimentResult(
        experiment_id="E12",
        title=f"Section VIII-F: runtime on simulated TPC-H LINEITEM ({rows} rows, "
              f"{repetitions} repetitions); true AVG(l_quantity) = {truth:.4f}",
        columns=["total_seconds", "per_run_seconds", "last_answer", "abs_error"],
        notes="paper ordering: US < ISLA < MV < MVB < STS (total run time)",
    )
    for name, runner in methods.items():
        started = time.perf_counter()
        answer = float("nan")
        for repetition in range(repetitions):
            answer = runner(seed + repetition)
        elapsed = time.perf_counter() - started
        result.add_row(
            name,
            total_seconds=elapsed,
            per_run_seconds=elapsed / repetitions,
            last_answer=answer,
            abs_error=abs(answer - truth),
        )
    return result
