"""Ablation studies of ISLA's own design choices (not in the paper).

Two ablations are reported alongside the paper's experiments:

* **A1 — fixed alpha vs iterated alpha.**  The paper motivates the iteration
  by arguing that any fixed leverage degree loses accuracy.  This ablation
  evaluates the static leverage-based estimator µ̂ = kα + c at several fixed
  α values against the full iterative scheme.
* **A2 — the leverage allocating parameter q.**  The deviation-driven q is
  ISLA's guard against a biased sketch; the ablation feeds the pipeline a
  deliberately biased sketch0 and compares estimates with q enabled and
  disabled (q forced to 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.accumulators import RegionMoments
from repro.core.boundaries import DataBoundaries
from repro.core.calculation import iteration_phase, sampling_phase
from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.core.leverage import allocate_q
from repro.core.objective import ObjectiveFunction
from repro.core.summarization import combine_partial_means
from repro.experiments.harness import DEFAULT_BLOCKS, DEFAULT_DATA_SIZE, ExperimentResult
from repro.workloads.synthetic import NormalWorkload

__all__ = ["run_alpha_ablation", "run_q_ablation"]


def run_alpha_ablation(
    alphas: Sequence[float] = (0.0, 0.1, 0.3, 0.5),
    data_size: int = DEFAULT_DATA_SIZE,
    block_count: int = DEFAULT_BLOCKS,
    datasets: int = 5,
    precision: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    """A1 — static leverage degrees vs the full iterative scheme."""
    result = ExperimentResult(
        experiment_id="A1",
        title="Ablation A1: fixed leverage degree alpha vs iterated alpha; true mean = 100",
        columns=[f"alpha={a:g}" for a in alphas] + ["ISLA_iterative"],
    )
    config = ISLAConfig(precision=precision)
    for index in range(datasets):
        workload = NormalWorkload(data_size, mean=100.0, std=20.0, seed=seed + index)
        store = workload.generate_store(f"normal{index}", block_count=block_count)
        rng = np.random.default_rng(seed + 40 + index)

        # Shared pre-estimation so the static and iterative variants see the
        # same boundaries and sampling rate.
        from repro.core.pre_estimation import PreEstimator

        pre = PreEstimator(config).estimate(store, None, rng)
        boundaries = DataBoundaries.from_sketch(
            pre.sketch0, pre.sigma, p1=config.p1, p2=config.p2
        )

        static_answers = {f"alpha={a:g}": [] for a in alphas}
        sizes = []
        for block in store.blocks:
            param_s, param_l, _ = sampling_phase(
                block, store.default_column, pre.sampling_rate, boundaries, rng
            )
            sizes.append(block.size)
            if param_s.is_empty or param_l.is_empty:
                for alpha in alphas:
                    static_answers[f"alpha={alpha:g}"].append(pre.sketch0)
                continue
            q = allocate_q(param_s.count, param_l.count, config)
            objective = ObjectiveFunction.from_moments(param_s, param_l, q)
            for alpha in alphas:
                static_answers[f"alpha={alpha:g}"].append(objective.l_estimator(alpha))

        values = {
            key: combine_partial_means(estimates, sizes)
            for key, estimates in static_answers.items()
        }
        values["ISLA_iterative"] = ISLAAggregator(config, seed=seed + 40 + index).aggregate_avg(
            store
        ).value
        result.add_row(f"dataset {index + 1}", **values)
    return result


def run_q_ablation(
    sketch_biases: Sequence[float] = (-1.0, -0.5, 0.5, 1.0),
    data_size: int = DEFAULT_DATA_SIZE,
    block_count: int = DEFAULT_BLOCKS,
    precision: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    """A2 — behaviour under a deliberately biased sketch0, with and without q."""
    result = ExperimentResult(
        experiment_id="A2",
        title="Ablation A2: deliberately biased sketch0, q enabled vs q forced to 1; "
              "true mean = 100",
        columns=["with_q", "without_q", "with_q_error", "without_q_error"],
        notes="q re-balances the leverage mass between S and L when the sketch deviates",
    )
    config = ISLAConfig(precision=precision)
    workload = NormalWorkload(data_size, mean=100.0, std=20.0, seed=seed)
    store = workload.generate_store("normal", block_count=block_count)
    sigma = 20.0

    for bias in sketch_biases:
        sketch0 = 100.0 + bias
        boundaries = DataBoundaries.from_sketch(sketch0, sigma, p1=config.p1, p2=config.p2)
        estimates_q, estimates_noq, sizes = [], [], []
        rng = np.random.default_rng(seed + 11)
        for block in store.blocks:
            param_s, param_l, _ = sampling_phase(
                block, store.default_column, 0.05, boundaries, rng
            )
            sizes.append(block.size)
            with_q = iteration_phase(param_s, param_l, sketch0, config)
            no_q_config = config.with_updates(q_moderate=1.0, q_severe=1.0)
            without_q = iteration_phase(param_s, param_l, sketch0, no_q_config)
            estimates_q.append(with_q.estimate)
            estimates_noq.append(without_q.estimate)
        with_q_value = combine_partial_means(estimates_q, sizes)
        without_q_value = combine_partial_means(estimates_noq, sizes)
        result.add_row(
            f"sketch bias {bias:+g}",
            with_q=with_q_value,
            without_q=without_q_value,
            with_q_error=abs(with_q_value - 100.0),
            without_q_error=abs(without_q_value - 100.0),
        )
    return result
