"""Common result containers and helpers for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.core.pre_estimation import PreEstimator
from repro.sampling import (
    MeasureBiasedBoundaryAggregator,
    MeasureBiasedValueAggregator,
    StratifiedAggregator,
    UniformAggregator,
)
from repro.storage.blockstore import BlockStore

__all__ = [
    "ExperimentRow",
    "ExperimentResult",
    "MethodComparison",
    "run_method",
    "resolve_rate",
    "DEFAULT_DATA_SIZE",
    "DEFAULT_BLOCKS",
]

#: default per-data-set size used by the runners (laptop scale; the paper
#: used 10^10 — the answer quality is size-independent, see experiment E1)
DEFAULT_DATA_SIZE = 400_000
#: default number of blocks (the paper's default b = 10)
DEFAULT_BLOCKS = 10


@dataclass(frozen=True)
class ExperimentRow:
    """One row of an experiment table."""

    label: str
    values: Dict[str, float]


@dataclass
class ExperimentResult:
    """A reproduced table or figure: labelled rows of named measurements."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[ExperimentRow] = field(default_factory=list)
    notes: str = ""

    def add_row(self, label: str, **values: float) -> None:
        """Append a row (missing columns render blank)."""
        self.rows.append(ExperimentRow(label=label, values=dict(values)))

    def column_values(self, column: str) -> List[float]:
        """All non-missing values of one column, row order preserved."""
        return [row.values[column] for row in self.rows if column in row.values]

    def to_text(self) -> str:
        """Render the result as an aligned plain-text table."""
        header = ["case"] + list(self.columns)
        body: List[List[str]] = []
        for row in self.rows:
            cells = [row.label]
            for column in self.columns:
                value = row.values.get(column)
                cells.append("" if value is None else f"{value:.6g}")
            body.append(cells)
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for cells in body:
            lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(cells))))
        if self.notes:
            lines.append("")
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


@dataclass(frozen=True)
class MethodComparison:
    """Answers of several methods on one data set (plus the ground truth)."""

    truth: float
    answers: Dict[str, float]
    elapsed: Dict[str, float] = field(default_factory=dict)

    def error(self, method: str) -> float:
        """Absolute error of one method."""
        return abs(self.answers[method] - self.truth)


def resolve_rate(
    store: BlockStore,
    config: ISLAConfig,
    column: Optional[str] = None,
    seed: int = 0,
) -> float:
    """The Eq.-1 sampling rate a given precision/confidence demands on a store."""
    pre = PreEstimator(config).estimate(store, column, np.random.default_rng(seed))
    return pre.sampling_rate


def run_method(
    method: str,
    store: BlockStore,
    config: ISLAConfig,
    seed: int,
    column: Optional[str] = None,
    rate: Optional[float] = None,
) -> float:
    """Run one named estimation method and return its AVG answer.

    ``rate`` overrides the method's own rate resolution (used by the Table V
    experiment, which hands ISLA a third of the baselines' budget).
    """
    method = method.upper()
    with obs.stopwatch(f"experiment.{method.lower()}", table=store.name):
        if method == "ISLA":
            aggregator = ISLAAggregator(config, seed=seed)
            return aggregator.aggregate_avg(store, column, rate=rate).value
        baselines = {
            "US": UniformAggregator,
            "STS": StratifiedAggregator,
            "MV": MeasureBiasedValueAggregator,
            "MVB": MeasureBiasedBoundaryAggregator,
        }
        if method in baselines:
            baseline = baselines[method](seed=seed)
            if rate is not None:
                return baseline.aggregate(store, column, rate=rate).value
            return baseline.aggregate(
                store, column, precision=config.precision, confidence=config.confidence
            ).value
        if method == "EXACT":
            return store.exact_mean(column)
        raise ValueError(f"unknown method {method!r}")


def compare_methods(
    methods: Sequence[str],
    store: BlockStore,
    config: ISLAConfig,
    seed: int,
    column: Optional[str] = None,
    isla_rate_fraction: Optional[float] = None,
) -> MethodComparison:
    """Run several methods on the same store under the same precision target.

    ``isla_rate_fraction`` (e.g. ``1/3``) reproduces the Table V setup where
    ISLA receives only a fraction of the rate the baselines use.
    """
    truth = store.exact_mean(column)
    answers: Dict[str, float] = {}
    base_rate = None
    if isla_rate_fraction is not None:
        base_rate = resolve_rate(store, config, column, seed=seed)
    for offset, method in enumerate(methods):
        rate = None
        if base_rate is not None:
            rate = base_rate * (isla_rate_fraction if method.upper() == "ISLA" else 1.0)
        # Give every method its own seed so methods that happen to share a
        # sampling mechanism (e.g. US and proportional STS) do not produce
        # byte-identical samples.
        answers[method.upper()] = run_method(
            method, store, config, seed=seed + 13 * (offset + 1), column=column, rate=rate
        )
    return MethodComparison(truth=truth, answers=answers)
