"""Experiment harness reproducing every table and figure of Section VIII.

Each experiment is a plain function returning an
:class:`~repro.experiments.harness.ExperimentResult`; the registry maps the
paper's artifact names (``fig6a``, ``table3`` …) to those functions, and the
CLI (``python -m repro.experiments``) runs them and prints paper-style tables.
The benchmark suite under ``benchmarks/`` wraps the same runners with
pytest-benchmark so timings are collected alongside the accuracy numbers.
"""

from repro.experiments.harness import ExperimentResult, ExperimentRow, MethodComparison
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments import figures, tables, runtime, ablations

__all__ = [
    "ExperimentResult",
    "ExperimentRow",
    "MethodComparison",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "figures",
    "tables",
    "runtime",
    "ablations",
]
