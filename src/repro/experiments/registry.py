"""Registry mapping experiment identifiers to runner functions."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.experiments import ablations, figures, runtime, tables
from repro.experiments.harness import ExperimentResult

__all__ = ["EXPERIMENTS", "get_experiment", "list_experiments"]

ExperimentRunner = Callable[..., ExperimentResult]

#: experiment id -> (runner, one-line description)
EXPERIMENTS: Dict[str, tuple[ExperimentRunner, str]] = {
    "e1": (figures.run_varying_data_size, "Section VIII-A: varying data size"),
    "fig6a": (figures.run_fig6a_precision, "Fig. 6(a): varying desired precision"),
    "fig6b": (figures.run_fig6b_confidence, "Fig. 6(b): varying confidence"),
    "fig6c": (figures.run_fig6c_blocks, "Fig. 6(c): varying number of blocks"),
    "fig6d": (figures.run_fig6d_boundaries, "Fig. 6(d): varying data boundaries"),
    "table3": (tables.run_table3_accuracy, "Table III: ISLA vs MV vs MVB accuracy"),
    "table4": (tables.run_table4_modulation, "Table IV: per-block modulation abilities"),
    "table5": (tables.run_table5_uniform_stratified, "Table V: ISLA (r/3) vs US vs STS"),
    "table6": (tables.run_table6_exponential, "Table VI: exponential distributions"),
    "table7": (tables.run_table7_uniform, "Table VII: uniform distributions"),
    "noniid": (tables.run_noniid, "Section VIII-D: non-i.i.d. blocks"),
    "realdata": (tables.run_real_data, "Section VIII-G: simulated real-data columns"),
    "runtime": (runtime.run_runtime_comparison, "Section VIII-F: runtime comparison"),
    "ablation-alpha": (ablations.run_alpha_ablation, "Ablation A1: fixed vs iterated alpha"),
    "ablation-q": (ablations.run_q_ablation, "Ablation A2: the allocating parameter q"),
}


def get_experiment(identifier: str) -> ExperimentRunner:
    """Look up a runner by identifier (case-insensitive)."""
    key = identifier.lower()
    if key not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {identifier!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key][0]


def list_experiments() -> Dict[str, str]:
    """Identifier -> description for every registered experiment."""
    return {key: description for key, (_, description) in EXPERIMENTS.items()}
