"""Text-file block I/O.

The paper's experiments store each block as a ``.txt`` file, one value per
line, and stream the file line by line while sampling.  These helpers
reproduce that layout so examples can round-trip a block store through disk
and so the streaming code path gets exercised.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterator, List, Union

import numpy as np

from repro.errors import StorageError
from repro.storage.block import Block
from repro.storage.blockstore import BlockStore

__all__ = [
    "write_blocks_to_directory",
    "read_blocks_from_directory",
    "iter_block_file",
]

_BLOCK_PREFIX = "block_"
_BLOCK_SUFFIX = ".txt"


def write_blocks_to_directory(
    store: BlockStore,
    directory: Union[str, os.PathLike],
    column: str | None = None,
) -> List[Path]:
    """Write every block of ``store`` as text files (one value per line).

    With ``column=None`` **all** columns are persisted: a single-column
    store keeps the paper's legacy ``block_<id>.txt`` layout, a
    multi-column store writes one ``block_<id>.<column>.txt`` file per
    column.  Passing an explicit ``column`` writes just that column in the
    legacy layout.  Values are written with ``repr`` so the round-trip
    through :func:`read_blocks_from_directory` is bit-identical.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    if column is not None:
        columns = (store.validate_column(column),)
    else:
        store.validate_column(None)  # non-empty store with its default column
        columns = store.column_names
    for name in columns:
        if os.sep in name or name.startswith(_BLOCK_PREFIX):
            raise StorageError(
                f"column {name!r} cannot be persisted as a text block file"
            )
    written: List[Path] = []
    for block in store.blocks:
        for name in columns:
            tag = "" if len(columns) == 1 else f".{name}"
            path = target / f"{_BLOCK_PREFIX}{block.block_id:04d}{tag}{_BLOCK_SUFFIX}"
            values = block.column(name)
            with path.open("w", encoding="ascii") as handle:
                for value in values:
                    handle.write(f"{float(value)!r}\n")
            written.append(path)
    return written


def iter_block_file(path: Union[str, os.PathLike]) -> Iterator[float]:
    """Stream the values of one block file line by line."""
    with Path(path).open("r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield float(line)
            except ValueError as exc:
                raise StorageError(f"invalid value {line!r} in block file {path}") from exc


def read_blocks_from_directory(
    directory: Union[str, os.PathLike],
    name: str = "blocks",
    column: str = "value",
) -> BlockStore:
    """Load every ``block_*.txt`` file in ``directory`` into a block store.

    Untagged ``block_<id>.txt`` files load as the single column ``column``
    (the paper's legacy layout); tagged ``block_<id>.<column>.txt`` files —
    the multi-column layout of :func:`write_blocks_to_directory` — are
    grouped by block id with every column restored.  The store's default
    column is ``column`` when present, otherwise the first column name.
    """
    source = Path(directory)
    if not source.is_dir():
        raise StorageError(f"{source} is not a directory")
    paths = sorted(source.glob(f"{_BLOCK_PREFIX}*{_BLOCK_SUFFIX}"))
    if not paths:
        raise StorageError(f"no block files found under {source}")
    columns_by_block: Dict[int, Dict[str, np.ndarray]] = {}
    for path in paths:
        stem = path.stem[len(_BLOCK_PREFIX):]
        id_part, _, tag = stem.partition(".")
        try:
            block_id = int(id_part)
        except ValueError as exc:
            raise StorageError(f"block file {path.name} has a non-numeric id") from exc
        column_name = tag or column
        per_block = columns_by_block.setdefault(block_id, {})
        if column_name in per_block:
            raise StorageError(
                f"duplicate column {column_name!r} for block {block_id} under {source}"
            )
        per_block[column_name] = np.fromiter(iter_block_file(path), dtype=float)
    column_sets = {tuple(sorted(cols)) for cols in columns_by_block.values()}
    if len(column_sets) != 1:
        raise StorageError(
            f"inconsistent column sets across block files under {source}: "
            f"{sorted(column_sets)}"
        )
    blocks = [
        Block(block_id=block_id, columns=cols)
        for block_id, cols in columns_by_block.items()
    ]
    (columns_present,) = column_sets
    default = column if column in columns_present else columns_present[0]
    return BlockStore.from_blocks(name, blocks, default_column=default)
