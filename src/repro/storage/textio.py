"""Text-file block I/O.

The paper's experiments store each block as a ``.txt`` file, one value per
line, and stream the file line by line while sampling.  These helpers
reproduce that layout so examples can round-trip a block store through disk
and so the streaming code path gets exercised.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator, List, Union

import numpy as np

from repro.errors import StorageError
from repro.storage.block import Block
from repro.storage.blockstore import BlockStore

__all__ = [
    "write_blocks_to_directory",
    "read_blocks_from_directory",
    "iter_block_file",
]

_BLOCK_PREFIX = "block_"
_BLOCK_SUFFIX = ".txt"


def write_blocks_to_directory(
    store: BlockStore,
    directory: Union[str, os.PathLike],
    column: str | None = None,
) -> List[Path]:
    """Write one ``block_<id>.txt`` file per block (one value per line)."""
    column = store.validate_column(column)
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for block in store.blocks:
        path = target / f"{_BLOCK_PREFIX}{block.block_id:04d}{_BLOCK_SUFFIX}"
        values = block.column(column)
        with path.open("w", encoding="ascii") as handle:
            for value in values:
                handle.write(f"{float(value)!r}\n")
        written.append(path)
    return written


def iter_block_file(path: Union[str, os.PathLike]) -> Iterator[float]:
    """Stream the values of one block file line by line."""
    with Path(path).open("r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield float(line)
            except ValueError as exc:
                raise StorageError(f"invalid value {line!r} in block file {path}") from exc


def read_blocks_from_directory(
    directory: Union[str, os.PathLike],
    name: str = "blocks",
    column: str = "value",
) -> BlockStore:
    """Load every ``block_*.txt`` file in ``directory`` into a block store."""
    source = Path(directory)
    if not source.is_dir():
        raise StorageError(f"{source} is not a directory")
    paths = sorted(source.glob(f"{_BLOCK_PREFIX}*{_BLOCK_SUFFIX}"))
    if not paths:
        raise StorageError(f"no block files found under {source}")
    blocks = []
    for path in paths:
        stem = path.stem[len(_BLOCK_PREFIX):]
        try:
            block_id = int(stem)
        except ValueError as exc:
            raise StorageError(f"block file {path.name} has a non-numeric id") from exc
        values = np.fromiter(iter_block_file(path), dtype=float)
        blocks.append(Block.from_values(block_id, values, column=column))
    return BlockStore.from_blocks(name, blocks, default_column=column)
