"""A thread-safe catalog mapping table names to block stores.

Beyond name resolution the catalog maintains a **monotonically increasing
per-table version**: registering, re-registering, dropping or touching a
table (the online extension touches on append) bumps the version.  The
serving layer's result cache uses ``(table, version)`` as its invalidation
token, and subscribers receive ``(event, name, version)`` callbacks so a
cache can also drop entries eagerly.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import StorageError, UnknownTableError
from repro.storage.blockstore import BlockStore

__all__ = ["Catalog"]

#: signature of a catalog-change subscriber: ``(event, table, version)``
CatalogListener = Callable[[str, str, int], None]


class Catalog:
    """Registry of the block stores known to a query session.

    The paper's system answers queries of the form ``SELECT AVG(column) FROM
    database WHERE desired_precision``; the catalog resolves the ``FROM``
    clause to a :class:`BlockStore`.  All mutating and resolving operations
    are guarded by one re-entrant lock so concurrent query workers can share
    a session safely.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._stores: Dict[str, BlockStore] = {}
        self._versions: Dict[str, int] = {}
        self._listeners: List[CatalogListener] = []

    def register(
        self,
        store: BlockStore,
        name: Optional[str] = None,
        version: Optional[int] = None,
    ) -> int:
        """Register a store under ``name`` (defaults to the store's own name).

        Returns the new version of the table.  Re-registering an existing
        name replaces the store and bumps the version, invalidating any
        cached answers keyed on the old version.

        ``version`` restores a **persisted** version (durable stores carry
        their catalog version across restarts, so version-keyed caches stay
        meaningful between processes).  The table's version becomes at
        least ``version`` — never less than the normal bump, which keeps
        versions monotonic even against a stale manifest.
        """
        key = (name or store.name).lower()
        if not key:
            raise StorageError("cannot register a store under an empty name")
        with self._lock:
            self._stores[key] = store
            new_version = self._bump(key)
            if version is not None and version > new_version:
                self._versions[key] = new_version = int(version)
        self._notify("register", key, new_version)
        return new_version

    def unregister(self, name: str) -> None:
        """Remove a table from the catalog (no-op if missing)."""
        key = name.lower()
        with self._lock:
            removed = self._stores.pop(key, None)
            version = self._bump(key) if removed is not None else None
        if version is not None:
            self._notify("unregister", key, version)

    def touch(self, name: str) -> int:
        """Bump a table's version without replacing the store.

        Called after in-place mutations (e.g. an online-extension append)
        so version-keyed caches treat prior answers as stale.
        """
        key = name.lower()
        with self._lock:
            if key not in self._stores:
                raise UnknownTableError(
                    f"cannot touch unknown table {name!r}; "
                    f"registered tables: {sorted(self._stores)}"
                )
            version = self._bump(key)
        self._notify("touch", key, version)
        return version

    def resolve(self, name: str) -> BlockStore:
        """Look up a table by (case-insensitive) name."""
        with self._lock:
            try:
                return self._stores[name.lower()]
            except KeyError as exc:
                raise UnknownTableError(
                    f"unknown table {name!r}; registered tables: {sorted(self._stores)}"
                ) from exc

    def version(self, name: str) -> int:
        """The current version of ``name`` (0 if the table was never seen)."""
        with self._lock:
            return self._versions.get(name.lower(), 0)

    # ------------------------------------------------------------ listeners
    def subscribe(self, listener: CatalogListener) -> None:
        """Register a ``(event, table, version)`` change callback.

        Events are ``"register"``, ``"unregister"`` and ``"touch"``.
        Callbacks run outside the catalog lock, on the mutating thread.
        """
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener: CatalogListener) -> None:
        """Remove a previously registered callback (no-op if missing)."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    # ------------------------------------------------------------ internals
    def _bump(self, key: str) -> int:
        # caller holds the lock
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        return version

    def _notify(self, event: str, key: str, version: int) -> None:
        with self._lock:
            listeners = tuple(self._listeners)
        for listener in listeners:
            listener(event, key, version)

    # ----------------------------------------------------------- dict-likes
    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._stores

    def __iter__(self) -> Iterator[str]:
        return iter(self.table_names)

    def __len__(self) -> int:
        with self._lock:
            return len(self._stores)

    @property
    def table_names(self) -> tuple[str, ...]:
        """Registered table names, sorted."""
        with self._lock:
            return tuple(sorted(self._stores))
