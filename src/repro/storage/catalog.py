"""A tiny catalog mapping table names to block stores."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.errors import StorageError, UnknownTableError
from repro.storage.blockstore import BlockStore

__all__ = ["Catalog"]


@dataclass
class Catalog:
    """Registry of the block stores known to a query session.

    The paper's system answers queries of the form ``SELECT AVG(column) FROM
    database WHERE desired_precision``; the catalog resolves the ``FROM``
    clause to a :class:`BlockStore`.
    """

    _stores: Dict[str, BlockStore] = field(default_factory=dict)

    def register(self, store: BlockStore, name: Optional[str] = None) -> None:
        """Register a store under ``name`` (defaults to the store's own name)."""
        key = (name or store.name).lower()
        if not key:
            raise StorageError("cannot register a store under an empty name")
        self._stores[key] = store

    def unregister(self, name: str) -> None:
        """Remove a table from the catalog (no-op if missing)."""
        self._stores.pop(name.lower(), None)

    def resolve(self, name: str) -> BlockStore:
        """Look up a table by (case-insensitive) name."""
        try:
            return self._stores[name.lower()]
        except KeyError as exc:
            raise UnknownTableError(
                f"unknown table {name!r}; registered tables: {sorted(self._stores)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._stores

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._stores))

    def __len__(self) -> int:
        return len(self._stores)

    @property
    def table_names(self) -> tuple[str, ...]:
        """Registered table names, sorted."""
        return tuple(sorted(self._stores))
