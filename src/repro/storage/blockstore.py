"""The partitioned table all aggregation engines operate on."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import EmptyDataError, StorageError, UnknownColumnError
from repro.storage.block import Block
from repro.storage.table import Table

__all__ = ["BlockStore", "resolve_block_share"]


def resolve_block_share(rate: float, block_size: int, rng: np.random.Generator) -> int:
    """Per-block sample size at the global ``rate``, without rounding bias.

    ``round(rate * size)`` silently excludes blocks whose expected draw is
    below one half — on skewed block-size layouts the small blocks then
    never contribute, biasing estimates toward the large blocks'
    distribution.  Sub-rounding blocks instead get a probabilistic single
    row (drawn with probability ``rate * size``), which keeps the expected
    contribution of every block at ``rate * |B_j|`` rows.
    """
    if block_size <= 0:
        return 0
    expected = rate * block_size
    share = int(round(expected))
    if share == 0 and rng.random() < expected:
        share = 1
    return share


@dataclass
class BlockStore:
    """A table partitioned into blocks (the paper's set ``B`` of size ``b``).

    The store exposes exactly the operations the paper's three modules need:

    * *Pre-estimation* draws a small pilot sample with per-block sample sizes
      proportional to block sizes (:meth:`pilot_sample`).
    * *Calculation* iterates over blocks, each block sampling its own column
      at the global rate (:meth:`blocks`, :meth:`block_sizes`).
    * *Summarization* weights partial answers by ``|B_j| / M``
      (:attr:`total_rows`).
    """

    name: str
    _blocks: List[Block] = field(default_factory=list)
    default_column: str = "value"
    #: block ids excluded at load time because their on-disk payload failed
    #: CRC verification — answers over this store are degraded, never garbage
    quarantined: tuple = ()
    #: rows the quarantined blocks held according to the manifest
    quarantined_rows: int = 0

    # ------------------------------------------------------------ properties
    @property
    def blocks(self) -> Sequence[Block]:
        """The blocks, ordered by block id."""
        return tuple(self._blocks)

    @property
    def block_count(self) -> int:
        """Number of blocks ``b``."""
        return len(self._blocks)

    @property
    def total_rows(self) -> int:
        """Total data size ``M`` across all blocks."""
        return sum(block.size for block in self._blocks)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names (taken from the first block)."""
        if not self._blocks:
            return ()
        return self._blocks[0].column_names

    def block_sizes(self) -> np.ndarray:
        """Array of block sizes ``|B_j|``."""
        return np.asarray([block.size for block in self._blocks], dtype=float)

    def has_column(self, name: str) -> bool:
        """True when every block carries column ``name``."""
        return bool(self._blocks) and all(block.has_column(name) for block in self._blocks)

    def validate_column(self, name: Optional[str]) -> str:
        """Resolve ``name`` (or the default column) and verify it exists."""
        column = name or self.default_column
        if not self._blocks:
            raise EmptyDataError(f"block store {self.name!r} has no blocks")
        if not self.has_column(column):
            raise UnknownColumnError(
                f"block store {self.name!r} has no column {column!r}; "
                f"available: {sorted(self.column_names)}"
            )
        return column

    # -------------------------------------------------------------- sampling
    def pilot_sample(
        self,
        column: Optional[str],
        sample_size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Uniform pilot sample with per-block allocation proportional to size.

        This is how the paper draws the pilot set used to estimate ``sigma``
        and ``sketch0`` (Section III): "uniform samples are picked from each
        block with the sample size proportional to the block size".
        """
        column = self.validate_column(column)
        if sample_size <= 0:
            raise StorageError(f"pilot sample_size must be positive, got {sample_size}")
        sizes = self.block_sizes()
        total = sizes.sum()
        if total == 0:
            raise EmptyDataError(f"block store {self.name!r} is empty")
        pieces = []
        for block, size in zip(self._blocks, sizes):
            share = max(1, int(round(sample_size * size / total))) if size > 0 else 0
            if share > 0:
                pieces.append(block.sample_column(column, share, rng))
        if not pieces:
            raise EmptyDataError(f"block store {self.name!r} produced an empty pilot sample")
        return np.concatenate(pieces)

    def uniform_sample(
        self,
        column: Optional[str],
        rate: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Uniform sample of the whole store at sampling rate ``rate``."""
        column = self.validate_column(column)
        if not 0.0 < rate <= 1.0:
            raise StorageError(f"sampling rate must lie in (0, 1], got {rate}")
        pieces = []
        for block in self._blocks:
            share = resolve_block_share(rate, block.size, rng)
            if share > 0:
                pieces.append(block.sample_column(column, share, rng))
        if not pieces:
            raise EmptyDataError(
                f"sampling rate {rate} produced an empty sample over {self.name!r}"
            )
        return np.concatenate(pieces)

    def full_column(self, column: Optional[str] = None) -> np.ndarray:
        """Materialise one column across all blocks (used for golden truths)."""
        column = self.validate_column(column)
        return np.concatenate([block.column(column) for block in self._blocks])

    def exact_mean(self, column: Optional[str] = None) -> float:
        """Exact AVG over the full data (the golden truth in experiments)."""
        values = self.full_column(column)
        if values.size == 0:
            raise EmptyDataError(f"block store {self.name!r} is empty")
        return float(values.mean())

    def exact_sum(self, column: Optional[str] = None) -> float:
        """Exact SUM over the full data."""
        return float(self.full_column(column).sum())

    # ---------------------------------------------------------- construction
    @classmethod
    def from_blocks(
        cls, name: str, blocks: Iterable[Block], default_column: str = "value"
    ) -> "BlockStore":
        """Build a store from pre-built blocks."""
        block_list = sorted(blocks, key=lambda blk: blk.block_id)
        return cls(name=name, _blocks=list(block_list), default_column=default_column)

    @classmethod
    def from_array(
        cls,
        name: str,
        values: Sequence[float],
        block_count: int = 10,
        column: str = "value",
    ) -> "BlockStore":
        """Evenly partition a flat array into ``block_count`` blocks.

        This mirrors the paper's experimental setup ("data are evenly divided
        into b parts ... saved in b .txt documents to simulate b blocks").
        """
        from repro.storage.partitioner import even_partition

        array = np.asarray(values, dtype=float)
        blocks = even_partition(array, block_count, column=column)
        return cls.from_blocks(name, blocks, default_column=column)

    @classmethod
    def from_table(
        cls, table: Table, block_count: int = 10, default_column: Optional[str] = None
    ) -> "BlockStore":
        """Evenly partition every column of a table into ``block_count`` blocks."""
        if len(table) == 0:
            raise EmptyDataError(f"table {table.name!r} is empty")
        if block_count <= 0:
            raise StorageError(f"block_count must be positive, got {block_count}")
        boundaries = np.linspace(0, len(table), block_count + 1, dtype=int)
        blocks = []
        for block_id in range(block_count):
            start, stop = int(boundaries[block_id]), int(boundaries[block_id + 1])
            columns = {name: vals[start:stop] for name, vals in table.columns.items()}
            blocks.append(Block(block_id=block_id, columns=columns))
        column = default_column or (table.column_names[0] if table.column_names else "value")
        return cls.from_blocks(table.name, blocks, default_column=column)

    @classmethod
    def from_block_arrays(
        cls,
        name: str,
        arrays: Sequence[Sequence[float]],
        column: str = "value",
    ) -> "BlockStore":
        """Build a store where each input array becomes one block.

        Used by the non-i.i.d. experiments where every block follows its own
        distribution (paper Section VIII-D).
        """
        blocks = [
            Block.from_values(block_id, np.asarray(values, dtype=float), column=column)
            for block_id, values in enumerate(arrays)
        ]
        return cls.from_blocks(name, blocks, default_column=column)

    # ------------------------------------------------------------- mutation
    def append_block(self, values: Sequence[float], column: Optional[str] = None) -> Block:
        """Append a new block of rows (the online-extension ingest path).

        The block gets the next free block id.  Callers that registered the
        store in a :class:`~repro.storage.catalog.Catalog` should ``touch``
        the table afterwards so version-keyed caches see the change.
        """
        array = np.asarray(values, dtype=float)
        if array.size == 0:
            raise EmptyDataError(f"cannot append an empty block to {self.name!r}")
        column = column or self.default_column
        next_id = (max(block.block_id for block in self._blocks) + 1) if self._blocks else 0
        block = Block.from_values(next_id, array, column=column)
        # Checked on the empty path too: appending an explicit column to a
        # fresh store must not create a store whose default column no block
        # carries.
        if not block.has_column(self.default_column):
            raise StorageError(
                f"appended block must carry the default column "
                f"{self.default_column!r} of store {self.name!r}"
            )
        self._blocks.append(block)
        return block

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockStore(name={self.name!r}, blocks={self.block_count}, "
            f"rows={self.total_rows})"
        )
