"""Partitioning strategies turning a flat column into blocks."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import StorageError
from repro.storage.block import Block

__all__ = [
    "even_partition",
    "hash_partition",
    "sorted_partition",
    "explicit_partition",
]


def _validate(values: np.ndarray, block_count: int) -> None:
    if block_count <= 0:
        raise StorageError(f"block_count must be positive, got {block_count}")
    if values.size == 0:
        raise StorageError("cannot partition an empty array")
    if block_count > values.size:
        raise StorageError(
            f"block_count {block_count} exceeds the number of rows {values.size}"
        )


def even_partition(
    values: Sequence[float], block_count: int, column: str = "value"
) -> List[Block]:
    """Split ``values`` into ``block_count`` contiguous, nearly equal blocks.

    This is the layout of the paper's experiments (data evenly divided into
    ``b`` parts).
    """
    array = np.asarray(values, dtype=float)
    _validate(array, block_count)
    boundaries = np.linspace(0, array.size, block_count + 1, dtype=int)
    return [
        Block.from_values(block_id, array[boundaries[block_id] : boundaries[block_id + 1]],
                          column=column)
        for block_id in range(block_count)
    ]


def hash_partition(
    values: Sequence[float],
    block_count: int,
    column: str = "value",
    seed: int = 0,
) -> List[Block]:
    """Assign each row to a pseudo-random block (round-robin on a permutation).

    Produces blocks whose local distributions match the global one — the
    i.i.d.-blocks assumption of the paper — even when the input array is
    sorted or clustered.
    """
    array = np.asarray(values, dtype=float)
    _validate(array, block_count)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, block_count, size=array.size)
    blocks = []
    for block_id in range(block_count):
        chunk = array[assignment == block_id]
        blocks.append(Block.from_values(block_id, chunk, column=column))
    return blocks


def sorted_partition(
    values: Sequence[float], block_count: int, column: str = "value"
) -> List[Block]:
    """Sort then split: produces maximally *non*-i.i.d. blocks.

    Useful for stressing the non-i.i.d. extension (Section VII-C): every block
    covers a disjoint value range, so identical boundaries and a single
    sampling rate perform poorly.
    """
    array = np.sort(np.asarray(values, dtype=float))
    _validate(array, block_count)
    boundaries = np.linspace(0, array.size, block_count + 1, dtype=int)
    return [
        Block.from_values(block_id, array[boundaries[block_id] : boundaries[block_id + 1]],
                          column=column)
        for block_id in range(block_count)
    ]


def explicit_partition(
    chunks: Sequence[Sequence[float]], column: str = "value"
) -> List[Block]:
    """Each provided chunk becomes one block (caller controls the layout)."""
    if not chunks:
        raise StorageError("explicit_partition requires at least one chunk")
    return [
        Block.from_values(block_id, np.asarray(chunk, dtype=float), column=column)
        for block_id, chunk in enumerate(chunks)
    ]
