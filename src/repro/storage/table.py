"""An unpartitioned, named, columnar table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.errors import StorageError, UnknownColumnError

__all__ = ["Table"]


@dataclass
class Table:
    """A named collection of equally-long float columns.

    A :class:`Table` is the logical object a query references (``FROM name``);
    partitioning it with one of the partitioners in
    :mod:`repro.storage.partitioner` yields the
    :class:`~repro.storage.blockstore.BlockStore` the engines execute on.
    """

    name: str
    columns: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.columns = {
            key: np.asarray(values, dtype=float) for key, values in self.columns.items()
        }
        lengths = {key: len(values) for key, values in self.columns.items()}
        if lengths and len(set(lengths.values())) != 1:
            raise StorageError(
                f"table {self.name!r}: columns have inconsistent lengths {lengths}"
            )

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return int(len(next(iter(self.columns.values()))))

    @property
    def row_count(self) -> int:
        """Number of rows."""
        return len(self)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of the columns."""
        return tuple(self.columns)

    def column(self, name: str) -> np.ndarray:
        """Return one column's values."""
        try:
            return self.columns[name]
        except KeyError as exc:
            raise UnknownColumnError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {sorted(self.columns)}"
            ) from exc

    def with_column(self, name: str, values: Sequence[float]) -> "Table":
        """Return a new table with an added (or replaced) column."""
        array = np.asarray(values, dtype=float)
        if self.columns and len(array) != len(self):
            raise StorageError(
                f"new column {name!r} has {len(array)} rows, table has {len(self)}"
            )
        merged = dict(self.columns)
        merged[name] = array
        return Table(name=self.name, columns=merged)

    @classmethod
    def from_values(
        cls, name: str, values: Sequence[float], column: str = "value"
    ) -> "Table":
        """Build a single-column table."""
        return cls(name=name, columns={column: np.asarray(values, dtype=float)})

    @classmethod
    def from_mapping(cls, name: str, columns: Mapping[str, Sequence[float]]) -> "Table":
        """Build a table from a mapping of column name to values."""
        return cls(
            name=name,
            columns={key: np.asarray(vals, dtype=float) for key, vals in columns.items()},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table(name={self.name!r}, rows={len(self)}, columns={list(self.columns)})"
