"""Append-ahead log making block appends crash-safe.

Durable stores write every :meth:`~repro.storage.blockstore.BlockStore.append_block`
to this log — flushed and ``fsync``'d — *before* applying it in memory, so a
process killed at any instant loses at most the append it was writing.  On
reopen the log is replayed record by record; the first torn record (short
read, bad magic or CRC mismatch) ends the replay, the torn tail is
discarded, and the store recovers to the last consistent state: snapshot
plus every fully-logged append.

Record layout (little-endian)::

    MAGIC    4 bytes   b"RWL1"
    hlen     4 bytes   uint32 — length of the JSON header
    header   hlen      {"block_id", "column", "rows", "version"}
    payload  rows * 8  float64 values
    crc      4 bytes   uint32 — zlib.crc32 over header + payload
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro import faults, obs
from repro.errors import InjectedFault, StorageError

__all__ = ["WalRecord", "WriteAheadLog", "replay_wal"]

MAGIC = b"RWL1"
_LEN = struct.Struct("<I")


@dataclass(frozen=True)
class WalRecord:
    """One logged append: the block payload plus its post-append version."""

    block_id: int
    column: str
    values: np.ndarray
    version: int

    def encode(self) -> bytes:
        payload = np.ascontiguousarray(self.values, dtype="<f8").tobytes()
        header = json.dumps(
            {
                "block_id": int(self.block_id),
                "column": self.column,
                "rows": int(self.values.size),
                "version": int(self.version),
            },
            sort_keys=True,
        ).encode("utf-8")
        crc = zlib.crc32(header + payload) & 0xFFFFFFFF
        return b"".join(
            [MAGIC, _LEN.pack(len(header)), header, payload, _LEN.pack(crc)]
        )


def _decode_one(buffer: bytes, offset: int) -> Optional[Tuple[WalRecord, int]]:
    """Decode the record at ``offset``; None when the tail is torn/invalid."""
    end = len(buffer)
    if offset + 8 > end:
        return None
    if buffer[offset : offset + 4] != MAGIC:
        return None
    (hlen,) = _LEN.unpack_from(buffer, offset + 4)
    body_start = offset + 8
    if body_start + hlen > end:
        return None
    try:
        header = json.loads(buffer[body_start : body_start + hlen])
        rows = int(header["rows"])
        block_id = int(header["block_id"])
        column = str(header["column"])
        version = int(header["version"])
    except (ValueError, KeyError, TypeError):
        return None
    payload_start = body_start + hlen
    payload_end = payload_start + rows * 8
    if payload_end + 4 > end:
        return None
    (crc,) = _LEN.unpack_from(buffer, payload_end)
    if zlib.crc32(buffer[body_start:payload_end]) & 0xFFFFFFFF != crc:
        return None
    values = np.frombuffer(
        buffer, dtype="<f8", count=rows, offset=payload_start
    ).astype(float)
    record = WalRecord(
        block_id=block_id, column=column, values=values, version=version
    )
    return record, payload_end + 4


def replay_wal(path: Union[str, os.PathLike]) -> Tuple[List[WalRecord], int]:
    """Replay a log file; returns ``(records, torn_bytes_discarded)``.

    Reads the longest prefix of intact records.  Anything after the first
    torn or corrupt record is reported as discarded — the caller truncates
    the file to the consistent prefix before appending again.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    buffer = path.read_bytes()
    records: List[WalRecord] = []
    offset = 0
    while offset < len(buffer):
        decoded = _decode_one(buffer, offset)
        if decoded is None:
            break
        record, offset = decoded
        records.append(record)
    return records, len(buffer) - offset


class WriteAheadLog:
    """An append-only record log with fsync-per-append durability."""

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "ab")

    def append(self, record: WalRecord) -> None:
        """Durably log one append (write + flush + fsync) before it applies.

        An active ``wal.torn_frame`` fault simulates a crash mid-write: the
        frame is persisted *truncated* (as a real power cut would leave it)
        and the append fails before it applies in memory — replay on reopen
        must then discard the torn tail and recover the consistent prefix.
        """
        if self._handle.closed:
            raise StorageError(f"write-ahead log {self.path} is closed")
        encoded = record.encode()
        injector = faults.active()
        if injector is not None and injector.torn_frame(record.block_id):
            torn = encoded[: max(1, len(encoded) // 2)]
            self._handle.write(torn)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            raise InjectedFault(
                "wal.torn_frame",
                f"injected torn WAL frame for block {record.block_id} "
                f"({len(torn)} of {len(encoded)} bytes persisted)",
            )
        with obs.span("persist.wal.append", rows=int(record.values.size)):
            self._handle.write(encoded)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        obs.counter("persist.wal.append")

    def truncate(self, size: int = 0) -> None:
        """Cut the log to ``size`` bytes (0 after a checkpoint discards it)."""
        self._handle.flush()
        self._handle.truncate(size)
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
