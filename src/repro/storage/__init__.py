"""Block-storage substrate.

The paper assumes data are "stored in multiple machines, i.e., blocks"
(Section II-C) and simulates this by splitting each data set into ``b`` text
files.  This package provides the same abstraction as an in-process library:

* :class:`~repro.storage.block.Block` — one horizontal partition of a table.
* :class:`~repro.storage.table.Table` — a named collection of columns.
* :class:`~repro.storage.blockstore.BlockStore` — the partitioned table the
  aggregation engines operate on.
* Partitioners (even / hash / sorted / explicit) used to build block stores.
* Text-file block I/O mirroring the paper's ``.txt`` block layout.
* A :class:`~repro.storage.catalog.Catalog` mapping table names to stores.
* Durable binary storage (:mod:`~repro.storage.persist`): atomic ``.npy``
  snapshots, an append-ahead log for crash-safe appends, and
  memory-mapped zero-copy block scans.
"""

from repro.storage.block import Block
from repro.storage.table import Table
from repro.storage.blockstore import BlockStore, resolve_block_share
from repro.storage.partitioner import (
    even_partition,
    hash_partition,
    sorted_partition,
    explicit_partition,
)
from repro.storage.textio import write_blocks_to_directory, read_blocks_from_directory
from repro.storage.catalog import Catalog
from repro.storage.persist import (
    DurableBlockStore,
    load_manifest,
    open_store,
    save_store,
)
from repro.storage.wal import WalRecord, WriteAheadLog, replay_wal

__all__ = [
    "Block",
    "Table",
    "BlockStore",
    "resolve_block_share",
    "even_partition",
    "hash_partition",
    "sorted_partition",
    "explicit_partition",
    "write_blocks_to_directory",
    "read_blocks_from_directory",
    "Catalog",
    "DurableBlockStore",
    "save_store",
    "open_store",
    "load_manifest",
    "WalRecord",
    "WriteAheadLog",
    "replay_wal",
]
