"""Durable, crash-safe on-disk block storage with memory-mapped scans.

The paper's experiments persist each block as a document on disk and stream
it during sampling; this module gives the reproduction the production
equivalent: a binary store that survives process crashes and opens in
milliseconds regardless of data size.

On-disk layout::

    <directory>/
        MANIFEST.json                 # the commit point (atomic rename)
        wal.log                       # append-ahead log since last snapshot
        blocks/
            block_000000.value.npy    # one .npy file per block per column
            block_000001.value.npy
            ...

Guarantees
----------
* **Atomic snapshots** — every ``.npy`` file and the manifest are written
  to a temporary name, flushed, ``fsync``'d and renamed into place; the
  manifest rename is the commit point, so a crash mid-snapshot leaves the
  previous manifest (and the files it references) fully intact.
* **Crash-safe appends** — :meth:`DurableBlockStore.append_block` logs the
  rows to the WAL (fsync'd) *before* touching memory; reopening replays the
  log, discards a torn tail record, and recovers to the last consistent
  state.  Recovered appends bump the catalog version exactly as live ones
  did, so version-keyed result caches stay correct across restarts.
* **Zero-copy reads** — blocks open as ``np.memmap`` arrays
  (``np.load(..., mmap_mode="r")``), so opening a multi-GB store does not
  materialise it and scans stream straight from the page cache.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults, obs
from repro.errors import DataCorruptionError, EmptyDataError, StorageError
from repro.storage.block import Block
from repro.storage.blockstore import BlockStore
from repro.storage.wal import WalRecord, WriteAheadLog, replay_wal

__all__ = ["DurableBlockStore", "save_store", "open_store", "load_manifest"]

FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
BLOCKS_DIR = "blocks"


# --------------------------------------------------------------------------
# low-level atomic file helpers
# --------------------------------------------------------------------------

def _fsync_directory(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _atomic_save_array(path: Path, values: np.ndarray) -> Tuple[int, int]:
    """Write one column file atomically; returns ``(bytes, crc32)``.

    The array is serialised once into memory so the CRC covers exactly the
    bytes that land on disk — the manifest's per-column checksum then lets
    the read path prove a block file intact before mmap'ing it.
    """
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(values, dtype=float))
    payload = buffer.getvalue()
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(payload), crc


def _column_filename(block_id: int, column: str) -> str:
    if os.sep in column or column.startswith("."):
        raise StorageError(f"column {column!r} cannot be persisted")
    return f"block_{block_id:06d}.{column}.npy"


# --------------------------------------------------------------------------
# manifest
# --------------------------------------------------------------------------

def _build_manifest(
    store: BlockStore,
    table_version: int,
    crcs: Optional[Dict[Tuple[int, str], int]] = None,
) -> Dict[str, Any]:
    manifest = {
        "format_version": FORMAT_VERSION,
        "name": store.name,
        "default_column": store.default_column,
        "columns": list(store.column_names),
        "table_version": int(table_version),
        "total_rows": int(store.total_rows),
        "blocks": [
            {
                "block_id": int(block.block_id),
                "rows": int(block.size),
                "files": {
                    column: f"{BLOCKS_DIR}/{_column_filename(block.block_id, column)}"
                    for column in block.column_names
                },
            }
            for block in store.blocks
        ],
    }
    # checksums are an optional manifest key: snapshots written by older
    # builds (no "crc32") still open, they just cannot be verified
    if crcs:
        for spec in manifest["blocks"]:
            block_id = spec["block_id"]
            spec["crc32"] = {
                column: crcs[(block_id, column)]
                for column in spec["files"]
                if (block_id, column) in crcs
            }
    return manifest


def load_manifest(directory: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Read and validate a store manifest."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        raise StorageError(f"no {MANIFEST_NAME} under {Path(directory)}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise StorageError(f"corrupt manifest {path}") from exc
    if manifest.get("format_version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported store format {manifest.get('format_version')!r} "
            f"in {path} (this build reads format {FORMAT_VERSION})"
        )
    return manifest


# --------------------------------------------------------------------------
# snapshot save / open
# --------------------------------------------------------------------------

def save_store(
    store: BlockStore,
    directory: Union[str, os.PathLike],
    table_version: int = 1,
) -> Path:
    """Atomically snapshot ``store`` into ``directory``.

    Every column of every block lands as one ``.npy`` file; the manifest
    rename is the commit point.  An existing snapshot in the directory is
    replaced and the WAL reset — callers appending through a
    :class:`DurableBlockStore` should use :meth:`DurableBlockStore.checkpoint`
    instead, which keeps the log handle consistent.
    """
    target = Path(directory)
    blocks_dir = target / BLOCKS_DIR
    blocks_dir.mkdir(parents=True, exist_ok=True)
    if not store.blocks:
        raise StorageError(f"refusing to snapshot empty store {store.name!r}")
    written_bytes = 0
    crcs: Dict[Tuple[int, str], int] = {}
    with obs.span(
        "persist.snapshot", table=store.name, blocks=store.block_count
    ) as sp:
        for block in store.blocks:
            for column in block.column_names:
                path = blocks_dir / _column_filename(block.block_id, column)
                size, crc = _atomic_save_array(path, block.column(column))
                written_bytes += size
                crcs[(block.block_id, column)] = crc
        _fsync_directory(blocks_dir)
        manifest = _build_manifest(store, table_version, crcs)
        payload = json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
        _atomic_write_bytes(target / MANIFEST_NAME, payload)
        # a snapshot subsumes every logged append: reset the WAL after commit
        wal_path = target / WAL_NAME
        if wal_path.exists():
            wal_path.unlink()
        _fsync_directory(target)
        sp.set_tag("bytes", written_bytes)
    obs.counter("persist.snapshot")
    obs.counter("persist.snapshot.bytes", written_bytes)
    return target / MANIFEST_NAME


def _verify_column(
    path: Path, spec: Dict[str, Any], column: str, table: str
) -> Optional[str]:
    """Reason this column file is corrupt, or ``None`` when it checks out.

    Compares the file bytes against the manifest's recorded CRC-32 (when the
    snapshot carries one); an active ``block.bitflip`` fault treats the block
    as corrupt even though the bytes on disk are fine, which is exactly how
    a flipped bit caught by the checksum would present.
    """
    block_id = int(spec["block_id"])
    injector = faults.active()
    if injector is not None and injector.bitflip(table, block_id):
        return "injected bit flip"
    expected = (spec.get("crc32") or {}).get(column)
    if expected is None:
        return None
    actual = zlib.crc32(path.read_bytes()) & 0xFFFFFFFF
    if actual != int(expected):
        return f"crc mismatch (manifest {int(expected):#010x}, file {actual:#010x})"
    return None


def _load_blocks(
    directory: Path, manifest: Dict[str, Any], mmap: bool, verify: bool = False
) -> Tuple[List[Block], List[Tuple[int, int]]]:
    """Load the manifest's blocks; returns ``(blocks, quarantined)``.

    With ``verify=True`` a block whose file fails CRC verification (or is
    missing/mis-shaped) is *quarantined* — excluded from the store and
    reported as ``(block_id, rows)`` — instead of poisoning the open.  The
    aggregators then treat quarantined blocks as failed partitions and
    answer degraded rather than reading garbage through the mmap.
    """
    mmap_mode = "r" if mmap else None
    table = str(manifest["name"])
    blocks: List[Block] = []
    quarantined: List[Tuple[int, int]] = []
    for spec in manifest["blocks"]:
        columns: Dict[str, np.ndarray] = {}
        corrupt: Optional[str] = None
        for column, relative in spec["files"].items():
            path = directory / relative
            if not path.exists():
                if verify:
                    corrupt = "missing block file"
                    break
                raise StorageError(
                    f"manifest references missing block file {path}"
                )
            if verify:
                corrupt = _verify_column(path, spec, column, table)
                if corrupt is not None:
                    break
            values = np.load(path, mmap_mode=mmap_mode)
            if values.ndim != 1 or int(values.size) != int(spec["rows"]):
                if verify:
                    corrupt = f"shape {values.shape} != {spec['rows']} rows"
                    break
                raise StorageError(
                    f"block file {path} has shape {values.shape}, "
                    f"manifest says {spec['rows']} rows"
                )
            if mmap:
                obs.counter("persist.mmap.open")
            columns[column] = values
        if corrupt is not None:
            quarantined.append((int(spec["block_id"]), int(spec["rows"])))
            obs.counter("persist.quarantined")
            with obs.span(
                "persist.quarantine",
                table=table,
                block=int(spec["block_id"]),
                reason=corrupt,
            ):
                pass
            continue
        blocks.append(Block(block_id=int(spec["block_id"]), columns=columns))
    return blocks, quarantined


def open_store(
    directory: Union[str, os.PathLike],
    mmap: bool = True,
    verify: bool = False,
) -> "DurableBlockStore":
    """Open a durable store, replaying the WAL (alias of ``DurableBlockStore.open``)."""
    return DurableBlockStore.open(directory, mmap=mmap, verify=verify)


# --------------------------------------------------------------------------
# the durable store
# --------------------------------------------------------------------------

class DurableBlockStore:
    """A :class:`BlockStore` bound to a directory, with WAL-backed appends.

    Obtain one with :meth:`create` (snapshot an existing in-memory store)
    or :meth:`open` (load a directory, replaying any crash-surviving log).
    The in-memory/mmap view is exposed as :attr:`store`; appends go through
    :meth:`append_block` which logs before applying.
    """

    def __init__(
        self,
        directory: Path,
        store: BlockStore,
        table_version: int,
        mmap: bool,
        recovered_appends: int = 0,
        recovered_torn_bytes: int = 0,
    ) -> None:
        self.directory = Path(directory)
        self.store = store
        self.table_version = int(table_version)
        self.mmap = bool(mmap)
        #: appends replayed from the WAL by :meth:`open` (0 on a clean open)
        self.recovered_appends = int(recovered_appends)
        #: bytes of torn WAL tail discarded by :meth:`open`
        self.recovered_torn_bytes = int(recovered_torn_bytes)
        self._wal = WriteAheadLog(self.directory / WAL_NAME)
        self._closed = False

    # ------------------------------------------------------------- creation
    @classmethod
    def create(
        cls,
        store: BlockStore,
        directory: Union[str, os.PathLike],
        table_version: int = 1,
        mmap: bool = True,
    ) -> "DurableBlockStore":
        """Snapshot ``store`` into ``directory`` and return the durable view.

        With ``mmap=True`` (default) the returned store re-opens its blocks
        memory-mapped from the snapshot just written, so the in-memory
        copies can be dropped by the caller.
        """
        save_store(store, directory, table_version=table_version)
        return cls.open(directory, mmap=mmap)

    @classmethod
    def open(
        cls,
        directory: Union[str, os.PathLike],
        mmap: bool = True,
        verify: bool = False,
    ) -> "DurableBlockStore":
        """Open ``directory``, replaying the append-ahead log.

        Replay stops at the first torn record; the torn tail is truncated
        away so subsequent appends extend a consistent log.  Each replayed
        append bumps the recovered table version exactly as the original
        append did before the crash.

        With ``verify=True`` every block file is checked against the
        manifest's CRC-32 before it is mmap'd; corrupt blocks are
        quarantined (listed on ``store.quarantined``) and the surviving
        store answers queries degraded instead of reading garbage.  A store
        whose blocks are *all* corrupt refuses to open.
        """
        target = Path(directory)
        with obs.span(
            "persist.open", directory=str(target), mmap=mmap, verify=verify
        ) as sp:
            manifest = load_manifest(target)
            blocks, quarantined = _load_blocks(target, manifest, mmap, verify)
            if not blocks:
                raise DataCorruptionError(
                    f"every block of {manifest['name']!r} under {target} failed "
                    f"verification ({len(quarantined)} quarantined)"
                )
            store = BlockStore.from_blocks(
                manifest["name"], blocks, default_column=manifest["default_column"]
            )
            if quarantined:
                store.quarantined = tuple(sorted(bid for bid, _ in quarantined))
                store.quarantined_rows = sum(rows for _, rows in quarantined)
                sp.set_tag("quarantined", len(quarantined))
            version = int(manifest["table_version"])

            records, torn_bytes = replay_wal(target / WAL_NAME)
            applied_count = 0
            if records or torn_bytes:
                with obs.span(
                    "persist.recovery",
                    replayed=len(records),
                    torn_bytes=torn_bytes,
                ) as rsp:
                    seen_ids = {block.block_id for block in store.blocks}
                    for record in records:
                        # Idempotent replay: a frame whose block id already
                        # exists is a duplicate delivery (the writer fsync'd,
                        # crashed before acking, and re-appended) — skip it
                        # rather than double-apply the rows.
                        if record.block_id in seen_ids:
                            obs.counter("persist.wal.duplicate")
                            continue
                        applied = store.append_block(
                            record.values, column=record.column
                        )
                        seen_ids.add(applied.block_id)
                        # quarantined blocks leave id gaps, so replayed
                        # appends may legitimately land on shifted ids
                        if applied.block_id != record.block_id and not quarantined:
                            raise StorageError(
                                f"WAL replay for {store.name!r} produced block "
                                f"{applied.block_id}, log recorded {record.block_id}"
                            )
                        applied_count += 1
                        version = max(version + 1, record.version)
                    if torn_bytes:
                        _truncate_torn_tail(target / WAL_NAME, torn_bytes)
                    rsp.set_tag("applied", applied_count)
                obs.counter("persist.wal.replayed", applied_count)
                if torn_bytes:
                    obs.counter("persist.wal.torn")
                    obs.counter("persist.wal.torn.bytes", torn_bytes)
            sp.set_tag("blocks", store.block_count)
            sp.set_tag("version", version)
        return cls(
            directory=target,
            store=store,
            table_version=version,
            mmap=mmap,
            recovered_appends=applied_count,
            recovered_torn_bytes=torn_bytes,
        )

    # ------------------------------------------------------------- mutation
    def append_block(
        self, values: Sequence[float], column: Optional[str] = None
    ) -> Block:
        """Crash-safe append: WAL first (fsync'd), memory second.

        Mirrors :meth:`BlockStore.append_block` — the new block gets the
        next free id and must carry the store's default column.  Returns
        the applied block; :attr:`table_version` is bumped so callers can
        mirror it into a :class:`~repro.storage.catalog.Catalog`.
        """
        if self._closed:
            raise StorageError(f"durable store {self.store.name!r} is closed")
        array = np.asarray(values, dtype=float)
        # validate exactly as the in-memory append will, *before* logging —
        # a record that cannot apply must never reach the WAL
        if array.size == 0:
            raise EmptyDataError(
                f"cannot append an empty block to {self.store.name!r}"
            )
        column = column or self.store.default_column
        if column != self.store.default_column:
            raise StorageError(
                f"appended block must carry the default column "
                f"{self.store.default_column!r} of store {self.store.name!r}"
            )
        next_id = (
            max(block.block_id for block in self.store.blocks) + 1
            if self.store.blocks
            else 0
        )
        record = WalRecord(
            block_id=next_id,
            column=column,
            values=array,
            version=self.table_version + 1,
        )
        self._wal.append(record)
        block = self.store.append_block(array, column=column)
        self.table_version += 1
        return block

    def checkpoint(self) -> Path:
        """Fold the logged appends into a fresh snapshot and reset the WAL."""
        if self._closed:
            raise StorageError(f"durable store {self.store.name!r} is closed")
        manifest = save_store(
            self.store, self.directory, table_version=self.table_version
        )
        # save_store unlinked the log file; reopen the handle on a fresh one
        self._wal.close()
        self._wal = WriteAheadLog(self.directory / WAL_NAME)
        return manifest

    def close(self) -> None:
        """Release the WAL handle (mmap'd blocks release with the arrays)."""
        if not self._closed:
            self._closed = True
            self._wal.close()

    def __enter__(self) -> "DurableBlockStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableBlockStore({str(self.directory)!r}, "
            f"table={self.store.name!r}, version={self.table_version}, "
            f"blocks={self.store.block_count}, mmap={self.mmap})"
        )


def _truncate_torn_tail(path: Path, torn_bytes: int) -> None:
    size = path.stat().st_size
    with open(path, "ab") as handle:
        handle.truncate(max(0, size - torn_bytes))
        handle.flush()
        os.fsync(handle.fileno())
