"""A single block (horizontal partition) of a table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

import numpy as np

from repro.errors import StorageError, UnknownColumnError

__all__ = ["Block"]


@dataclass
class Block:
    """One horizontal partition of a table, held as named numpy columns.

    The paper's Calculation module runs independently on each block; a block
    therefore needs to expose its row count (used to weight partial answers in
    the Summarization module), provide cheap uniform sampling of a column, and
    stream values without materialising copies.
    """

    block_id: int
    columns: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {name: len(values) for name, values in self.columns.items()}
        if lengths and len(set(lengths.values())) != 1:
            raise StorageError(
                f"block {self.block_id}: columns have inconsistent lengths {lengths}"
            )
        self.columns = {
            name: np.asarray(values, dtype=float) for name, values in self.columns.items()
        }

    # ------------------------------------------------------------------ size
    def __len__(self) -> int:
        if not self.columns:
            return 0
        first = next(iter(self.columns.values()))
        return int(len(first))

    @property
    def size(self) -> int:
        """Number of rows in this block (``|B_j|`` in the paper)."""
        return len(self)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of the columns stored in this block."""
        return tuple(self.columns)

    # --------------------------------------------------------------- columns
    def column(self, name: str) -> np.ndarray:
        """Return the values of one column (no copy)."""
        try:
            return self.columns[name]
        except KeyError as exc:
            raise UnknownColumnError(
                f"block {self.block_id} has no column {name!r}; "
                f"available: {sorted(self.columns)}"
            ) from exc

    def has_column(self, name: str) -> bool:
        """Return True when the block stores ``name``."""
        return name in self.columns

    # -------------------------------------------------------------- sampling
    def sample_column(
        self,
        name: str,
        sample_size: int,
        rng: np.random.Generator,
        replace: bool = True,
    ) -> np.ndarray:
        """Draw a uniform random sample of ``sample_size`` values of a column.

        Sampling is *with replacement* by default, matching the paper's
        Bernoulli-style per-row draws; pass ``replace=False`` for a simple
        random sample without replacement (the sample size is then clipped to
        the block size).
        """
        values = self.column(name)
        if values.size == 0:
            raise StorageError(f"block {self.block_id} is empty")
        if sample_size <= 0:
            return np.empty(0, dtype=float)
        if not replace:
            sample_size = min(sample_size, values.size)
        indices = rng.choice(values.size, size=sample_size, replace=replace)
        return values[indices]

    def iter_column(self, name: str, batch_size: int = 65536) -> Iterator[np.ndarray]:
        """Stream a column in batches (simulates scanning a block file)."""
        values = self.column(name)
        for start in range(0, values.size, batch_size):
            yield values[start : start + batch_size]

    # ---------------------------------------------------------- construction
    @classmethod
    def from_values(
        cls,
        block_id: int,
        values: np.ndarray,
        column: str = "value",
        extra_columns: Optional[Mapping[str, np.ndarray]] = None,
    ) -> "Block":
        """Build a single-column block (plus optional extra columns)."""
        columns: Dict[str, np.ndarray] = {column: np.asarray(values, dtype=float)}
        if extra_columns:
            for name, extra in extra_columns.items():
                columns[name] = np.asarray(extra, dtype=float)
        return cls(block_id=block_id, columns=columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Block(id={self.block_id}, rows={len(self)}, "
            f"columns={list(self.columns)})"
        )
