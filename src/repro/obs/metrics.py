"""Zero-dependency metrics primitives: counters, gauges and histograms.

The registry is deliberately tiny — a process-local, thread-safe map from
metric names to one of three instrument kinds:

* :class:`Counter` — a monotonically increasing total (``sample.rows``).
* :class:`Gauge` — a point-in-time value that can move both ways.
* :class:`Histogram` — a distribution with count/sum/min/max/mean and
  p50/p95/p99 quantiles computed from a bounded, decimating reservoir.

Everything snapshots to plain dictionaries so the experiment harness can dump
``registry.to_json()`` straight into a ``--metrics-out`` file.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: default reservoir capacity of a histogram (values retained for quantiles)
DEFAULT_RESERVOIR = 4096


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value

    def reset(self) -> None:
        """Zero the counter."""
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict view of the counter."""
        return {"type": self.kind, "value": self._value}


class Gauge:
    """A point-in-time value that can increase or decrease."""

    kind = "gauge"

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current value."""
        return self._value

    def reset(self) -> None:
        """Reset the gauge to zero."""
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict view of the gauge."""
        return {"type": self.kind, "value": self._value}


class Histogram:
    """A distribution summary with bounded memory.

    Count, sum, min and max are exact.  Quantiles come from a reservoir that
    keeps every observation until ``capacity`` is reached, then halves the
    retained set and doubles the stride (keeping every 2nd, 4th, ... value),
    so memory stays bounded while the retained values remain spread over the
    whole observation stream.
    """

    kind = "histogram"

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max",
                 "_values", "_stride", "_capacity")

    def __init__(self, name: str, capacity: int = DEFAULT_RESERVOIR) -> None:
        if capacity < 2:
            raise ValueError(f"histogram capacity must be at least 2, got {capacity}")
        self.name = name
        self._lock = threading.Lock()
        self._capacity = int(capacity)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._values: List[float] = []
        self._stride = 1

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            if self._count % self._stride == 0:
                if len(self._values) >= self._capacity:
                    self._values = self._values[::2]
                    self._stride *= 2
                if self._count % self._stride == 0:
                    self._values.append(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # ------------------------------------------------------------- reporting
    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        return self._sum / self._count if self._count else math.nan

    def percentile(self, fraction: float) -> float:
        """The ``fraction``-quantile (0..1) of the retained reservoir.

        Returns NaN when the histogram is empty.  Uses linear interpolation
        between the two nearest retained values.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"percentile fraction must lie in [0, 1], got {fraction}")
        with self._lock:
            values = sorted(self._values)
        if not values:
            return math.nan
        position = fraction * (len(values) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return values[low]
        weight = position - low
        return values[low] * (1.0 - weight) + values[high] * weight

    def reset(self) -> None:
        """Forget every observation."""
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf
            self._values = []
            self._stride = 1

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict view including the p50/p95/p99 quantiles."""
        return {
            "type": self.kind,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "mean": self.mean if self._count else None,
            "p50": self.percentile(0.50) if self._count else None,
            "p95": self.percentile(0.95) if self._count else None,
            "p99": self.percentile(0.99) if self._count else None,
        }


class MetricsRegistry:
    """A thread-safe, name-keyed collection of metrics."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, Any] = {}

    # ------------------------------------------------------------- accessors
    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory(name)
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {metric.kind}, "
                    f"requested as a {kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(name, Gauge, "gauge")

    def histogram(self, name: str, capacity: Optional[int] = None) -> Histogram:
        """Get or create the histogram called ``name``."""
        factory = (
            Histogram
            if capacity is None
            else (lambda metric_name: Histogram(metric_name, capacity=capacity))
        )
        return self._get_or_create(name, factory, "histogram")

    # ----------------------------------------------------------- conveniences
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name``."""
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    # -------------------------------------------------------------- lifecycle
    @property
    def names(self) -> tuple:
        """The registered metric names, sorted."""
        with self._lock:
            return tuple(sorted(self._metrics))

    def get(self, name: str):
        """The metric called ``name`` or None."""
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict snapshot of every metric, keyed by name."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def reset(self) -> None:
        """Reset every metric (registrations are kept)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def clear(self) -> None:
        """Drop every registration."""
        with self._lock:
            self._metrics.clear()

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
