"""``repro.obs`` — query-lifecycle observability for the ISLA engine.

Three zero-dependency pieces:

* :mod:`repro.obs.metrics` — counters, gauges and p50/p95/p99 histograms in a
  thread-safe :class:`MetricsRegistry` with snapshot/reset and JSON export;
* :mod:`repro.obs.tracing` — nested :class:`Span` trees with a context-var
  current-span stack and pluggable exporters (in-memory ring buffer, JSONL);
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade and the
  module-level helpers (:func:`span`, :func:`stopwatch`, :func:`counter`,
  :func:`observe`) instrumentation sites call.

Telemetry is **off by default** and the disabled path is a shared no-op.
Turn it on with the ``REPRO_TELEMETRY=1`` environment variable,
``ISLAConfig(telemetry=True)``, :func:`configure`, or per-scope via
``Telemetry(enabled=True).activate()``.  ``AQPEngine.explain_analyze``
force-enables a capture for one statement regardless of the global switch.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import (
    NULL_SPAN,
    InMemorySpanExporter,
    JsonlSpanExporter,
    NullSpan,
    Span,
    Tracer,
    summarize_trace,
)
from repro.obs.telemetry import (
    ENV_VAR,
    QueryTelemetry,
    Stopwatch,
    Telemetry,
    active_telemetry,
    configure,
    counter,
    gauge,
    get_telemetry,
    observe,
    set_telemetry,
    span,
    stopwatch,
)
from repro.obs.explain import render_explain_analyze

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "summarize_trace",
    "ENV_VAR",
    "Telemetry",
    "Stopwatch",
    "QueryTelemetry",
    "get_telemetry",
    "set_telemetry",
    "configure",
    "active_telemetry",
    "span",
    "stopwatch",
    "counter",
    "observe",
    "gauge",
    "render_explain_analyze",
]
