"""Rendering of ``EXPLAIN ANALYZE`` output from a traced execution.

``AQPEngine.explain_analyze`` executes the statement under a force-enabled
telemetry capture and hands the resulting ``ExecutionResult`` (duck-typed
here to avoid an import cycle with the query package) to
:func:`render_explain_analyze`, which prints the logical plan, the answer,
the span tree annotated with per-stage wall-clock timings, and the derived
counters (ISLA iterations, per-stage sample sizes).
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["render_explain_analyze"]


def render_explain_analyze(result: Any, plan_description: str = "") -> str:
    """Render a traced execution as an ``EXPLAIN ANALYZE`` report.

    Parameters
    ----------
    result:
        An ``ExecutionResult`` whose ``telemetry`` field is populated.
    plan_description:
        The logical plan text (``QueryPlan.describe()``), printed verbatim
        as the header when provided.
    """
    lines: List[str] = []
    if plan_description:
        lines.append(plan_description)
        lines.append("")

    lines.append(
        f"{result.aggregate.upper()}({result.column}) = {result.value:.6g}  "
        f"[method={result.method}, {result.sample_size} samples, "
        f"{result.elapsed_seconds * 1000.0:.3f} ms total]"
    )

    telemetry = getattr(result, "telemetry", None)
    if telemetry is None:
        lines.append("")
        lines.append("(no telemetry captured — tracing was disabled)")
        return "\n".join(lines)

    lines.append("")
    lines.append(telemetry.trace.render())

    stage_seconds = telemetry.stage_seconds
    if stage_seconds:
        lines.append("")
        lines.append("stage totals:")
        width = max(len(name) for name in stage_seconds)
        for name in sorted(stage_seconds, key=stage_seconds.get, reverse=True):
            lines.append(
                f"  {name.ljust(width)}  {stage_seconds[name] * 1000.0:10.3f} ms"
            )

    counters = {
        name: value for name, value in telemetry.counters.items() if name != "spans"
    }
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name.ljust(width)}  {counters[name]:g}")

    return "\n".join(lines)
