"""Nested tracing spans for the query lifecycle.

A :class:`Span` records one timed stage (``query.parse``, ``isla.iteration``,
``sample.draw``, ...) with free-form tags and child spans.  The
:class:`Tracer` maintains the current span through a :class:`contextvars`
stack, so nesting works across ``with`` blocks and — when the caller copies
its context, as the parallel extension does — across worker threads.

Finished **root** spans land in a bounded ring buffer and are handed to the
configured exporters.  Two exporters ship with the library:

* :class:`InMemorySpanExporter` — a ring buffer, used by tests and
  ``EXPLAIN ANALYZE``;
* :class:`JsonlSpanExporter` — appends one JSON object per trace to a file.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "summarize_trace",
]

#: guards child-list appends (spans may gain children from worker threads)
_TREE_LOCK = threading.Lock()


class Span:
    """One timed, tagged stage of a query; may contain child spans."""

    __slots__ = ("name", "tags", "children", "_start", "_end")

    is_recording = True

    def __init__(self, name: str, tags: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.children: List["Span"] = []
        self._start = time.perf_counter()
        self._end: Optional[float] = None

    # ------------------------------------------------------------------ state
    def set_tag(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one tag; returns self for chaining."""
        self.tags[key] = value
        return self

    def finish(self) -> None:
        """Mark the span as ended (idempotent)."""
        if self._end is None:
            self._end = time.perf_counter()

    def add_child(self, child: "Span") -> None:
        """Append a finished child span (thread-safe)."""
        with _TREE_LOCK:
            self.children.append(child)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self._end is not None

    @property
    def duration_seconds(self) -> float:
        """Elapsed seconds (live value while the span is still open)."""
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    # -------------------------------------------------------------- traversal
    def iter(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find_all(self, name: str) -> List["Span"]:
        """Every descendant span (including self) called ``name``."""
        return [span for span in self.iter() if span.name == name]

    def find(self, name: str) -> Optional["Span"]:
        """The first descendant span called ``name``, or None."""
        for span in self.iter():
            if span.name == name:
                return span
        return None

    # --------------------------------------------------------------- reporting
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly dictionary of the whole subtree."""
        return {
            "name": self.name,
            "duration_ms": self.duration_seconds * 1000.0,
            "tags": dict(self.tags),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self) -> str:
        """The subtree rendered as an indented tree with millisecond timings."""
        lines: List[str] = []
        self._render_into(lines, prefix="", is_last=True, is_root=True)
        return "\n".join(lines)

    def _render_into(self, lines: List[str], prefix: str, is_last: bool,
                     is_root: bool = False) -> None:
        tag_text = " ".join(f"{key}={_format_tag(value)}"
                            for key, value in self.tags.items())
        label = self.name if not tag_text else f"{self.name}  [{tag_text}]"
        duration = f"{self.duration_seconds * 1000.0:10.3f} ms"
        if is_root:
            lines.append(f"{duration}  {label}")
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(f"{duration}  {prefix}{connector}{label}")
            child_prefix = prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(self.children):
            child._render_into(lines, child_prefix, index == len(self.children) - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Span({self.name!r}, {self.duration_seconds * 1000.0:.3f} ms, "
                f"{len(self.children)} children)")


def _format_tag(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class NullSpan:
    """The shared no-op span returned when telemetry is disabled.

    Works both as a span (``set_tag`` is a no-op) and as its own context
    manager, so ``with obs.span("x") as sp: sp.set_tag(...)`` costs almost
    nothing on the disabled path.
    """

    __slots__ = ()

    is_recording = False
    name = ""
    tags: Dict[str, Any] = {}
    children: Tuple[()] = ()

    def set_tag(self, key: str, value: Any) -> "NullSpan":
        return self

    def finish(self) -> None:
        return None

    @property
    def duration_seconds(self) -> float:
        return 0.0

    def iter(self):
        return iter(())

    def find_all(self, name: str) -> List[Span]:
        return []

    def find(self, name: str) -> None:
        return None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: the singleton no-op span
NULL_SPAN = NullSpan()


class _SpanContext:
    """Context manager created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_tags", "_span", "_token", "_parent")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._tags = tags
        self._span: Optional[Span] = None
        self._token = None
        self._parent: Optional[Span] = None

    def __enter__(self) -> Span:
        self._parent = self._tracer._current.get(None)
        self._span = Span(self._name, self._tags)
        self._token = self._tracer._current.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        assert span is not None
        span.finish()
        if exc is not None:
            span.set_tag("error", f"{exc_type.__name__}: {exc}")
        self._tracer._current.reset(self._token)
        if self._parent is not None:
            self._parent.add_child(span)
        else:
            self._tracer._record_root(span)
        return False


class Tracer:
    """Creates spans, tracks nesting and collects finished root traces."""

    def __init__(self, exporters: Tuple = (), max_traces: int = 64) -> None:
        self.exporters = list(exporters)
        self._traces: deque = deque(maxlen=max_traces)
        self._lock = threading.Lock()
        self._current: contextvars.ContextVar = contextvars.ContextVar(
            "repro_obs_current_span", default=None
        )

    # ------------------------------------------------------------------- API
    def span(self, name: str, **tags: Any) -> _SpanContext:
        """Open a nested span; use as a context manager."""
        return _SpanContext(self, name, tags)

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the calling context (None at top level)."""
        return self._current.get(None)

    @property
    def traces(self) -> Tuple[Span, ...]:
        """The finished root spans, oldest first."""
        with self._lock:
            return tuple(self._traces)

    def last_trace(self) -> Optional[Span]:
        """The most recently finished root span, or None."""
        with self._lock:
            return self._traces[-1] if self._traces else None

    def add_exporter(self, exporter) -> None:
        """Register another exporter for future root spans."""
        self.exporters.append(exporter)

    def reset(self) -> None:
        """Drop every recorded trace."""
        with self._lock:
            self._traces.clear()

    # ------------------------------------------------------------- internals
    def _record_root(self, span: Span) -> None:
        with self._lock:
            self._traces.append(span)
        for exporter in self.exporters:
            exporter.export(span)


class InMemorySpanExporter:
    """Keeps the last ``capacity`` root spans in a ring buffer."""

    def __init__(self, capacity: int = 256) -> None:
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        """Record one finished root span."""
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> Tuple[Span, ...]:
        """The exported spans, oldest first."""
        with self._lock:
            return tuple(self._spans)

    def clear(self) -> None:
        """Drop every exported span."""
        with self._lock:
            self._spans.clear()


class JsonlSpanExporter:
    """Appends each finished root span to a JSONL file (one trace per line)."""

    def __init__(self, path) -> None:
        self.path = str(path)
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        """Serialise one root span and append it to the file."""
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")


def summarize_trace(root: Span) -> Dict[str, Any]:
    """Per-query aggregates derived by walking one span tree.

    Returns ``{"counters": {...}, "stage_seconds": {...}}`` where counters
    accumulate the well-known tags (``rows`` on ``sample.draw`` spans,
    ``iterations`` on ``isla.iteration`` spans) and ``stage_seconds`` sums the
    wall-clock duration of every span name.
    """
    counters: Dict[str, float] = {"spans": 0}
    stage_seconds: Dict[str, float] = {}
    for span in root.iter():
        counters["spans"] += 1
        stage_seconds[span.name] = (
            stage_seconds.get(span.name, 0.0) + span.duration_seconds
        )
        if span.name == "sample.draw":
            counters["sample.rows"] = (
                counters.get("sample.rows", 0.0) + float(span.tags.get("rows", 0) or 0)
            )
            counters["sample.draws"] = counters.get("sample.draws", 0.0) + 1
        elif span.name == "isla.iteration":
            counters["isla.iterations"] = (
                counters.get("isla.iterations", 0.0)
                + float(span.tags.get("iterations", 0) or 0)
            )
            counters["isla.blocks"] = counters.get("isla.blocks", 0.0) + 1
    return {"counters": counters, "stage_seconds": stage_seconds}
