"""The telemetry facade: one switch, one registry, one tracer.

A :class:`Telemetry` object bundles a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.tracing.Tracer` behind a single enabled/disabled
switch.  Instrumentation sites never talk to a tracer directly — they call the
module-level helpers (:func:`span`, :func:`stopwatch`, :func:`counter`,
:func:`observe`), which resolve the *active* telemetry:

1. whatever :meth:`Telemetry.activate` pushed onto the context-var stack
   (the engine pushes its own instance, ``EXPLAIN ANALYZE`` pushes a
   force-enabled capture), else
2. the process-global default, whose switch comes from the
   ``REPRO_TELEMETRY`` environment variable.

When the resolved telemetry is disabled every helper returns a shared no-op
(:data:`~repro.obs.tracing.NULL_SPAN`), so the cost of an instrumented call
site is one context-var read and one attribute check.
"""

from __future__ import annotations

import contextvars
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_SPAN, Span, Tracer, summarize_trace

__all__ = [
    "ENV_VAR",
    "Telemetry",
    "Stopwatch",
    "QueryTelemetry",
    "get_telemetry",
    "set_telemetry",
    "configure",
    "active_telemetry",
    "span",
    "stopwatch",
    "counter",
    "observe",
    "gauge",
]

#: environment variable toggling the process-global default telemetry
ENV_VAR = "REPRO_TELEMETRY"

_TRUTHY = {"1", "true", "yes", "on", "enabled"}


def _env_enabled(default: bool = False) -> bool:
    """Resolve the ``REPRO_TELEMETRY`` toggle (unset -> ``default``)."""
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return default
    return raw.strip().lower() in _TRUTHY


class Telemetry:
    """A metrics registry and tracer behind one enabled/disabled switch."""

    def __init__(
        self,
        enabled: Optional[bool] = None,
        exporters: Tuple = (),
        max_traces: int = 64,
    ) -> None:
        #: ``enabled=None`` defers to the ``REPRO_TELEMETRY`` environment variable
        self._enabled = _env_enabled(False) if enabled is None else bool(enabled)
        self.registry = MetricsRegistry()
        self.tracer = Tracer(exporters=exporters, max_traces=max_traces)

    # --------------------------------------------------------------- switch
    @property
    def enabled(self) -> bool:
        """Whether spans and metrics are being recorded."""
        return self._enabled

    def enable(self) -> None:
        """Turn recording on."""
        self._enabled = True

    def disable(self) -> None:
        """Turn recording off (the no-op fast path)."""
        self._enabled = False

    # ------------------------------------------------------------------ API
    def span(self, name: str, **tags: Any):
        """Open a span on this instance (no-op when disabled)."""
        if not self._enabled:
            return NULL_SPAN
        return self.tracer.span(name, **tags)

    def activate(self) -> "_Activation":
        """Context manager making this the active telemetry for the scope."""
        return _Activation(self)

    def reset(self) -> None:
        """Drop recorded traces and reset every metric."""
        self.tracer.reset()
        self.registry.reset()


class _Activation:
    """Pushes one telemetry instance onto the active stack."""

    __slots__ = ("_telemetry", "_token")

    def __init__(self, telemetry: Telemetry) -> None:
        self._telemetry = telemetry
        self._token = None

    def __enter__(self) -> Telemetry:
        self._token = _ACTIVE.set(self._telemetry)
        return self._telemetry

    def __exit__(self, exc_type, exc, tb) -> bool:
        _ACTIVE.reset(self._token)
        return False


_ACTIVE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_active_telemetry", default=None
)
_GLOBAL: Optional[Telemetry] = None


def get_telemetry() -> Telemetry:
    """The process-global default telemetry (created lazily from the env)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = Telemetry(enabled=None)
    return _GLOBAL


def set_telemetry(telemetry: Telemetry) -> None:
    """Replace the process-global default telemetry."""
    global _GLOBAL
    _GLOBAL = telemetry


def configure(enabled: bool) -> Telemetry:
    """Switch the process-global default telemetry on or off."""
    telemetry = get_telemetry()
    if enabled:
        telemetry.enable()
    else:
        telemetry.disable()
    return telemetry


def active_telemetry() -> Telemetry:
    """The telemetry instrumentation sites should write to right now."""
    active = _ACTIVE.get(None)
    return active if active is not None else get_telemetry()


# ------------------------------------------------------------ module helpers
def span(name: str, **tags: Any):
    """Open a span on the active telemetry (shared no-op when disabled)."""
    telemetry = _ACTIVE.get(None)
    if telemetry is None:
        telemetry = get_telemetry()
    if not telemetry._enabled:
        return NULL_SPAN
    return telemetry.tracer.span(name, **tags)


def counter(name: str, amount: float = 1.0) -> None:
    """Increment a counter on the active telemetry (no-op when disabled)."""
    telemetry = _ACTIVE.get(None)
    if telemetry is None:
        telemetry = get_telemetry()
    if telemetry._enabled:
        telemetry.registry.inc(name, amount)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active telemetry."""
    telemetry = _ACTIVE.get(None)
    if telemetry is None:
        telemetry = get_telemetry()
    if telemetry._enabled:
        telemetry.registry.observe(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active telemetry (no-op when disabled)."""
    telemetry = _ACTIVE.get(None)
    if telemetry is None:
        telemetry = get_telemetry()
    if telemetry._enabled:
        telemetry.registry.set_gauge(name, value)


class Stopwatch:
    """Times a stage unconditionally; records a span + histogram when enabled.

    Several call sites need the elapsed time *as data* (``elapsed_seconds``
    on result objects, the time-constrained budget arithmetic), so the clock
    always runs; the span and the ``<name>.seconds`` histogram observation
    only happen when the active telemetry is enabled.  This is the drop-in
    replacement for the manual ``time.perf_counter()`` start/stop pairs the
    extensions used to carry.
    """

    __slots__ = ("name", "tags", "span", "_start", "_elapsed", "_span_context")

    def __init__(self, name: str, tags: Dict[str, Any]) -> None:
        self.name = name
        self.tags = tags
        self.span: Optional[Span] = None
        self._start = 0.0
        self._elapsed: Optional[float] = None
        self._span_context = None

    def __enter__(self) -> "Stopwatch":
        context = span(self.name, **self.tags)
        if context is not NULL_SPAN:
            self._span_context = context
            self.span = context.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._elapsed = time.perf_counter() - self._start
        if self._span_context is not None:
            self._span_context.__exit__(exc_type, exc, tb)
            observe(f"{self.name}.seconds", self._elapsed)
        return False

    @property
    def elapsed_seconds(self) -> float:
        """Elapsed seconds; live while running, frozen once exited."""
        if self._elapsed is not None:
            return self._elapsed
        return time.perf_counter() - self._start

    def set_tag(self, key: str, value: Any) -> "Stopwatch":
        """Forward a tag to the underlying span (no-op when disabled)."""
        if self.span is not None:
            self.span.set_tag(key, value)
        return self


def stopwatch(name: str, **tags: Any) -> Stopwatch:
    """A :class:`Stopwatch` context manager for the active telemetry."""
    return Stopwatch(name, tags)


@dataclass(frozen=True)
class QueryTelemetry:
    """Per-query telemetry attached to an ``ExecutionResult``."""

    #: the root span of the query's trace
    trace: Span
    #: aggregates derived from the trace (sample rows, ISLA iterations, ...)
    counters: Dict[str, float] = field(default_factory=dict)
    #: total wall-clock seconds per span name
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_span(cls, root: Span) -> "QueryTelemetry":
        """Build the per-query summary from a finished root span."""
        summary = summarize_trace(root)
        return cls(
            trace=root,
            counters=summary["counters"],
            stage_seconds=summary["stage_seconds"],
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly view (span tree + derived aggregates)."""
        return {
            "trace": self.trace.to_dict(),
            "counters": dict(self.counters),
            "stage_seconds": dict(self.stage_seconds),
        }
