"""Descriptive distribution summaries.

Used by examples and the experiment harness to report the shape of the data a
workload generator produced (skewness drives how hard the aggregation problem
is for uniform sampling, which is the paper's motivation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EmptyDataError

__all__ = ["DistributionSummary", "summarize"]


@dataclass(frozen=True)
class DistributionSummary:
    """Moments and quantiles of a one-dimensional sample."""

    count: int
    mean: float
    std: float
    skewness: float
    kurtosis: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.p75 - self.p25

    @property
    def coefficient_of_variation(self) -> float:
        """std / |mean| (infinite when the mean is zero)."""
        if self.mean == 0.0:
            return float("inf")
        return self.std / abs(self.mean)

    def is_heavily_skewed(self, threshold: float = 1.0) -> bool:
        """True when |skewness| exceeds ``threshold`` (default 1.0)."""
        return abs(self.skewness) > threshold


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Compute a :class:`DistributionSummary` for ``values``."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise EmptyDataError("cannot summarise an empty sample")
    mean = float(array.mean())
    std = float(array.std())
    centered = array - mean
    if std > 0.0:
        skewness = float((centered ** 3).mean() / std ** 3)
        kurtosis = float((centered ** 4).mean() / std ** 4 - 3.0)
    else:
        skewness = 0.0
        kurtosis = 0.0
    p25, median, p75 = (float(q) for q in np.percentile(array, [25, 50, 75]))
    return DistributionSummary(
        count=int(array.size),
        mean=mean,
        std=std,
        skewness=skewness,
        kurtosis=kurtosis,
        minimum=float(array.min()),
        p25=p25,
        median=median,
        p75=p75,
        maximum=float(array.max()),
    )
