"""Confidence intervals and the sample-size formula of the paper (Eq. 1).

Section III-A of the paper derives the required sample size from Definition 1
(normal-theory confidence interval): for desired half-width ``e`` and
confidence ``beta`` the sample size is ``m = u^2 sigma^2 / e^2`` where ``u``
is the two-sided normal quantile for ``beta``.  The sampling rate is then
``r = m / M``.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from scipy import stats as _scipy_stats

from repro.errors import ConfigurationError

__all__ = [
    "normal_quantile",
    "required_sample_size",
    "required_sampling_rate",
    "half_width",
    "ConfidenceInterval",
    "confidence_interval",
]


def normal_quantile(confidence: float) -> float:
    """Return the two-sided standard-normal quantile ``u`` for ``confidence``.

    ``u`` satisfies ``P(-u <= Z <= u) = confidence`` for ``Z ~ N(0, 1)``.
    The paper calls this parameter ``u`` in Definition 1.

    Parameters
    ----------
    confidence:
        Coverage probability ``beta``, strictly between 0 and 1.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must lie in (0, 1), got {confidence!r}"
        )
    return float(_scipy_stats.norm.ppf(0.5 + confidence / 2.0))


def required_sample_size(sigma: float, precision: float, confidence: float) -> int:
    """Sample size ``m = u^2 sigma^2 / e^2`` (paper Eq. 1, numerator).

    Parameters
    ----------
    sigma:
        Estimated population standard deviation.
    precision:
        Desired half-width ``e`` of the confidence interval.
    confidence:
        Coverage probability ``beta``.

    Returns
    -------
    int
        The number of samples needed, rounded up, and never less than 1.
    """
    if sigma < 0.0:
        raise ConfigurationError(f"sigma must be non-negative, got {sigma!r}")
    if precision <= 0.0:
        raise ConfigurationError(f"precision must be positive, got {precision!r}")
    u = normal_quantile(confidence)
    m = (u * sigma / precision) ** 2
    return max(1, int(math.ceil(m)))


def required_sampling_rate(
    sigma: float,
    precision: float,
    confidence: float,
    population_size: int,
) -> float:
    """Sampling rate ``r = u^2 sigma^2 / (M e^2)`` (paper Eq. 1), capped at 1.

    Parameters
    ----------
    sigma, precision, confidence:
        As in :func:`required_sample_size`.
    population_size:
        The data size ``M``.
    """
    if population_size <= 0:
        raise ConfigurationError(
            f"population_size must be positive, got {population_size!r}"
        )
    m = required_sample_size(sigma, precision, confidence)
    return min(1.0, m / population_size)


def half_width(sigma: float, sample_size: int, confidence: float) -> float:
    """Half-width ``u * sigma / sqrt(m)`` of the CI achieved by ``sample_size``."""
    if sample_size <= 0:
        raise ConfigurationError(
            f"sample_size must be positive, got {sample_size!r}"
        )
    if sigma < 0.0:
        raise ConfigurationError(f"sigma must be non-negative, got {sigma!r}")
    return normal_quantile(confidence) * sigma / math.sqrt(sample_size)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval ``(center - radius, center + radius)``."""

    center: float
    radius: float
    confidence: float

    @property
    def low(self) -> float:
        """Lower endpoint of the interval."""
        return self.center - self.radius

    @property
    def high(self) -> float:
        """Upper endpoint of the interval."""
        return self.center + self.radius

    @property
    def width(self) -> float:
        """Total width (``2 * radius``)."""
        return 2.0 * self.radius

    def contains(self, value: float) -> bool:
        """Return True when ``value`` lies inside the closed interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.low:.6g}, {self.high:.6g}] "
            f"({self.confidence:.0%} confidence)"
        )


def confidence_interval(
    mean: float,
    sigma: float,
    sample_size: int,
    confidence: float,
) -> ConfidenceInterval:
    """Normal-theory confidence interval around a sample mean (Definition 1)."""
    radius = half_width(sigma, sample_size, confidence)
    return ConfidenceInterval(center=mean, radius=radius, confidence=confidence)
