"""Streaming moment accumulators.

Two flavours are provided:

* :class:`RunningMoments` — Welford-style mean/variance accumulation, used by
  the Pre-estimation module to summarise pilot samples and by the non-i.i.d.
  extension to estimate per-block variances.
* :class:`StreamingMoments` — raw power sums (count, sum, sum of squares, sum
  of cubes).  This is the same information the paper keeps in ``paramS`` /
  ``paramL`` and is what Theorem 3 consumes; it is kept here as a generic
  reusable primitive, while :class:`repro.core.accumulators.RegionMoments`
  adds the region semantics on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math
from typing import Iterable

import numpy as np

__all__ = ["RunningMoments", "StreamingMoments"]


@dataclass
class RunningMoments:
    """Numerically stable running mean / variance (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    minimum: float = math.inf
    maximum: float = -math.inf

    def update(self, value: float) -> None:
        """Fold a single observation into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def update_many(self, values: Iterable[float]) -> None:
        """Fold an iterable (or array) of observations into the accumulator."""
        array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                           dtype=float)
        if array.size == 0:
            return
        other = RunningMoments.from_values(array)
        self.merge(other)

    def merge(self, other: "RunningMoments") -> None:
        """Merge another accumulator into this one (parallel combination)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        """Unbiased (n-1) sample variance."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def sample_std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.sample_variance)

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "RunningMoments":
        """Build an accumulator from a batch of values in one vectorised pass."""
        array = np.asarray(values, dtype=float)
        moments = cls()
        if array.size == 0:
            return moments
        moments.count = int(array.size)
        moments.mean = float(array.mean())
        moments._m2 = float(((array - moments.mean) ** 2).sum())
        moments.minimum = float(array.min())
        moments.maximum = float(array.max())
        return moments


@dataclass
class StreamingMoments:
    """Raw power sums up to the third moment.

    The paper's Algorithm 1 records exactly these four quantities per region
    (``counter``, ``sum``, ``squareSum``, ``cubeSum``); keeping only power
    sums is what makes ISLA insensitive to the sampling order and frees it
    from storing samples.
    """

    count: int = 0
    total: float = 0.0
    square_sum: float = 0.0
    cube_sum: float = 0.0

    def update(self, value: float) -> None:
        """Add a single observation."""
        self.count += 1
        self.total += value
        self.square_sum += value * value
        self.cube_sum += value * value * value

    def update_many(self, values: Iterable[float]) -> None:
        """Add a batch of observations (vectorised)."""
        array = np.asarray(values, dtype=float)
        if array.size == 0:
            return
        self.count += int(array.size)
        self.total += float(array.sum())
        self.square_sum += float((array ** 2).sum())
        self.cube_sum += float((array ** 3).sum())

    def merge(self, other: "StreamingMoments") -> None:
        """Merge another accumulator (power sums are additive)."""
        self.count += other.count
        self.total += other.total
        self.square_sum += other.square_sum
        self.cube_sum += other.cube_sum

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Population variance computed from the power sums."""
        if self.count == 0:
            return 0.0
        mean = self.mean
        return max(0.0, self.square_sum / self.count - mean * mean)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "StreamingMoments":
        """Build the accumulator from a batch of values."""
        moments = cls()
        moments.update_many(values)
        return moments

    def copy(self) -> "StreamingMoments":
        """Return an independent copy."""
        return StreamingMoments(
            count=self.count,
            total=self.total,
            square_sum=self.square_sum,
            cube_sum=self.cube_sum,
        )
