"""Statistical substrate: confidence intervals, running moments, estimators.

This package implements the statistics machinery the paper relies on in its
Pre-estimation module (Section III): normal-quantile based confidence
intervals (Definition 1), the required-sample-size formula (Eq. 1), and
numerically stable streaming moments used to summarise pilot samples.
"""

from repro.stats.confidence import (
    ConfidenceInterval,
    confidence_interval,
    half_width,
    normal_quantile,
    required_sample_size,
    required_sampling_rate,
)
from repro.stats.moments import RunningMoments, StreamingMoments
from repro.stats.estimators import (
    hansen_hurwitz_mean,
    weighted_mean,
    trimmed_mean,
    population_total,
)
from repro.stats.distributions import DistributionSummary, summarize

__all__ = [
    "ConfidenceInterval",
    "confidence_interval",
    "half_width",
    "normal_quantile",
    "required_sample_size",
    "required_sampling_rate",
    "RunningMoments",
    "StreamingMoments",
    "hansen_hurwitz_mean",
    "weighted_mean",
    "trimmed_mean",
    "population_total",
    "DistributionSummary",
    "summarize",
]
