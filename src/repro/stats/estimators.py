"""Classical sampling estimators used by baselines and extensions.

These are textbook estimators (weighted mean, Hansen–Hurwitz, trimmed mean)
that the baseline samplers in :mod:`repro.sampling` build on.  They are kept
separate from the ISLA core so the baselines do not depend on the paper's
leverage machinery.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EstimationError

__all__ = [
    "weighted_mean",
    "hansen_hurwitz_mean",
    "trimmed_mean",
    "population_total",
]


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted mean ``sum(w_i x_i) / sum(w_i)``.

    Raises
    ------
    EstimationError
        If the inputs are empty, have mismatched lengths, or the weights sum
        to zero.
    """
    value_array = np.asarray(values, dtype=float)
    weight_array = np.asarray(weights, dtype=float)
    if value_array.size == 0:
        raise EstimationError("weighted_mean requires at least one value")
    if value_array.shape != weight_array.shape:
        raise EstimationError(
            "values and weights must have the same shape: "
            f"{value_array.shape} vs {weight_array.shape}"
        )
    weight_total = float(weight_array.sum())
    if weight_total == 0.0:
        raise EstimationError("weights sum to zero")
    return float((value_array * weight_array).sum() / weight_total)


def hansen_hurwitz_mean(
    values: Sequence[float],
    inclusion_probabilities: Sequence[float],
    population_size: int,
) -> float:
    """Hansen–Hurwitz estimator of the population mean under PPS sampling.

    For ``m`` draws with replacement where item ``i`` is selected with
    probability ``p_i`` (summing to 1 over the population), the unbiased
    estimator of the population total is ``(1/m) * sum(x_i / p_i)``; dividing
    by the population size gives the mean.  This is the estimator used by the
    SLEV baseline (algorithmic leveraging, reference [2] of the paper).
    """
    value_array = np.asarray(values, dtype=float)
    prob_array = np.asarray(inclusion_probabilities, dtype=float)
    if value_array.size == 0:
        raise EstimationError("hansen_hurwitz_mean requires at least one draw")
    if value_array.shape != prob_array.shape:
        raise EstimationError("values and probabilities must have the same shape")
    if np.any(prob_array <= 0.0):
        raise EstimationError("all selection probabilities must be positive")
    if population_size <= 0:
        raise EstimationError("population_size must be positive")
    total_estimate = float((value_array / prob_array).mean())
    return total_estimate / population_size


def trimmed_mean(values: Sequence[float], proportion: float = 0.05) -> float:
    """Symmetric trimmed mean, dropping ``proportion`` from each tail.

    Provided as a robust-baseline utility for examples and ablations.
    """
    if not 0.0 <= proportion < 0.5:
        raise EstimationError(
            f"trim proportion must lie in [0, 0.5), got {proportion!r}"
        )
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        raise EstimationError("trimmed_mean requires at least one value")
    cut = int(array.size * proportion)
    trimmed = array[cut : array.size - cut] if cut > 0 else array
    if trimmed.size == 0:
        raise EstimationError("trimming removed every value")
    return float(trimmed.mean())


def population_total(mean: float, population_size: int) -> float:
    """SUM aggregation derived from AVG: ``mean * M`` (paper Section I)."""
    if population_size < 0:
        raise EstimationError("population_size must be non-negative")
    return mean * population_size
