"""repro — a reproduction of ISLA, the iterative leverage-based approximate
aggregation scheme of Han et al. (ICDE 2019).

The most common entry points are re-exported here::

    from repro import ISLAAggregator, ISLAConfig, BlockStore, AQPEngine

See README.md for a quickstart and DESIGN.md for the full system inventory.
"""

from repro import faults, obs
from repro.obs import Telemetry
from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.core.result import AggregateResult, BlockResult
from repro.storage.blockstore import BlockStore
from repro.storage.table import Table
from repro.storage.catalog import Catalog
from repro.query.engine import AQPEngine
from repro.serve import QueryService, ServeConfig
from repro.errors import ReproError

__version__ = "1.5.0"

__all__ = [
    "ISLAAggregator",
    "ISLAConfig",
    "AggregateResult",
    "BlockResult",
    "BlockStore",
    "Table",
    "Catalog",
    "AQPEngine",
    "QueryService",
    "ServeConfig",
    "ReproError",
    "Telemetry",
    "faults",
    "obs",
    "__version__",
]
