"""Throughput benchmark for the serving subsystem (shared by CLI + script).

Builds a synthetic multi-table workload with repeated statements (the
serving sweet spot: answers become reusable across queries that ask the
same question with an equal-or-looser error budget), then measures

* a **serial** baseline — one ``engine.execute`` loop, the pre-serving
  code path;
* the **worker pool with the precision-aware cache** (the service as
  deployed);
* optionally the **pool alone** (cache disabled) to isolate concurrency
  from reuse.

Every served answer is verified against the exact ground truth of its
table: the absolute error must be within the requested ``PRECISION``
(checked at the workload's confidence level across the batch).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import StorageError
from repro.query.engine import AQPEngine
from repro.serve.service import QueryService, ServeConfig

__all__ = [
    "build_workload",
    "discover_store_directories",
    "run_throughput_benchmark",
    "format_report",
]


def build_workload(
    tables: Union[int, Sequence[str]],
    repeats: int,
    seed: int,
    precisions: tuple = (0.5, 1.0),
) -> List[str]:
    """Repeated multi-table statements, deterministically shuffled.

    ``tables`` is either a count (synthetic ``serve_t<i>`` names) or the
    explicit table names of a loaded data directory.
    """
    if isinstance(tables, int):
        tables = [f"serve_t{index}" for index in range(tables)]
    unique = [
        f"SELECT AVG(value) FROM {name} PRECISION {precision:g} CONFIDENCE 0.95"
        for name in tables
        for precision in precisions
    ]
    workload = unique * repeats
    np.random.default_rng(seed).shuffle(workload)
    return workload


def discover_store_directories(data_dir: Union[str, Path]) -> List[Path]:
    """Durable-store directories under ``data_dir`` (or itself if it is one)."""
    root = Path(data_dir)
    if (root / "MANIFEST.json").exists():
        return [root]
    found = sorted(path.parent for path in root.glob("*/MANIFEST.json"))
    if not found:
        raise StorageError(f"no durable stores (MANIFEST.json) under {root}")
    return found


def _build_engine(
    table_count: int,
    data_size: int,
    seed: int,
    block_count: int,
    parallelism: Optional[int] = None,
    data_dir: Optional[Union[str, Path]] = None,
) -> AQPEngine:
    engine = AQPEngine(seed=seed, parallelism=parallelism)
    if data_dir is not None:
        for directory in discover_store_directories(data_dir):
            engine.open(directory)
        return engine
    rng = np.random.default_rng(seed)
    for index in range(table_count):
        values = rng.normal(100.0 + 10.0 * index, 20.0, data_size)
        engine.register_array(f"serve_t{index}", values, block_count=block_count)
    return engine


def run_throughput_benchmark(
    data_size: int = 200_000,
    table_count: int = 3,
    repeats: int = 4,
    workers: int = 4,
    seed: int = 0,
    block_count: int = 16,
    include_uncached_pool: bool = True,
    parallelism: Optional[int] = None,
    data_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Run the three configurations over one workload; returns a report dict.

    ``parallelism`` routes every scan through the partition backend; serve
    workers submit their shards into the one shared scan pool, so worker
    threads multiply throughput without multiplying scan threads.

    ``data_dir`` serves the workload from durable on-disk stores
    (memory-mapped) instead of synthesising tables, so the bench measures
    the cold-open/mmap read path end to end.
    """
    # ------------------------------------------------------- serial baseline
    engine = _build_engine(table_count, data_size, seed, block_count, parallelism,
                           data_dir)
    tables = list(engine.tables)
    workload = build_workload(tables, repeats, seed)
    truths = {}
    for name in tables:
        truths[name] = engine.catalog.resolve(name).exact_mean()
    if data_dir is not None:
        data_size = engine.catalog.resolve(tables[0]).total_rows
    start = time.perf_counter()
    serial_results = [engine.execute(statement) for statement in workload]
    serial_seconds = time.perf_counter() - start
    engine.close()

    # ------------------------------------------------- worker pool + cache
    engine = _build_engine(table_count, data_size, seed, block_count, parallelism,
                           data_dir)
    service = QueryService(
        engine,
        ServeConfig(workers=workers, max_queue=max(len(workload), 1), seed=seed),
    )
    with service:
        start = time.perf_counter()
        outcomes = service.execute_many(workload)
        pool_seconds = time.perf_counter() - start
        stats = service.stats()
    engine.close()

    # --------------------------------------------------- pool, cache off
    uncached_seconds: Optional[float] = None
    if include_uncached_pool:
        engine = _build_engine(table_count, data_size, seed, block_count, parallelism,
                               data_dir)
        with QueryService(
            engine,
            ServeConfig(
                workers=workers,
                max_queue=max(len(workload), 1),
                cache_enabled=False,
                seed=seed,
            ),
        ) as uncached:
            start = time.perf_counter()
            uncached_outcomes = uncached.execute_many(workload)
            uncached_seconds = time.perf_counter() - start
        engine.close()
        assert all(outcome.ok for outcome in uncached_outcomes)

    # ------------------------------------------------------- verification
    # Two distinct properties are checked:
    #
    # * statistical — every *execution* must land within its requested
    #   precision vs exact ground truth, up to the workload's confidence
    #   level (a 95%-confidence answer legitimately misses ~5% of the
    #   time).  Cache hits re-serve a single execution many times, so the
    #   miss rate is measured over executions, not served queries —
    #   otherwise one tail-event execution amplified by the cache would
    #   dominate the count.
    # * contract — a cache/coalesced hit may only be served when its
    #   achieved half-width is <= the requested precision at >= the
    #   requested confidence.  This is deterministic: any violation is a
    #   serving-layer bug, never statistical noise.
    violations = 0
    executed = 0
    executed_misses = 0
    contract_violations = 0
    served_without_execution = 0
    for outcome, statement in zip(outcomes, workload):
        assert outcome.ok, f"serving failed for {statement!r}: {outcome.error}"
        result = outcome.result
        requested_precision = float(statement.split("PRECISION")[1].split()[0])
        missed = abs(result.value - truths[result.table]) > requested_precision
        if missed:
            violations += 1
        if outcome.cache_hit:
            served_without_execution += 1
            achieved = result.details.get("achieved_precision")
            confidence = result.details.get("achieved_confidence")
            if (
                achieved is None
                or achieved > requested_precision + 1e-12
                or confidence is None
                or confidence < result.details["requested_confidence"] - 1e-12
            ):
                contract_violations += 1
        else:
            executed += 1
            if missed:
                executed_misses += 1

    queries = len(workload)
    return {
        "queries": queries,
        "data_size": data_size,
        "tables": len(tables),
        "data_dir": str(data_dir) if data_dir is not None else None,
        "workers": workers,
        "serial_seconds": serial_seconds,
        "pool_cached_seconds": pool_seconds,
        "pool_uncached_seconds": uncached_seconds,
        "speedup_cached": serial_seconds / pool_seconds if pool_seconds > 0 else float("inf"),
        "serial_qps": queries / serial_seconds,
        "pool_cached_qps": queries / pool_seconds,
        # served from the cache or coalesced onto an identical in-flight
        # execution — either way, answered without touching a block
        "cache_hit_rate": served_without_execution / queries if queries else 0.0,
        "cache": stats["cache"],
        "coalesced": stats["coalesced"],
        "precision_violations": violations,
        "executed": executed,
        "executed_misses": executed_misses,
        "contract_violations": contract_violations,
        "serial_answers": len(serial_results),
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_throughput_benchmark` output."""
    lines = [
        "serve throughput benchmark",
        f"  workload:        {report['queries']} queries over {report['tables']} tables "
        f"({report['data_size']} rows each)",
    ]
    if report.get("data_dir"):
        lines.append(
            f"  data dir:        {report['data_dir']} (durable stores, mmap scans)"
        )
    lines += [
        f"  serial loop:     {report['serial_seconds']:.3f}s "
        f"({report['serial_qps']:.1f} q/s)",
        f"  pool + cache:    {report['pool_cached_seconds']:.3f}s "
        f"({report['pool_cached_qps']:.1f} q/s, {report['workers']} workers, "
        f"{report['cache_hit_rate']:.0%} cache hits)",
    ]
    if report["pool_uncached_seconds"] is not None:
        lines.append(
            f"  pool, no cache:  {report['pool_uncached_seconds']:.3f}s "
            f"({report['queries'] / report['pool_uncached_seconds']:.1f} q/s)"
        )
    lines.append(f"  speedup (cached pool vs serial): {report['speedup_cached']:.2f}x")
    lines.append(
        f"  precision violations vs exact ground truth: "
        f"{report['precision_violations']}/{report['queries']} served "
        f"({report['executed_misses']}/{report['executed']} executions, "
        f"{report['contract_violations']} cache-contract violations)"
    )
    return "\n".join(lines)
