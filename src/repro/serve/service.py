"""The in-process query-serving subsystem: worker pool + admission + cache.

:class:`QueryService` layers three production concerns on top of
:class:`~repro.query.engine.AQPEngine`:

* a **bounded worker pool** with a futures-based submission API
  (:meth:`~QueryService.submit` / :meth:`~QueryService.execute_many`)
  running concurrent queries against the engine's shared catalog;
* **admission control** — a bounded queue with load shedding (typed
  :class:`Rejected` outcomes rather than exceptions), per-query deadlines
  checked at dequeue time, and retry-with-backoff for transient estimator
  failures;
* a **precision-aware result cache** keyed on the canonical query
  signature plus the catalog's per-table version: a cached answer is
  served iff its achieved CI half-width is at most the requested
  ``PRECISION`` and its confidence at least the requested ``CONFIDENCE``.

Every submitted query derives an independent child of one
``np.random.SeedSequence`` (in submission order), so a seeded service
produces bit-identical answers regardless of worker interleaving.  This is
one half of the seed-determinism contract shared with the partition
backend and documented in :mod:`repro.parallel.seeding`: a served query's
child seed becomes the root of that query's per-partition spawn, so
serving-level and scan-level concurrency compose without ever changing a
seeded answer.

When the engine's config sets ``parallelism``, worker threads shard their
block scans into the one process-wide scan pool
(:func:`repro.parallel.pool.shared_scan_pool`) — total scan threads stay
bounded by the pool size no matter how many service workers are executing,
so serving concurrency never oversubscribes the machine.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from concurrent.futures import Future
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import (
    AdmissionRejected,
    ConvergenceError,
    EstimationError,
    ReproError,
    ServiceClosed,
    TimeBudgetExceeded,
)
from repro.query.engine import AQPEngine
from repro.query.executor import ExecutionResult
from repro.query.planner import QueryPlan
from repro.serve.admission import AdmissionController
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import CacheKey, ResultCache, achieved_bound

__all__ = ["ServeConfig", "Rejected", "QueryOutcome", "QueryTicket", "QueryService"]

#: sentinel pushed once per worker to terminate the pool
_SHUTDOWN = object()


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of a :class:`QueryService`."""

    #: worker threads executing queries
    workers: int = 4
    #: maximum queries waiting for a worker before load shedding kicks in
    max_queue: int = 64
    #: deadline applied to submissions that do not carry their own (None = none)
    default_deadline_ms: Optional[float] = None
    #: additional attempts after a transient executor failure
    max_retries: int = 2
    #: base sleep before a retry; doubles per attempt
    retry_backoff_seconds: float = 0.01
    #: uniform jitter factor on retry backoff (0 = deterministic backoff);
    #: 0.5 means each sleep is stretched by up to +50%, de-synchronising
    #: retry herds when many queries fail at once
    retry_jitter: float = 0.5
    #: exception types treated as transient (retried with a fresh child seed)
    retryable_errors: Tuple[type, ...] = (ConvergenceError, EstimationError)
    #: master switch for the per-table circuit breaker
    breaker_enabled: bool = True
    #: executed-failure rate that trips a table's breaker
    breaker_failure_threshold: float = 0.5
    #: rolling window of executed outcomes the failure rate is computed over
    breaker_window: int = 32
    #: minimum executed outcomes in the window before the breaker may trip
    breaker_min_requests: int = 10
    #: seconds an open breaker rejects before letting probes through
    breaker_cooldown_seconds: float = 2.0
    #: consecutive probe successes that close a half-open breaker
    breaker_half_open_probes: int = 2
    #: master switch for the precision-aware result cache
    cache_enabled: bool = True
    #: LRU bound on cached answers
    cache_capacity: int = 256
    #: cached-answer time-to-live in seconds (None = no expiry)
    cache_ttl_seconds: Optional[float] = None
    #: root seed of the per-query SeedSequence spawns (None = engine seed)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be at least 1, got {self.workers}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be at least 1, got {self.max_queue}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.retry_backoff_seconds < 0:
            raise ValueError(
                f"retry_backoff_seconds must be non-negative, "
                f"got {self.retry_backoff_seconds}"
            )
        if self.retry_jitter < 0:
            raise ValueError(
                f"retry_jitter must be non-negative, got {self.retry_jitter}"
            )
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be positive, got {self.default_deadline_ms}"
            )
        # breaker knob validation is delegated to CircuitBreaker, which
        # raises the same ValueError contract on construction
        CircuitBreaker(
            failure_threshold=self.breaker_failure_threshold,
            window=self.breaker_window,
            min_requests=self.breaker_min_requests,
            cooldown_seconds=self.breaker_cooldown_seconds,
            half_open_probes=self.breaker_half_open_probes,
        )


@dataclass(frozen=True)
class Rejected:
    """Typed load-shedding outcome (the query was never executed)."""

    #: ``"queue_full"`` (shed at submit), ``"deadline"`` (shed at dequeue or
    #: mid-retry), or ``"circuit_open"`` (the table's breaker is rejecting)
    reason: str
    message: str


@dataclass(frozen=True)
class QueryOutcome:
    """Everything the service knows about one submitted query."""

    statement: str
    status: str  # "ok" | "rejected" | "failed"
    result: Optional[ExecutionResult] = None
    rejection: Optional[Rejected] = None
    error: Optional[BaseException] = None
    cache_hit: bool = False
    attempts: int = 0
    queue_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when a result was produced (from cache or execution)."""
        return self.status == "ok"

    def unwrap(self) -> ExecutionResult:
        """The result, or the typed error this outcome carries."""
        if self.result is not None:
            return self.result
        if self.rejection is not None:
            raise AdmissionRejected(self.rejection.reason, self.rejection.message)
        if self.error is not None:
            raise self.error
        raise ReproError(f"query {self.statement!r} produced no outcome")


class QueryTicket:
    """Handle to one submitted query (a thin wrapper over a Future)."""

    __slots__ = ("statement", "_future")

    def __init__(self, statement: str, future: Future) -> None:
        self.statement = statement
        self._future = future

    def done(self) -> bool:
        """True once the outcome is available."""
        return self._future.done()

    def outcome(self, timeout: Optional[float] = None) -> QueryOutcome:
        """Block until the service resolves this query."""
        return self._future.result(timeout=timeout)

    def result(self, timeout: Optional[float] = None) -> ExecutionResult:
        """The execution result; raises the typed error on rejection/failure."""
        return self.outcome(timeout=timeout).unwrap()


@dataclass
class _Submission:
    """One queue item: statement + deadline + pre-spawned child seed."""

    statement: str
    future: Future
    seed: np.random.SeedSequence
    enqueued_at: float
    deadline: Optional[float]  # absolute time.monotonic() instant


class QueryService:
    """Concurrent, cached, admission-controlled front door to an engine."""

    def __init__(self, engine: AQPEngine, config: Optional[ServeConfig] = None) -> None:
        self.engine = engine
        self.config = config or ServeConfig()
        self.cache: Optional[ResultCache] = (
            ResultCache(
                capacity=self.config.cache_capacity,
                ttl_seconds=self.config.cache_ttl_seconds,
            )
            if self.config.cache_enabled
            else None
        )
        self._admission = AdmissionController(self.config.max_queue)
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        # request coalescing: key -> Future[(result, bound)] of the in-flight
        # execution, so identical concurrent queries run the work once
        self._inflight_lock = threading.Lock()
        self._inflight: Dict[CacheKey, Future] = {}
        self._coalesced = 0
        root_seed = self.config.seed if self.config.seed is not None else engine.seed
        self._seed_seq = np.random.SeedSequence(root_seed)
        self._lock = threading.Lock()
        self._closed = False
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._shed_deadline = 0
        self._retries = 0
        self._rejected_circuit = 0
        self._degraded = 0
        # one breaker per (lower-cased) table, created on first execution
        self._breaker_lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        engine.catalog.subscribe(self._on_catalog_event)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{index}", daemon=True
            )
            for index in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ API
    def submit(
        self, statement: str, *, deadline_ms: Optional[float] = None
    ) -> QueryTicket:
        """Enqueue one statement; never blocks.

        Returns a :class:`QueryTicket` immediately.  When the wait queue is
        at ``max_queue`` the ticket resolves at once to a ``queue_full``
        :class:`Rejected` outcome (load shedding), so callers under
        overload fail fast instead of piling up.
        """
        future: Future = Future()
        ticket = QueryTicket(statement, future)
        deadline_ms = (
            deadline_ms if deadline_ms is not None else self.config.default_deadline_ms
        )
        with self._lock:
            if self._closed:
                raise ServiceClosed("submit() on a closed QueryService")
            self._submitted += 1
            admitted = self._admission.try_admit()
            # spawn under the lock: child seeds follow submission order, so a
            # seeded service is reproducible regardless of worker scheduling
            child_seed = self._seed_seq.spawn(1)[0] if admitted else None
        if not admitted:
            obs.counter("serve.admission.rejected")
            future.set_result(
                QueryOutcome(
                    statement=statement,
                    status="rejected",
                    rejection=Rejected(
                        reason="queue_full",
                        message=(
                            f"admission queue full "
                            f"({self.config.max_queue} waiting queries)"
                        ),
                    ),
                )
            )
            return ticket
        now = time.monotonic()
        self._queue.put(
            _Submission(
                statement=statement,
                future=future,
                seed=child_seed,
                enqueued_at=now,
                deadline=now + deadline_ms / 1000.0 if deadline_ms is not None else None,
            )
        )
        obs.counter("serve.submitted")
        obs.gauge("serve.queue.depth", self._admission.depth)
        return ticket

    def execute_many(
        self,
        statements: Iterable[str],
        *,
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> List[QueryOutcome]:
        """Submit a batch and wait for every outcome (in input order).

        Statements beyond the admission bound come back as ``queue_full``
        rejections — raise ``max_queue`` when a batch must fully execute.
        """
        tickets = [self.submit(statement, deadline_ms=deadline_ms) for statement in statements]
        return [ticket.outcome(timeout=timeout) for ticket in tickets]

    def invalidate(self, table: str) -> int:
        """Drop every cached answer for ``table``; returns the count."""
        if self.cache is None:
            return 0
        return self.cache.invalidate_table(table)

    def stats(self) -> Dict[str, Any]:
        """Plain-dict serving counters (independent of the obs switch).

        The counters are read under the service lock, so the snapshot is
        internally consistent — e.g. ``completed + failed`` never exceeds
        what ``submitted`` accounted for at the same instant.  The
        ``rejected`` sub-dict breaks load shedding down by typed reason.
        """
        with self._lock:
            queue_full = self._admission.rejected
            snapshot = {
                "workers": self.config.workers,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "degraded": self._degraded,
                "rejected": {
                    "queue_full": queue_full,
                    "deadline": self._shed_deadline,
                    "circuit_open": self._rejected_circuit,
                },
                # legacy flat keys, kept for dashboards and older callers
                "rejected_queue_full": queue_full,
                "shed_deadline": self._shed_deadline,
                "retries": self._retries,
                "coalesced": self._coalesced,
                "queue_depth": self._admission.depth,
                "cache": (
                    self.cache.stats.to_dict() if self.cache is not None else None
                ),
            }
        return snapshot

    def health(self) -> Dict[str, Any]:
        """Liveness/degradation report for external health checks.

        ``status`` is ``"ok"`` when the service accepts queries and every
        table breaker is closed, ``"degraded"`` when at least one breaker
        is open or half-open, and ``"closed"`` after :meth:`close`.
        """
        with self._breaker_lock:
            breakers = {
                table: breaker.stats() for table, breaker in self._breakers.items()
            }
        with self._lock:
            closed = self._closed
        tripped = [
            table for table, info in breakers.items() if info["state"] != "closed"
        ]
        status = "closed" if closed else ("degraded" if tripped else "ok")
        return {
            "status": status,
            "workers_alive": sum(1 for worker in self._workers if worker.is_alive()),
            "queue_depth": self._admission.depth,
            "breakers": breakers,
            "tripped_tables": tripped,
        }

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries, drain the queue and join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.engine.catalog.unsubscribe(self._on_catalog_event)
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------- internals
    def _breaker_for(self, table: str) -> CircuitBreaker:
        key = table.lower()
        with self._breaker_lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.config.breaker_failure_threshold,
                    window=self.config.breaker_window,
                    min_requests=self.config.breaker_min_requests,
                    cooldown_seconds=self.config.breaker_cooldown_seconds,
                    half_open_probes=self.config.breaker_half_open_probes,
                )
                self._breakers[key] = breaker
            return breaker

    def _retry_backoff(
        self, attempts: int, deadline: Optional[float]
    ) -> Tuple[float, bool]:
        """``(sleep_seconds, shed)`` for the retry after attempt ``attempts``.

        The single place where retry pacing meets the deadline: exponential
        base doubling per attempt, stretched by uniform jitter (so failure
        herds spread out instead of retrying in lock-step), then checked
        against the submission's remaining budget — a backoff the deadline
        cannot absorb returns ``shed=True`` and the query is rejected now
        rather than answered late.
        """
        backoff = self.config.retry_backoff_seconds * (2 ** (attempts - 1))
        if self.config.retry_jitter > 0.0:
            backoff *= 1.0 + self.config.retry_jitter * random.random()
        if deadline is not None and deadline - time.monotonic() <= backoff:
            return 0.0, True
        return backoff, False

    def _on_catalog_event(self, event: str, table: str, version: int) -> None:
        # register / unregister / touch all invalidate eagerly; version keying
        # would shadow stale entries anyway, this frees their memory too.
        if self.cache is not None:
            self.cache.invalidate_table(table)

    def _worker_loop(self) -> None:
        scope = (
            self.engine.telemetry.activate()
            if self.engine.telemetry is not None
            else nullcontext()
        )
        with scope:
            while True:
                item = self._queue.get()
                if item is _SHUTDOWN:
                    break
                self._admission.release()
                obs.gauge("serve.queue.depth", self._admission.depth)
                try:
                    outcome = self._serve(item)
                except BaseException as exc:  # noqa: BLE001 - worker must survive
                    outcome = QueryOutcome(
                        statement=item.statement, status="failed", error=exc
                    )
                with self._lock:
                    if outcome.status == "ok":
                        self._completed += 1
                    elif outcome.status == "failed":
                        self._failed += 1
                item.future.set_result(outcome)

    def _serve(self, item: _Submission) -> QueryOutcome:
        start = time.monotonic()
        queue_seconds = start - item.enqueued_at
        obs.observe("serve.queue_wait.seconds", queue_seconds)
        with obs.span("serve.query", statement=item.statement) as sp:
            if item.deadline is not None and start > item.deadline:
                # Same semantics as TimeBudgetExceeded: the budget elapsed
                # before an answer existed — shed instead of wasting work.
                with self._lock:
                    self._shed_deadline += 1
                obs.counter("serve.deadline.shed")
                sp.set_tag("outcome", "deadline")
                return QueryOutcome(
                    statement=item.statement,
                    status="rejected",
                    rejection=Rejected(
                        reason="deadline",
                        message=(
                            f"deadline passed after {queue_seconds * 1000.0:.1f}ms "
                            f"in queue"
                        ),
                    ),
                    queue_seconds=queue_seconds,
                    total_seconds=time.monotonic() - item.enqueued_at,
                )

            try:
                plan = self.engine.plan(item.statement)
            except ReproError as exc:
                sp.set_tag("outcome", "plan_error")
                return QueryOutcome(
                    statement=item.statement,
                    status="failed",
                    error=exc,
                    queue_seconds=queue_seconds,
                    total_seconds=time.monotonic() - item.enqueued_at,
                )

            key: Optional[CacheKey] = None
            if self.cache is not None:
                version = self.engine.catalog.version(plan.store.name)
                key = CacheKey.from_plan(plan, version)
                entry = self.cache.lookup(
                    key, plan.config.precision, plan.config.confidence
                )
                if entry is not None:
                    obs.counter("serve.cache.hit")
                    sp.set_tag("outcome", "cache_hit")
                    total = time.monotonic() - item.enqueued_at
                    obs.observe("serve.latency.seconds", total)
                    return QueryOutcome(
                        statement=item.statement,
                        status="ok",
                        result=self._annotate_cached(
                            entry.result, plan, (entry.half_width, entry.confidence)
                        ),
                        cache_hit=True,
                        queue_seconds=queue_seconds,
                        total_seconds=total,
                    )
                obs.counter("serve.cache.miss")

            # ------------------------------------------------ circuit breaker
            # Gated after the cache: serving a still-valid cached answer costs
            # nothing and touches nothing broken, so an open circuit only
            # blocks queries that would actually execute against the table.
            breaker = (
                self._breaker_for(plan.store.name)
                if self.config.breaker_enabled
                else None
            )
            if breaker is not None and not breaker.allow():
                with self._lock:
                    self._rejected_circuit += 1
                obs.counter("serve.circuit.rejected")
                sp.set_tag("outcome", "circuit_open")
                return QueryOutcome(
                    statement=item.statement,
                    status="rejected",
                    rejection=Rejected(
                        reason="circuit_open",
                        message=(
                            f"circuit breaker for table {plan.store.name!r} is "
                            f"{breaker.state}; retry after "
                            f"{self.config.breaker_cooldown_seconds:g}s"
                        ),
                    ),
                    queue_seconds=queue_seconds,
                    total_seconds=time.monotonic() - item.enqueued_at,
                )

            # ---------------------------------------------- request coalescing
            leader = False
            inflight: Optional[Future] = None
            if key is not None:
                with self._inflight_lock:
                    inflight = self._inflight.get(key)
                    if inflight is None:
                        inflight = Future()
                        self._inflight[key] = inflight
                        leader = True
            if inflight is not None and not leader:
                coalesced = self._await_inflight(inflight, item, plan, queue_seconds, sp)
                if coalesced is not None:
                    return coalesced
                # the in-flight execution failed or its bound was too loose
                # for this request — fall through and execute independently

            outcome: Optional[QueryOutcome] = None
            try:
                outcome = self._execute_with_retries(item, plan, queue_seconds)
            finally:
                if leader:
                    with self._inflight_lock:
                        self._inflight.pop(key, None)
                    # degraded answers are never shared: a follower asked for
                    # the full-precision answer, not one missing partitions
                    if (
                        outcome is not None
                        and outcome.status == "ok"
                        and outcome.result is not None
                        and not outcome.result.degraded
                    ):
                        inflight.set_result((outcome.result, achieved_bound(plan)))
                    else:
                        inflight.set_result((None, None))
            if breaker is not None:
                # only *executed* outcomes are evidence about table health;
                # deadline sheds during retries stay out of the window
                if outcome.status == "ok":
                    breaker.record_success()
                elif outcome.status == "failed":
                    breaker.record_failure()
            if outcome.status == "ok" and outcome.result is not None:
                if outcome.result.degraded:
                    with self._lock:
                        self._degraded += 1
                    obs.counter("serve.degraded")
                elif self.cache is not None and key is not None:
                    # a degraded answer must not poison the precision-aware
                    # cache — its widened CI would be served as if complete
                    bound = achieved_bound(plan)
                    if bound is not None:
                        self.cache.put(key, outcome.result, *bound)
            sp.set_tag("outcome", outcome.status)
            obs.observe("serve.latency.seconds", outcome.total_seconds)
            return outcome

    def _await_inflight(
        self,
        inflight: Future,
        item: _Submission,
        plan: QueryPlan,
        queue_seconds: float,
        sp,
    ) -> Optional[QueryOutcome]:
        """Piggyback on an identical in-flight execution when possible.

        Returns None when the shared answer cannot serve this request (the
        leader failed, or ran at a looser budget than asked here) — the
        caller then executes independently.
        """
        obs.counter("serve.coalesced.wait")
        try:
            shared_result, shared_bound = inflight.result()
        except Exception:  # noqa: BLE001 - leader's error surfaces on its own ticket
            return None
        if (
            shared_result is None
            or shared_bound is None
            or shared_bound[0] > plan.config.precision
            or shared_bound[1] < plan.config.confidence
        ):
            return None
        with self._lock:
            self._coalesced += 1
        total = time.monotonic() - item.enqueued_at
        obs.counter("serve.cache.hit")
        obs.observe("serve.latency.seconds", total)
        sp.set_tag("outcome", "coalesced")
        return QueryOutcome(
            statement=item.statement,
            status="ok",
            result=self._annotate_cached(shared_result, plan, shared_bound),
            cache_hit=True,
            queue_seconds=queue_seconds,
            total_seconds=total,
        )

    def _execute_with_retries(
        self, item: _Submission, plan: QueryPlan, queue_seconds: float
    ) -> QueryOutcome:
        attempts = 0
        seed: np.random.SeedSequence = item.seed
        while True:
            attempts += 1
            try:
                result = self.engine.execute_plan(plan, seed=seed)
                return QueryOutcome(
                    statement=item.statement,
                    status="ok",
                    result=result,
                    attempts=attempts,
                    queue_seconds=queue_seconds,
                    total_seconds=time.monotonic() - item.enqueued_at,
                )
            except self.config.retryable_errors as exc:
                if attempts > self.config.max_retries:
                    return QueryOutcome(
                        statement=item.statement,
                        status="failed",
                        error=exc,
                        attempts=attempts,
                        queue_seconds=queue_seconds,
                        total_seconds=time.monotonic() - item.enqueued_at,
                    )
                backoff, shed = self._retry_backoff(attempts, item.deadline)
                if shed:
                    # the deadline has passed — or would pass while backing
                    # off — so shed the query now rather than answer late
                    with self._lock:
                        self._shed_deadline += 1
                    obs.counter("serve.deadline.shed")
                    return QueryOutcome(
                        statement=item.statement,
                        status="rejected",
                        rejection=Rejected(
                            reason="deadline",
                            message=(
                                f"deadline reached after {attempts} "
                                f"attempt(s); not retrying"
                            ),
                        ),
                        error=exc,
                        attempts=attempts,
                        queue_seconds=queue_seconds,
                        total_seconds=time.monotonic() - item.enqueued_at,
                    )
                with self._lock:
                    self._retries += 1
                obs.counter("serve.retry")
                if backoff > 0:
                    time.sleep(backoff)
                # a fresh child stream for the retry: a deterministic failure
                # must not deterministically repeat
                seed = item.seed.spawn(1)[0]
            except (TimeBudgetExceeded, ReproError) as exc:
                return QueryOutcome(
                    statement=item.statement,
                    status="failed",
                    error=exc,
                    attempts=attempts,
                    queue_seconds=queue_seconds,
                    total_seconds=time.monotonic() - item.enqueued_at,
                )

    @staticmethod
    def _annotate_cached(
        result: ExecutionResult,
        plan: QueryPlan,
        bound: Tuple[float, float],
    ) -> ExecutionResult:
        """Mark a served-from-cache answer without mutating the cached copy."""
        details = dict(result.details)
        details["served_from_cache"] = True
        details["achieved_precision"] = bound[0]
        details["achieved_confidence"] = bound[1]
        details["requested_precision"] = plan.config.precision
        details["requested_confidence"] = plan.config.confidence
        return replace(result, details=details)
