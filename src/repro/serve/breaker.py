"""Per-table circuit breaker for the serving layer.

A table whose queries keep failing (corrupt storage, a poisoned partition,
an estimator that cannot converge on the data) should stop consuming worker
time on arrival: the breaker watches a rolling window of *executed* query
outcomes per table and, once the failure rate crosses a threshold, rejects
further queries up front with a typed ``circuit_open`` outcome — the same
fail-fast contract as admission-queue load shedding.

States follow the classic three-state machine:

* **closed** — all traffic flows; outcomes feed the rolling window.
* **open** — tripped: every request is rejected until ``cooldown_seconds``
  pass.
* **half_open** — after the cooldown, a handful of probe queries are let
  through; all of them succeeding closes the circuit, any failure re-opens
  it for another cooldown.

The breaker never sees rejected queries (shed at the queue or at their
deadline): those were not executed, so they carry no evidence about the
table's health.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Rolling-window failure-rate breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 32,
        min_requests: int = 10,
        cooldown_seconds: float = 2.0,
        half_open_probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must lie in (0, 1], got {failure_threshold}"
            )
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        if min_requests < 1:
            raise ValueError(f"min_requests must be at least 1, got {min_requests}")
        if cooldown_seconds < 0.0:
            raise ValueError(
                f"cooldown_seconds must be non-negative, got {cooldown_seconds}"
            )
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be at least 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_requests = min_requests
        self.cooldown_seconds = cooldown_seconds
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._outcomes: deque = deque(maxlen=window)  # True = failure
        self._opened_at = 0.0
        self._half_open_since = 0.0
        self._probes_started = 0
        self._probe_successes = 0
        self._trips = 0
        self._rejected = 0

    # ---------------------------------------------------------------- queries
    @property
    def state(self) -> str:
        """Current state, advancing open → half_open when the cooldown passed."""
        with self._lock:
            return self._advance()

    def allow(self) -> bool:
        """True when a request may execute now (may consume a probe slot)."""
        with self._lock:
            state = self._advance()
            if state == "closed":
                return True
            if state == "open":
                self._rejected += 1
                return False
            # half-open: admit a bounded number of probes; if a probe went
            # missing (e.g. shed at its deadline before executing), re-arm
            # after another cooldown so the circuit cannot wedge half-open
            if self._probes_started < self.half_open_probes:
                self._probes_started += 1
                return True
            if self._clock() - self._half_open_since >= self.cooldown_seconds:
                self._half_open_since = self._clock()
                self._probes_started = 1
                self._probe_successes = 0
                return True
            self._rejected += 1
            return False

    # --------------------------------------------------------------- feedback
    def record_success(self) -> None:
        """Feed one successfully executed query into the window."""
        with self._lock:
            state = self._advance()
            if state == "half_open":
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._reset_closed()
                return
            self._outcomes.append(False)

    def record_failure(self) -> None:
        """Feed one executed-and-failed query into the window (may trip)."""
        with self._lock:
            state = self._advance()
            if state == "half_open":
                self._trip()
                return
            self._outcomes.append(True)
            if len(self._outcomes) >= self.min_requests:
                failures = sum(1 for failed in self._outcomes if failed)
                if failures / len(self._outcomes) >= self.failure_threshold:
                    self._trip()

    def stats(self) -> Dict[str, Any]:
        """Counters for :meth:`QueryService.health` and tests."""
        with self._lock:
            state = self._advance()
            return {
                "state": state,
                "trips": self._trips,
                "rejected": self._rejected,
                "window_size": len(self._outcomes),
                "window_failures": sum(1 for failed in self._outcomes if failed),
            }

    # -------------------------------------------------------------- internals
    def _advance(self) -> str:
        """State with the time-based open → half_open transition applied."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = "half_open"
            self._half_open_since = self._clock()
            self._probes_started = 0
            self._probe_successes = 0
        return self._state

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._trips += 1
        self._outcomes.clear()

    def _reset_closed(self) -> None:
        self._state = "closed"
        self._outcomes.clear()
        self._probes_started = 0
        self._probe_successes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state!r}, trips={self._trips})"
