"""``repro.serve`` — the in-process query-serving subsystem.

Layers production serving concerns on top of
:class:`~repro.query.engine.AQPEngine`:

* :class:`QueryService` — a bounded worker pool with a futures-based
  ``submit``/``execute_many`` API;
* :class:`~repro.serve.admission.AdmissionController` — bounded-queue
  admission with typed :class:`Rejected` load-shedding outcomes and
  dequeue-time deadline enforcement;
* :class:`ResultCache` — a precision-aware answer cache keyed on the
  canonical query signature plus the catalog's per-table version, with
  TTL, LRU bounds and eager invalidation on catalog changes.

Quickstart::

    from repro import AQPEngine

    engine = AQPEngine(seed=7)
    engine.register_array("readings", values, block_count=16)
    with engine.serve(workers=4) as service:
        tickets = [service.submit(stmt) for stmt in statements]
        answers = [ticket.result() for ticket in tickets]
"""

from repro.serve.admission import AdmissionController
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import CacheEntry, CacheKey, CacheStats, ResultCache, achieved_bound
from repro.serve.service import (
    QueryOutcome,
    QueryService,
    QueryTicket,
    Rejected,
    ServeConfig,
)

__all__ = [
    "AdmissionController",
    "CacheEntry",
    "CacheKey",
    "CacheStats",
    "CircuitBreaker",
    "ResultCache",
    "achieved_bound",
    "QueryOutcome",
    "QueryService",
    "QueryTicket",
    "Rejected",
    "ServeConfig",
]
