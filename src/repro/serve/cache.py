"""Precision-aware result cache for the query-serving subsystem.

The paper's queries carry an explicit error budget (``PRECISION e``,
``CONFIDENCE p``), which makes approximate answers *reusable*: an answer
whose achieved confidence-interval half-width is ``h`` at confidence ``c``
is a valid answer for **any** later request asking for precision ``>= h``
and confidence ``<= c`` over the same data.  The cache therefore keys on
the normalized query identity (canonical AST signature + the catalog's
per-table version) and treats the error budget as a *match predicate*
rather than part of the key.

Entries expire after a TTL, the map is LRU-bounded, and tables can be
invalidated explicitly (the serving layer subscribes to catalog change
events to do this eagerly; version keying already makes stale answers
unreachable even without it).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.query.ast import CacheSignature
from repro.query.executor import ExecutionResult
from repro.query.planner import QueryPlan

__all__ = ["CacheKey", "CacheEntry", "CacheStats", "ResultCache", "achieved_bound"]


@dataclass(frozen=True)
class CacheKey:
    """Normalized identity of a cacheable query against one table version."""

    signature: CacheSignature
    table_version: int

    @classmethod
    def from_plan(cls, plan: QueryPlan, table_version: int) -> "CacheKey":
        return cls(signature=plan.query.cache_signature(), table_version=table_version)

    @property
    def table(self) -> str:
        """The (lower-cased) table name inside the signature.

        Addressed by *name*, not position, so a signature-layout change
        cannot silently break eager invalidation.
        """
        return self.signature.table


@dataclass
class CacheEntry:
    """A cached answer plus the bound it actually achieved."""

    key: CacheKey
    result: ExecutionResult
    half_width: float
    confidence: float
    created_at: float
    hits: int = 0

    def satisfies(self, precision: float, confidence: float) -> bool:
        """True when the cached bound covers the requested budget."""
        return self.half_width <= precision and self.confidence >= confidence


@dataclass
class CacheStats:
    """Plain counters mirrored into ``repro.obs`` by the service."""

    hits: int = 0
    misses: int = 0
    stale: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


def achieved_bound(plan: QueryPlan) -> Optional[Tuple[float, float]]:
    """The ``(half_width, confidence)`` an execution of ``plan`` guarantees.

    Returns None when the answer carries no reusable bound (then it must
    not be cached):

    * ``EXACT`` full scans achieve a zero-width interval at confidence 1;
    * sampling methods achieve the precision/confidence they were planned
      for (the paper's Eq.-1 rate is derived from exactly that target);
    * time-constrained executions are excluded — their bound is whatever
      the deadline allowed, which a later query with a different budget
      cannot reuse safely.
    """
    if plan.query.time_budget_ms is not None:
        return None
    if plan.method == "EXACT":
        return (0.0, 1.0)
    return (float(plan.config.precision), float(plan.config.confidence))


class ResultCache:
    """A thread-safe, TTL'd, LRU-bounded, precision-aware answer cache."""

    def __init__(
        self,
        capacity: int = 256,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be at least 1, got {capacity}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"cache TTL must be positive, got {ttl_seconds}")
        self.capacity = int(capacity)
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ API
    def lookup(
        self, key: CacheKey, precision: float, confidence: float
    ) -> Optional[CacheEntry]:
        """Return a usable entry for the requested budget, or None.

        A present entry that cannot serve the request — expired, or with a
        looser achieved bound than requested — counts as *stale*; an absent
        key counts as a plain miss.  Both return None.  Expired entries are
        dropped; insufficient-bound entries are kept (a later, looser
        request may still hit them).
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if self._expired(entry, now):
                del self._entries[key]
                self.stats.stale += 1
                self.stats.misses += 1
                return None
            if not entry.satisfies(precision, confidence):
                self.stats.stale += 1
                self.stats.misses += 1
                return None
            entry.hits += 1
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry

    def put(
        self,
        key: CacheKey,
        result: ExecutionResult,
        half_width: float,
        confidence: float,
    ) -> bool:
        """Cache an answer; returns False when a better entry already exists.

        The cache keeps at most one entry per key — the one with the
        tightest bound, since it serves every request the looser one could.
        """
        now = self._clock()
        with self._lock:
            existing = self._entries.get(key)
            if (
                existing is not None
                and not self._expired(existing, now)
                and existing.half_width <= half_width
                and existing.confidence >= confidence
            ):
                return False
            self._entries[key] = CacheEntry(
                key=key,
                result=result,
                half_width=float(half_width),
                confidence=float(confidence),
                created_at=now,
            )
            self._entries.move_to_end(key)
            self.stats.insertions += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return True

    def invalidate_table(self, table: str) -> int:
        """Drop every entry for ``table`` (any version); returns the count."""
        table = table.lower()
        with self._lock:
            doomed = [key for key in self._entries if key.table == table]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()

    # ------------------------------------------------------------ internals
    def _expired(self, entry: CacheEntry, now: float) -> bool:
        return self.ttl_seconds is not None and now - entry.created_at > self.ttl_seconds

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries
