"""Admission control for the query-serving subsystem.

A deliberately small piece: a counting semaphore-style bound on the number
of queries waiting for a worker.  The service asks :meth:`try_admit` at
submit time — a ``False`` answer means the queue is full and the query is
shed with a typed ``Rejected`` outcome instead of blocking the caller —
and calls :meth:`release` when a worker dequeues the item.  Per-query
deadlines are enforced by the service at dequeue time (a query that
already blew its deadline while queued is shed without being executed,
mirroring the ``TimeBudgetExceeded`` semantics of the time-constrained
extension).
"""

from __future__ import annotations

import threading

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-queue admission with admit/reject accounting."""

    def __init__(self, max_queue: int) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be at least 1, got {max_queue}")
        self.max_queue = int(max_queue)
        self._lock = threading.Lock()
        self._depth = 0
        self._admitted = 0
        self._rejected = 0

    def try_admit(self) -> bool:
        """Reserve a queue slot; False when the queue is at capacity."""
        with self._lock:
            if self._depth >= self.max_queue:
                self._rejected += 1
                return False
            self._depth += 1
            self._admitted += 1
            return True

    def release(self) -> None:
        """Free the slot of a dequeued query."""
        with self._lock:
            if self._depth <= 0:
                raise RuntimeError("release() without a matching try_admit()")
            self._depth -= 1

    @property
    def depth(self) -> int:
        """Queries currently waiting for a worker."""
        return self._depth

    @property
    def admitted(self) -> int:
        """Total queries admitted since construction."""
        return self._admitted

    @property
    def rejected(self) -> int:
        """Total queries shed at admission since construction."""
        return self._rejected
