"""Exception hierarchy shared by every subpackage.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Subsystems raise the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration value is out of its documented domain."""


class StorageError(ReproError):
    """A block store / table operation could not be completed."""


class UnknownTableError(StorageError):
    """A query referenced a table that is not registered in the catalog."""


class UnknownColumnError(StorageError):
    """A query referenced a column missing from the target table."""


class EmptyDataError(StorageError):
    """An aggregation was requested over zero rows."""


class SamplingError(ReproError):
    """A sampler received parameters it cannot honour."""


class EstimationError(ReproError):
    """An estimator could not produce a finite answer."""


class ConvergenceError(EstimationError):
    """The iterative modulation failed to converge within the iteration cap."""


class QueryError(ReproError):
    """The query front-end could not parse or plan a statement."""


class QuerySyntaxError(QueryError):
    """The statement text is not valid ISLA-SQL."""


class QueryPlanError(QueryError):
    """The statement parsed but cannot be planned (unknown method, etc.)."""


class TimeBudgetExceeded(ReproError):
    """A time-constrained execution could not finish within its budget."""


class InjectedFault(ReproError):
    """A fault deliberately raised by the fault-injection framework.

    Carries the injection ``site`` (``"scan.partition"``, ``"wal.torn_frame"``,
    ...) so degraded-mode handlers can distinguish injected chaos from
    organic failures in assertions and metrics.
    """

    def __init__(self, site: str, message: str) -> None:
        super().__init__(message)
        self.site = site


class DataCorruptionError(StorageError):
    """Stored block bytes failed their integrity check (CRC mismatch)."""


class PartialResultError(ReproError):
    """Every partition of a degraded scan failed — no answer can be formed."""


class ServingError(ReproError):
    """The query-serving subsystem could not serve a request."""


class AdmissionRejected(ServingError):
    """Admission control shed the query (queue full or deadline passed).

    Raised by :meth:`~repro.serve.QueryTicket.result` when the outcome is a
    typed rejection; the rejection reason is the first argument.
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


class ServiceClosed(ServingError):
    """A query was submitted to a :class:`~repro.serve.QueryService` after close."""
