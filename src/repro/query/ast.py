"""Abstract syntax of the ISLA-SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.errors import QuerySyntaxError

#: aggregate functions the dialect accepts
SUPPORTED_AGGREGATES = ("avg", "sum")

#: estimation methods the planner accepts (upper-cased identifiers)
SUPPORTED_METHODS = (
    "ISLA",
    "US",
    "STS",
    "MV",
    "MVB",
    "SLEV",
    "BILEVEL",
    "BLOCK",
    "EBS",
    "EXACT",
)

__all__ = [
    "AggregateQuery",
    "CacheSignature",
    "SUPPORTED_AGGREGATES",
    "SUPPORTED_METHODS",
]


class CacheSignature(NamedTuple):
    """Canonical cacheable identity of a query (see ``cache_signature``).

    A named tuple rather than a bare one so consumers (the serving layer's
    eager invalidation, most importantly) address fields by name — a
    layout change here cannot silently re-point ``signature[2]`` at a
    different field.
    """

    aggregate: str
    column: str
    table: str
    method: str
    time_budget_ms: Optional[float]


@dataclass(frozen=True)
class AggregateQuery:
    """A parsed ``SELECT <agg>(<column>) FROM <table> ...`` statement."""

    aggregate: str
    column: str
    table: str
    precision: float = 0.1
    confidence: float = 0.95
    method: str = "ISLA"
    time_budget_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.aggregate not in SUPPORTED_AGGREGATES:
            raise QuerySyntaxError(
                f"unsupported aggregate {self.aggregate!r}; "
                f"supported: {SUPPORTED_AGGREGATES}"
            )
        if not self.column:
            raise QuerySyntaxError("aggregate column must be non-empty")
        if not self.table:
            raise QuerySyntaxError("table name must be non-empty")
        if self.precision <= 0:
            raise QuerySyntaxError(f"precision must be positive, got {self.precision}")
        if not 0.0 < self.confidence < 1.0:
            raise QuerySyntaxError(
                f"confidence must lie in (0, 1), got {self.confidence}"
            )
        if self.method.upper() not in SUPPORTED_METHODS:
            raise QuerySyntaxError(
                f"unsupported method {self.method!r}; supported: {SUPPORTED_METHODS}"
            )
        if self.time_budget_ms is not None and self.time_budget_ms <= 0:
            raise QuerySyntaxError(
                f"time budget must be positive, got {self.time_budget_ms}"
            )
        object.__setattr__(self, "method", self.method.upper())
        object.__setattr__(self, "aggregate", self.aggregate.lower())

    def cache_signature(self) -> CacheSignature:
        """Canonical identity of the query *excluding* the error budget.

        Two statements with the same signature compute the same quantity;
        they may differ in ``PRECISION``/``CONFIDENCE``, which the serving
        layer's precision-aware cache compares against the cached answer's
        achieved bound instead of keying on.  Table names are already
        case-insensitive in the catalog, so the signature folds case.
        """
        return CacheSignature(
            aggregate=self.aggregate,
            column=self.column,
            table=self.table.lower(),
            method=self.method,
            time_budget_ms=self.time_budget_ms,
        )

    def describe(self) -> str:
        """Canonical text form of the query."""
        parts = [
            f"SELECT {self.aggregate.upper()}({self.column}) FROM {self.table}",
            f"PRECISION {self.precision:g}",
            f"CONFIDENCE {self.confidence:g}",
            f"METHOD {self.method}",
        ]
        if self.time_budget_ms is not None:
            parts.append(f"TIME {self.time_budget_ms:g}")
        return " ".join(parts)
