"""The AQP engine facade: catalog + parser + planner + executor."""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.core.config import ISLAConfig
from repro.query.executor import ExecutionResult, QueryExecutor
from repro.query.parser import parse_query
from repro.query.planner import QueryPlan, plan_query
from repro.storage.blockstore import BlockStore
from repro.storage.catalog import Catalog
from repro.storage.persist import DurableBlockStore, save_store
from repro.storage.table import Table

__all__ = ["AQPEngine"]


class AQPEngine:
    """A session-style facade tying the whole system together.

    Example
    -------
    >>> engine = AQPEngine(seed=7)
    >>> engine.register_array("readings", values, block_count=10)
    >>> result = engine.execute(
    ...     "SELECT AVG(value) FROM readings PRECISION 0.5 CONFIDENCE 0.95"
    ... )
    >>> round(result.value, 1)  # doctest: +SKIP
    100.0
    """

    def __init__(
        self,
        config: Optional[ISLAConfig] = None,
        seed: Optional[int] = None,
        telemetry: Optional[obs.Telemetry] = None,
        parallelism: Optional[int] = None,
    ) -> None:
        self.catalog = Catalog()
        self.config = config or ISLAConfig()
        # ``parallelism`` is a convenience override: every plan built from
        # this engine scans through the partition backend at that width.
        # Seeded answers stay bit-identical across widths (the partition
        # seed-spawn never depends on worker count), so flipping this knob
        # cannot change any result — see repro.parallel.seeding.
        if parallelism is not None:
            self.config = self.config.with_updates(parallelism=parallelism)
        self.seed = seed
        self._executor = QueryExecutor(seed=seed)
        # durable backings by (lower-cased) table name; appends to these
        # tables go through the write-ahead log before touching memory
        self._durable: dict[str, DurableBlockStore] = {}
        # Precedence: explicit instance > config toggle > ambient default.
        if telemetry is not None:
            self.telemetry = telemetry
        elif self.config.telemetry is not None:
            self.telemetry = obs.Telemetry(enabled=self.config.telemetry)
        else:
            self.telemetry = None

    # ---------------------------------------------------------- registration
    def register_store(self, store: BlockStore, name: Optional[str] = None) -> None:
        """Register an existing block store as a queryable table."""
        self.catalog.register(store, name)

    def register_table(self, table: Table, block_count: int = 10) -> None:
        """Partition a table into blocks and register it."""
        store = BlockStore.from_table(table, block_count=block_count)
        self.catalog.register(store)

    def register_array(
        self,
        name: str,
        values: Sequence[float],
        block_count: int = 10,
        column: str = "value",
    ) -> None:
        """Partition a flat array into blocks and register it."""
        store = BlockStore.from_array(name, np.asarray(values, dtype=float),
                                      block_count=block_count, column=column)
        self.catalog.register(store)

    def append_array(self, name: str, values: Sequence[float]) -> int:
        """Append rows to a registered table as a new block (online ingest).

        Tables opened from (or saved to) durable storage append through
        the write-ahead log first, so a crash mid-append recovers to the
        last consistent state on the next :meth:`open`.  Bumps the table's
        catalog version so precision-aware result caches treat every
        previously cached answer for the table as stale.  Returns the new
        version.
        """
        durable = self._durable.get(name.lower())
        if durable is not None:
            durable.append_block(np.asarray(values, dtype=float))
        else:
            store = self.catalog.resolve(name)
            store.append_block(np.asarray(values, dtype=float))
        return self.catalog.touch(name)

    # ------------------------------------------------------- durable storage
    def open(
        self,
        directory,
        name: Optional[str] = None,
        mmap: bool = True,
        verify: bool = False,
    ) -> str:
        """Open a durable on-disk store and register it as a queryable table.

        Blocks are memory-mapped by default (``np.memmap``), so opening a
        multi-GB store is near-instant and scans stream from the page
        cache.  Any appends the write-ahead log preserved across a crash
        are replayed, each one ``touch``-ing the catalog so the recovered
        table version matches what a never-crashed process would carry.
        With ``verify=True`` block files are CRC-checked against the
        manifest and corrupt blocks quarantined, so queries over the table
        answer degraded instead of reading corrupted bytes.
        Returns the registered table name.
        """
        durable = DurableBlockStore.open(directory, mmap=mmap, verify=verify)
        key = (name or durable.store.name).lower()
        # register at the *snapshot* version, then touch once per recovered
        # append — subscribers observe recovery exactly as live appends
        snapshot_version = durable.table_version - durable.recovered_appends
        self.catalog.register(durable.store, name=key, version=snapshot_version)
        for _ in range(durable.recovered_appends):
            self.catalog.touch(key)
        durable.table_version = self.catalog.version(key)
        previous = self._durable.pop(key, None)
        if previous is not None:
            previous.close()
        self._durable[key] = durable
        return key

    def save(self, name: str, directory) -> str:
        """Snapshot a registered table to ``directory`` (atomic, durable).

        The table stays registered and becomes durable-backed: subsequent
        :meth:`append_array` calls are logged crash-safely to the same
        directory.  Returns the table name.
        """
        key = name.lower()
        store = self.catalog.resolve(key)
        durable = self._durable.get(key)
        if durable is not None and durable.store is store:
            durable.checkpoint()
            return key
        version = self.catalog.version(key)
        save_store(store, directory, table_version=version)
        if durable is not None:
            durable.close()
        # the durable handle keeps serving the registered in-memory store;
        # it carries the WAL that makes future appends crash-safe
        self._durable[key] = DurableBlockStore(
            directory=Path(directory), store=store, table_version=version, mmap=False
        )
        return key

    def close(self) -> None:
        """Release durable-storage handles (WAL file descriptors)."""
        for durable in self._durable.values():
            durable.close()
        self._durable.clear()

    def __enter__(self) -> "AQPEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def tables(self) -> tuple[str, ...]:
        """Names of the registered tables."""
        return self.catalog.table_names

    # -------------------------------------------------------------- querying
    def plan(self, statement: str) -> QueryPlan:
        """Parse and plan a statement without executing it (EXPLAIN)."""
        with obs.span("query.parse"):
            query = parse_query(statement)
        with obs.span("query.plan") as sp:
            plan = plan_query(query, self.catalog, base_config=self.config)
            sp.set_tag("method", plan.method)
            sp.set_tag("table", plan.store.name)
        return plan

    def execute(self, statement: str) -> ExecutionResult:
        """Parse, plan and execute a statement.

        With telemetry enabled (``REPRO_TELEMETRY=1``,
        ``ISLAConfig(telemetry=True)`` or an explicit
        :class:`~repro.obs.Telemetry`), the result's ``telemetry`` field
        carries the full span tree of the query lifecycle.
        """
        return self._execute_with(statement, self.telemetry)

    def execute_plan(self, plan: QueryPlan, seed=None) -> ExecutionResult:
        """Execute an already-built plan, optionally with a per-call seed.

        The serving layer plans once (to build cache keys) and executes only
        on a cache miss, passing each query an independent seed derived from
        a ``np.random.SeedSequence`` spawn.
        """
        return self._executor.execute(plan, seed=seed)

    def serve(self, config=None, **kwargs):
        """Create a :class:`~repro.serve.QueryService` bound to this engine.

        Pass a pre-built :class:`~repro.serve.ServeConfig` as ``config``, or
        forward keyword arguments to construct one (``workers``,
        ``max_queue``, ``cache_capacity``, ...).  Remember to ``close()``
        the service (or use it as a context manager).
        """
        from repro.serve import QueryService, ServeConfig

        if config is not None and kwargs:
            raise TypeError("pass either a config or ServeConfig kwargs, not both")
        return QueryService(self, config or ServeConfig(**kwargs))

    def explain(self, statement: str) -> str:
        """Return the plan description for a statement."""
        return self.plan(statement).describe()

    def explain_analyze(self, statement: str) -> str:
        """Execute the statement and render the plan with observed timings.

        Telemetry is force-enabled for this one execution regardless of the
        engine-wide switch; the report contains the logical plan, the answer,
        the span tree with per-stage wall-clock timings, and the derived
        counters (ISLA iterations, per-stage sample sizes).
        """
        capture = obs.Telemetry(enabled=True)
        result = self._execute_with(statement, capture)
        plan_description = self.plan(statement).describe()
        return obs.render_explain_analyze(result, plan_description)

    # ------------------------------------------------------------- internals
    def _execute_with(
        self, statement: str, telemetry: Optional[obs.Telemetry]
    ) -> ExecutionResult:
        scope = telemetry.activate() if telemetry is not None else nullcontext()
        with scope:
            with obs.span("query", statement=statement) as root:
                plan = self.plan(statement)
                result = self._executor.execute(plan)
        if root.is_recording:
            result = replace(result, telemetry=obs.QueryTelemetry.from_span(root))
        return result
