"""The AQP engine facade: catalog + parser + planner + executor."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import ISLAConfig
from repro.query.executor import ExecutionResult, QueryExecutor
from repro.query.parser import parse_query
from repro.query.planner import QueryPlan, plan_query
from repro.storage.blockstore import BlockStore
from repro.storage.catalog import Catalog
from repro.storage.table import Table

__all__ = ["AQPEngine"]


class AQPEngine:
    """A session-style facade tying the whole system together.

    Example
    -------
    >>> engine = AQPEngine(seed=7)
    >>> engine.register_array("readings", values, block_count=10)
    >>> result = engine.execute(
    ...     "SELECT AVG(value) FROM readings PRECISION 0.5 CONFIDENCE 0.95"
    ... )
    >>> round(result.value, 1)  # doctest: +SKIP
    100.0
    """

    def __init__(
        self,
        config: Optional[ISLAConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.catalog = Catalog()
        self.config = config or ISLAConfig()
        self.seed = seed
        self._executor = QueryExecutor(seed=seed)

    # ---------------------------------------------------------- registration
    def register_store(self, store: BlockStore, name: Optional[str] = None) -> None:
        """Register an existing block store as a queryable table."""
        self.catalog.register(store, name)

    def register_table(self, table: Table, block_count: int = 10) -> None:
        """Partition a table into blocks and register it."""
        store = BlockStore.from_table(table, block_count=block_count)
        self.catalog.register(store)

    def register_array(
        self,
        name: str,
        values: Sequence[float],
        block_count: int = 10,
        column: str = "value",
    ) -> None:
        """Partition a flat array into blocks and register it."""
        store = BlockStore.from_array(name, np.asarray(values, dtype=float),
                                      block_count=block_count, column=column)
        self.catalog.register(store)

    @property
    def tables(self) -> tuple[str, ...]:
        """Names of the registered tables."""
        return self.catalog.table_names

    # -------------------------------------------------------------- querying
    def plan(self, statement: str) -> QueryPlan:
        """Parse and plan a statement without executing it (EXPLAIN)."""
        query = parse_query(statement)
        return plan_query(query, self.catalog, base_config=self.config)

    def execute(self, statement: str) -> ExecutionResult:
        """Parse, plan and execute a statement."""
        return self._executor.execute(self.plan(statement))

    def explain(self, statement: str) -> str:
        """Return the plan description for a statement."""
        return self.plan(statement).describe()
