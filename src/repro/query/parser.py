"""Tokenizer and recursive-descent parser for the ISLA-SQL dialect.

Grammar (case-insensitive keywords)::

    query      := SELECT aggregate '(' identifier ')' FROM identifier clause*
    aggregate  := AVG | SUM
    clause     := [WHERE] PRECISION number
                | CONFIDENCE number
                | METHOD identifier
                | TIME number
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.errors import QuerySyntaxError
from repro.query.ast import AggregateQuery

__all__ = ["tokenize", "parse_query"]

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<number>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_\.]*)"
    r"|(?P<punct>[(),;*]))"
)


def tokenize(text: str) -> List[str]:
    """Split a statement into number / word / punctuation tokens."""
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QuerySyntaxError(f"unexpected character at: {remainder[:20]!r}")
        token = match.group("number") or match.group("word") or match.group("punct")
        tokens.append(token)
        position = match.end()
    return tokens


class _TokenStream:
    """Cursor over the token list with keyword-aware helpers."""

    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)

    def peek(self) -> Optional[str]:
        if self.exhausted:
            return None
        return self._tokens[self._index]

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of statement")
        self._index += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.next()
        if token.lower() != keyword.lower():
            raise QuerySyntaxError(f"expected {keyword!r}, found {token!r}")

    def expect_punct(self, punct: str) -> None:
        token = self.next()
        if token != punct:
            raise QuerySyntaxError(f"expected {punct!r}, found {token!r}")

    def next_number(self, context: str) -> float:
        token = self.next()
        try:
            return float(token)
        except ValueError as exc:
            raise QuerySyntaxError(f"expected a number after {context}, found {token!r}") from exc

    def next_identifier(self, context: str) -> str:
        token = self.next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_\.]*", token):
            raise QuerySyntaxError(f"expected an identifier for {context}, found {token!r}")
        return token


def parse_query(text: str) -> AggregateQuery:
    """Parse an ISLA-SQL statement into an :class:`AggregateQuery`."""
    if not text or not text.strip():
        raise QuerySyntaxError("empty statement")
    stream = _TokenStream(tokenize(text))

    stream.expect_keyword("select")
    aggregate = stream.next_identifier("aggregate function").lower()
    stream.expect_punct("(")
    column = stream.next_identifier("aggregate column")
    stream.expect_punct(")")
    stream.expect_keyword("from")
    table = stream.next_identifier("table name")

    precision = 0.1
    confidence = 0.95
    method = "ISLA"
    time_budget_ms: Optional[float] = None

    while not stream.exhausted:
        token = stream.next()
        keyword = token.lower()
        if keyword == "where":
            # The paper writes "WHERE desired_precision"; WHERE is optional sugar.
            continue
        if keyword == ";":
            break
        if keyword == "precision":
            precision = stream.next_number("PRECISION")
        elif keyword == "confidence":
            confidence = stream.next_number("CONFIDENCE")
        elif keyword == "method":
            method = stream.next_identifier("METHOD")
        elif keyword == "time":
            time_budget_ms = stream.next_number("TIME")
        else:
            raise QuerySyntaxError(f"unexpected token {token!r}")

    return AggregateQuery(
        aggregate=aggregate,
        column=column,
        table=table,
        precision=precision,
        confidence=confidence,
        method=method,
        time_budget_ms=time_budget_ms,
    )
