"""Physical execution of a query plan."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.isla import ISLAAggregator
from repro.errors import QueryPlanError
from repro.query.planner import QueryPlan
from repro.sampling import (
    BiLevelAggregator,
    BlockLevelAggregator,
    ErrorBoundedStratifiedAggregator,
    MeasureBiasedBoundaryAggregator,
    MeasureBiasedValueAggregator,
    SlevAggregator,
    StratifiedAggregator,
    UniformAggregator,
)

__all__ = ["ExecutionResult", "QueryExecutor"]


@dataclass(frozen=True)
class ExecutionResult:
    """Uniform wrapper around whatever estimator answered the query."""

    value: float
    method: str
    aggregate: str
    column: str
    table: str
    sample_size: int
    elapsed_seconds: float
    details: Dict[str, Any] = field(default_factory=dict)
    raw: Any = None
    #: per-query span tree + derived counters (None when telemetry is off)
    telemetry: Optional[obs.QueryTelemetry] = None
    #: True when the answer was re-estimated from surviving partitions
    #: (failed or quarantined blocks) with a correspondingly wider CI
    degraded: bool = False
    #: block ids of the partitions that did not contribute to this answer
    failed_partitions: Tuple[int, ...] = ()
    #: fraction of the table's rows that backed this answer (1.0 = all)
    sample_fraction: float = 1.0

    def error_against(self, truth: float) -> float:
        """Absolute error against a known ground truth."""
        return abs(self.value - truth)


#: baseline estimator classes, keyed by the method identifier of the dialect
_BASELINES = {
    "US": UniformAggregator,
    "STS": StratifiedAggregator,
    "MV": MeasureBiasedValueAggregator,
    "MVB": MeasureBiasedBoundaryAggregator,
    "SLEV": SlevAggregator,
    "BILEVEL": BiLevelAggregator,
    "BLOCK": BlockLevelAggregator,
    "EBS": ErrorBoundedStratifiedAggregator,
}


def _degradation(
    store,
    degraded: bool = False,
    failed: Tuple[int, ...] = (),
    fraction: float = 1.0,
) -> Dict[str, Any]:
    """Fold store-level quarantine into scan-level degradation tags.

    Blocks quarantined at open time (CRC mismatch on the durable read path)
    never entered the store, so every answer over such a table is degraded:
    they join the failed-partition list and shrink the effective sample
    fraction by their share of the original rows.
    """
    quarantined = tuple(getattr(store, "quarantined", ()) or ())
    if quarantined:
        degraded = True
        failed = tuple(sorted(set(failed) | set(quarantined)))
        lost_rows = int(getattr(store, "quarantined_rows", 0))
        original_rows = store.total_rows + lost_rows
        if original_rows > 0:
            fraction = fraction * store.total_rows / original_rows
    if degraded:
        obs.counter("degraded.results")
    return {
        "degraded": degraded,
        "failed_partitions": tuple(failed),
        "sample_fraction": fraction,
    }


class QueryExecutor:
    """Executes a :class:`QueryPlan` with the requested estimation method."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed

    def execute(self, plan: QueryPlan, seed: Optional[Any] = None) -> ExecutionResult:
        """Run the plan and wrap the answer in an :class:`ExecutionResult`.

        ``seed`` overrides the executor-wide seed for this one call.  The
        serving layer passes an independent ``np.random.SeedSequence`` child
        per submitted query, so concurrent queries never share (or repeat)
        a random stream while staying reproducible per submission order.

        The execution runs inside a ``query.execute`` span; when the active
        telemetry is enabled and this is the outermost span (i.e. the executor
        is used directly rather than through :class:`AQPEngine`), the span
        tree is attached to the result's ``telemetry`` field.
        """
        if seed is None:
            seed = self.seed
        with obs.stopwatch(
            "query.execute",
            method=plan.method,
            table=plan.store.name,
            aggregate=plan.query.aggregate,
        ) as watch:
            result = self._dispatch(plan, watch, seed)
        root = watch.span
        if root is not None and result.telemetry is None:
            result = replace(result, telemetry=obs.QueryTelemetry.from_span(root))
        return result

    # ------------------------------------------------------------ internals
    def _dispatch(
        self, plan: QueryPlan, watch: obs.Stopwatch, seed: Optional[Any]
    ) -> ExecutionResult:
        method = plan.method
        query = plan.query
        # None = legacy serial scan; any integer (including 1) routes through
        # the partition backend, so parallelism 1/2/4 are mutually
        # bit-identical for a given seed.  Time-constrained execution keeps
        # its own serial budget loop.
        parallelism = plan.config.parallelism

        if query.time_budget_ms is not None:
            return self._execute_time_constrained(plan, watch, seed)

        if method == "EXACT":
            if parallelism is not None:
                from repro.parallel import parallel_exact_mean

                mean, rows = parallel_exact_mean(
                    plan.store, plan.column, parallelism=parallelism
                )
                value = mean * rows if query.aggregate == "sum" else mean
                details = {
                    "full_scan": True,
                    "parallelism": parallelism,
                    "partitions": plan.store.block_count,
                }
            else:
                value = self._exact_value(plan)
                details = {"full_scan": True}
            return ExecutionResult(
                value=value,
                method=method,
                aggregate=query.aggregate,
                column=plan.column,
                table=plan.store.name,
                sample_size=plan.store.total_rows,
                elapsed_seconds=watch.elapsed_seconds,
                details=details,
                **_degradation(plan.store),
            )

        if method == "ISLA":
            if parallelism is not None:
                from repro.parallel import PartitionParallelAggregator

                aggregator = PartitionParallelAggregator(
                    plan.config, seed=seed, parallelism=parallelism
                )
            else:
                aggregator = ISLAAggregator(plan.config, seed=seed)
            if query.aggregate == "avg":
                result = aggregator.aggregate_avg(plan.store, plan.column)
            else:
                result = aggregator.aggregate_sum(plan.store, plan.column)
            details = result.to_dict()
            if parallelism is not None:
                details["parallelism"] = parallelism
                details["partitions"] = plan.store.block_count
            return ExecutionResult(
                value=result.value,
                method=method,
                aggregate=query.aggregate,
                column=plan.column,
                table=plan.store.name,
                sample_size=result.sample_size,
                elapsed_seconds=watch.elapsed_seconds,
                details=details,
                raw=result,
                **_degradation(
                    plan.store,
                    result.degraded,
                    result.failed_partitions,
                    result.sample_fraction,
                ),
            )

        if method in _BASELINES:
            baseline = _BASELINES[method](seed=seed)
            estimate = baseline.aggregate(
                plan.store,
                plan.column,
                precision=plan.config.precision,
                confidence=plan.config.confidence,
                parallelism=parallelism,
            )
            value = estimate.value
            if query.aggregate == "sum":
                value *= plan.store.total_rows
            details = dict(estimate.details)
            return ExecutionResult(
                value=value,
                method=method,
                aggregate=query.aggregate,
                column=plan.column,
                table=plan.store.name,
                sample_size=estimate.sample_size,
                elapsed_seconds=watch.elapsed_seconds,
                details=details,
                raw=estimate,
                **_degradation(
                    plan.store,
                    bool(details.get("degraded", False)),
                    tuple(details.get("failed_partitions", ())),
                    float(details.get("sample_fraction", 1.0)),
                ),
            )

        raise QueryPlanError(f"no executor registered for method {method!r}")

    def _exact_value(self, plan: QueryPlan) -> float:
        if plan.query.aggregate == "avg":
            return plan.store.exact_mean(plan.column)
        return plan.store.exact_sum(plan.column)

    def _execute_time_constrained(
        self, plan: QueryPlan, watch: obs.Stopwatch, seed: Optional[Any] = None
    ) -> ExecutionResult:
        """Delegate to the time-constrained extension (Section VII-F).

        A blown budget propagates as :class:`~repro.errors.TimeBudgetExceeded`
        — it is a runtime failure of the execution, not a planning error.
        """
        from repro.extensions.time_constraint import TimeConstrainedAggregator

        budget_seconds = (plan.query.time_budget_ms or 0.0) / 1000.0
        aggregator = TimeConstrainedAggregator(plan.config, seed=seed)
        result = aggregator.aggregate_within(
            plan.store, plan.column, budget_seconds=budget_seconds
        )
        value = result.value
        if plan.query.aggregate == "sum":
            value *= plan.store.total_rows
        return ExecutionResult(
            value=value,
            method=result.method,
            aggregate=plan.query.aggregate,
            column=plan.column,
            table=plan.store.name,
            sample_size=result.sample_size,
            elapsed_seconds=watch.elapsed_seconds,
            details={**result.to_dict(), "time_budget_ms": plan.query.time_budget_ms},
            raw=result,
            **_degradation(plan.store),
        )
