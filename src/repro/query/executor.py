"""Physical execution of a query plan."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.core.isla import ISLAAggregator
from repro.errors import QueryPlanError, TimeBudgetExceeded
from repro.query.planner import QueryPlan
from repro.sampling import (
    BiLevelAggregator,
    BlockLevelAggregator,
    ErrorBoundedStratifiedAggregator,
    MeasureBiasedBoundaryAggregator,
    MeasureBiasedValueAggregator,
    SlevAggregator,
    StratifiedAggregator,
    UniformAggregator,
)

__all__ = ["ExecutionResult", "QueryExecutor"]


@dataclass(frozen=True)
class ExecutionResult:
    """Uniform wrapper around whatever estimator answered the query."""

    value: float
    method: str
    aggregate: str
    column: str
    table: str
    sample_size: int
    elapsed_seconds: float
    details: Dict[str, Any] = field(default_factory=dict)
    raw: Any = None

    def error_against(self, truth: float) -> float:
        """Absolute error against a known ground truth."""
        return abs(self.value - truth)


#: baseline estimator classes, keyed by the method identifier of the dialect
_BASELINES = {
    "US": UniformAggregator,
    "STS": StratifiedAggregator,
    "MV": MeasureBiasedValueAggregator,
    "MVB": MeasureBiasedBoundaryAggregator,
    "SLEV": SlevAggregator,
    "BILEVEL": BiLevelAggregator,
    "BLOCK": BlockLevelAggregator,
    "EBS": ErrorBoundedStratifiedAggregator,
}


class QueryExecutor:
    """Executes a :class:`QueryPlan` with the requested estimation method."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed

    def execute(self, plan: QueryPlan) -> ExecutionResult:
        """Run the plan and wrap the answer in an :class:`ExecutionResult`."""
        started = time.perf_counter()
        method = plan.method
        query = plan.query

        if query.time_budget_ms is not None:
            return self._execute_time_constrained(plan, started)

        if method == "EXACT":
            value = self._exact_value(plan)
            elapsed = time.perf_counter() - started
            return ExecutionResult(
                value=value,
                method=method,
                aggregate=query.aggregate,
                column=plan.column,
                table=plan.store.name,
                sample_size=plan.store.total_rows,
                elapsed_seconds=elapsed,
                details={"full_scan": True},
            )

        if method == "ISLA":
            aggregator = ISLAAggregator(plan.config, seed=self.seed)
            if query.aggregate == "avg":
                result = aggregator.aggregate_avg(plan.store, plan.column)
            else:
                result = aggregator.aggregate_sum(plan.store, plan.column)
            elapsed = time.perf_counter() - started
            return ExecutionResult(
                value=result.value,
                method=method,
                aggregate=query.aggregate,
                column=plan.column,
                table=plan.store.name,
                sample_size=result.sample_size,
                elapsed_seconds=elapsed,
                details=result.to_dict(),
                raw=result,
            )

        if method in _BASELINES:
            baseline = _BASELINES[method](seed=self.seed)
            estimate = baseline.aggregate(
                plan.store,
                plan.column,
                precision=plan.config.precision,
                confidence=plan.config.confidence,
            )
            value = estimate.value
            if query.aggregate == "sum":
                value *= plan.store.total_rows
            elapsed = time.perf_counter() - started
            return ExecutionResult(
                value=value,
                method=method,
                aggregate=query.aggregate,
                column=plan.column,
                table=plan.store.name,
                sample_size=estimate.sample_size,
                elapsed_seconds=elapsed,
                details=dict(estimate.details),
                raw=estimate,
            )

        raise QueryPlanError(f"no executor registered for method {method!r}")

    # ------------------------------------------------------------ internals
    def _exact_value(self, plan: QueryPlan) -> float:
        if plan.query.aggregate == "avg":
            return plan.store.exact_mean(plan.column)
        return plan.store.exact_sum(plan.column)

    def _execute_time_constrained(self, plan: QueryPlan, started: float) -> ExecutionResult:
        """Delegate to the time-constrained extension (Section VII-F)."""
        from repro.extensions.time_constraint import TimeConstrainedAggregator

        budget_seconds = (plan.query.time_budget_ms or 0.0) / 1000.0
        aggregator = TimeConstrainedAggregator(plan.config, seed=self.seed)
        try:
            result = aggregator.aggregate_within(
                plan.store, plan.column, budget_seconds=budget_seconds
            )
        except TimeBudgetExceeded as exc:
            raise QueryPlanError(str(exc)) from exc
        value = result.value
        if plan.query.aggregate == "sum":
            value *= plan.store.total_rows
        elapsed = time.perf_counter() - started
        return ExecutionResult(
            value=value,
            method="ISLA",
            aggregate=plan.query.aggregate,
            column=plan.column,
            table=plan.store.name,
            sample_size=result.sample_size,
            elapsed_seconds=elapsed,
            details={**result.to_dict(), "time_budget_ms": plan.query.time_budget_ms},
            raw=result,
        )
