"""Query front-end: a small SQL dialect over the aggregation engines.

The paper's system accepts queries of the form ``SELECT AVG(column) FROM
database WHERE desired_precision``.  This package provides a tokenizer,
parser and planner for that dialect (slightly extended with confidence,
method selection and a time budget) plus :class:`AQPEngine`, the session
facade examples and benchmarks use::

    engine = AQPEngine()
    engine.register_array("sensor", values, block_count=10)
    result = engine.execute(
        "SELECT AVG(value) FROM sensor PRECISION 0.1 CONFIDENCE 0.95"
    )
"""

from repro.query.ast import AggregateQuery
from repro.query.parser import parse_query
from repro.query.planner import QueryPlan, plan_query
from repro.query.executor import ExecutionResult, QueryExecutor
from repro.query.engine import AQPEngine

__all__ = [
    "AggregateQuery",
    "parse_query",
    "QueryPlan",
    "plan_query",
    "ExecutionResult",
    "QueryExecutor",
    "AQPEngine",
]
