"""Logical planning: bind a parsed query to a block store and an estimator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import ISLAConfig
from repro.errors import QueryPlanError
from repro.query.ast import AggregateQuery
from repro.storage.blockstore import BlockStore
from repro.storage.catalog import Catalog

__all__ = ["QueryPlan", "plan_query"]


@dataclass(frozen=True)
class QueryPlan:
    """A bound plan: which store, which column, which method, which config."""

    query: AggregateQuery
    store: BlockStore
    column: str
    config: ISLAConfig

    @property
    def method(self) -> str:
        """The estimation method this plan will execute."""
        return self.query.method

    def describe(self) -> str:
        """Readable plan description (used by the CLI's EXPLAIN output)."""
        return (
            f"{self.query.aggregate.upper()}({self.column}) over "
            f"{self.store.name!r} [{self.store.block_count} blocks, "
            f"{self.store.total_rows} rows] via {self.method} "
            f"(e={self.config.precision:g}, beta={self.config.confidence:g})"
        )


def plan_query(
    query: AggregateQuery,
    catalog: Catalog,
    base_config: Optional[ISLAConfig] = None,
) -> QueryPlan:
    """Resolve the table, validate the column and build the execution config."""
    store = catalog.resolve(query.table)
    try:
        column = store.validate_column(query.column)
    except Exception as exc:  # noqa: BLE001 - rewrap as a planning error
        raise QueryPlanError(str(exc)) from exc
    config = (base_config or ISLAConfig()).with_updates(
        precision=query.precision, confidence=query.confidence
    )
    return QueryPlan(query=query, store=store, column=column, config=config)
