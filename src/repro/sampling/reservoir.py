"""Streaming reservoir sampling.

A generic substrate utility: the online-aggregation example uses it to keep a
bounded uniform sample of the stream it has consumed so far, and tests use it
to validate streaming code paths against batch sampling.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.errors import SamplingError

__all__ = ["ReservoirSampler"]


class ReservoirSampler:
    """Classic Algorithm-R reservoir sampling over a stream of floats."""

    def __init__(self, capacity: int, seed: Optional[int] = None) -> None:
        if capacity <= 0:
            raise SamplingError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._rng = np.random.default_rng(seed)
        self._reservoir: List[float] = []
        self._seen = 0

    @property
    def seen(self) -> int:
        """Number of stream items observed so far."""
        return self._seen

    @property
    def is_full(self) -> bool:
        """True once the reservoir holds ``capacity`` items."""
        return len(self._reservoir) >= self.capacity

    def add(self, value: float) -> None:
        """Observe a single stream item."""
        self._seen += 1
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(float(value))
            return
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._reservoir[slot] = float(value)

    def extend(self, values: Iterable[float]) -> None:
        """Observe a batch of stream items."""
        for value in values:
            self.add(value)

    def sample(self) -> np.ndarray:
        """Return a copy of the current reservoir contents."""
        return np.asarray(self._reservoir, dtype=float)

    def mean(self) -> float:
        """Mean of the current reservoir (raises if nothing was observed)."""
        if not self._reservoir:
            raise SamplingError("reservoir is empty")
        return float(np.mean(self._reservoir))

    def __len__(self) -> int:
        return len(self._reservoir)
