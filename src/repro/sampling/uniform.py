"""Uniform sampling (US) — the paper's primary cheap baseline."""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import BaselineAggregator, SampleEstimate
from repro.storage.blockstore import BlockStore

__all__ = ["UniformAggregator"]


class UniformAggregator(BaselineAggregator):
    """Plain uniform random sampling with the sample mean as the estimate.

    Each block is sampled at the global rate (as in the paper's experiments,
    where every block draws ``r * |B_j|`` rows) and the pooled sample mean is
    returned.
    """

    method = "US"

    def _aggregate(
        self,
        store: BlockStore,
        column: str,
        rate: float,
        rng: np.random.Generator,
    ) -> SampleEstimate:
        sample = store.uniform_sample(column, rate, rng)
        if sample.size == 0:
            raise SamplingError("uniform sampling produced an empty sample")
        return SampleEstimate(
            value=float(sample.mean()),
            sample_size=int(sample.size),
            sampling_rate=rate,
            method=self.method,
            details={"sample_std": float(sample.std())},
        )
