"""Shared interface for the baseline aggregators."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro import obs
from repro.errors import SamplingError
from repro.stats.confidence import required_sampling_rate
from repro.storage.blockstore import BlockStore

__all__ = ["SampleEstimate", "BaselineAggregator"]

#: pilot sample size used when a baseline must estimate sigma itself
DEFAULT_PILOT_SIZE = 1000


@dataclass(frozen=True)
class SampleEstimate:
    """The answer a baseline aggregator returns."""

    value: float
    sample_size: int
    sampling_rate: float
    method: str
    details: Dict[str, Any] = field(default_factory=dict)

    def error_against(self, truth: float) -> float:
        """Absolute error against a known ground truth."""
        return abs(self.value - truth)

    def relative_error_against(self, truth: float) -> float:
        """Relative error against a known ground truth."""
        if truth == 0.0:
            return float("inf") if self.value != 0.0 else 0.0
        return abs(self.value - truth) / abs(truth)


class BaselineAggregator(abc.ABC):
    """A sampling-based AVG estimator running over a :class:`BlockStore`.

    Subclasses implement :meth:`_aggregate`; the base class resolves the
    sampling rate (either supplied directly, as the experiments do when they
    hand ISLA a third of the baseline's budget, or derived from a
    precision/confidence target through Eq. 1 of the paper) and seeds the
    random generator.
    """

    #: short method identifier used in experiment tables ("US", "STS", ...)
    method: str = "baseline"

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed

    # ------------------------------------------------------------------ API
    def aggregate(
        self,
        store: BlockStore,
        column: Optional[str] = None,
        *,
        rate: Optional[float] = None,
        precision: Optional[float] = None,
        confidence: float = 0.95,
        rng: Optional[np.random.Generator] = None,
        parallelism: Optional[int] = None,
        pool: Optional[Any] = None,
    ) -> SampleEstimate:
        """Estimate AVG(column) over ``store``.

        Exactly one of ``rate`` and ``precision`` must be provided: ``rate``
        fixes the sampling rate directly, while ``precision`` derives it from
        Eq. 1 using a pilot estimate of sigma.

        ``parallelism=None`` (the default) runs the estimator's own serial
        scan.  Any integer — including 1 — runs the method's
        partition-parallel kernel instead (:mod:`repro.parallel.baselines`),
        whose seeded results are bit-identical across parallelism levels;
        ``pool`` optionally overrides the shared scan pool.
        """
        if parallelism is not None:
            from repro.parallel.baselines import parallel_baseline_aggregate

            return parallel_baseline_aggregate(
                self,
                store,
                column,
                rate=rate,
                precision=precision,
                confidence=confidence,
                seed=rng if rng is not None else self.seed,
                pool=pool,
                parallelism=parallelism,
            )
        column = store.validate_column(column)
        generator = rng if rng is not None else np.random.default_rng(self.seed)
        resolved_rate = self._resolve_rate(
            store, column, rate=rate, precision=precision,
            confidence=confidence, rng=generator,
        )
        with obs.span(
            "sample.draw", method=self.method, table=store.name, rate=resolved_rate
        ) as sp:
            estimate = self._aggregate(store, column, resolved_rate, generator)
            sp.set_tag("rows", estimate.sample_size)
        obs.counter("sample.rows", estimate.sample_size)
        return estimate

    # ------------------------------------------------------------ internals
    def _resolve_rate(
        self,
        store: BlockStore,
        column: str,
        *,
        rate: Optional[float],
        precision: Optional[float],
        confidence: float,
        rng: np.random.Generator,
    ) -> float:
        if rate is not None and precision is not None:
            raise SamplingError("provide either rate or precision, not both")
        if rate is not None:
            if not 0.0 < rate <= 1.0:
                raise SamplingError(f"sampling rate must lie in (0, 1], got {rate}")
            return float(rate)
        if precision is None:
            raise SamplingError("either rate or precision must be provided")
        pilot = store.pilot_sample(column, DEFAULT_PILOT_SIZE, rng)
        sigma = float(pilot.std())
        return required_sampling_rate(sigma, precision, confidence, store.total_rows)

    @abc.abstractmethod
    def _aggregate(
        self,
        store: BlockStore,
        column: str,
        rate: float,
        rng: np.random.Generator,
    ) -> SampleEstimate:
        """Run the estimator at the resolved sampling rate."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(method={self.method!r})"
