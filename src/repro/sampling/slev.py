"""SLEV: algorithmic-leveraging biased sampling (reference [2] of the paper).

Ma, Mahoney & Yu's SLEV draws samples with probabilities that mix leverage
scores with the uniform distribution, ``pi_i = alpha * h_i + (1 - alpha)/n``,
and re-weights each draw by ``1 / pi_i`` (Hansen–Hurwitz).  The paper uses
this as the motivating prior technique: it is unbiased but needs the leverage
of *every* row (a full pass over the data), which is exactly the cost ISLA
avoids.  The implementation therefore materialises the column, which is fine
at reproduction scale and makes the comparison honest.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import BaselineAggregator, SampleEstimate
from repro.stats.estimators import hansen_hurwitz_mean
from repro.storage.blockstore import BlockStore

__all__ = ["SlevAggregator"]


class SlevAggregator(BaselineAggregator):
    """Biased sampling with leverage-mixed probabilities and HH re-weighting."""

    method = "SLEV"

    def __init__(self, alpha: float = 0.9, seed: Optional[int] = None) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= alpha <= 1.0:
            raise SamplingError(f"alpha must lie in [0, 1], got {alpha}")
        self.alpha = float(alpha)

    def _aggregate(
        self,
        store: BlockStore,
        column: str,
        rate: float,
        rng: np.random.Generator,
    ) -> SampleEstimate:
        values = store.full_column(column)
        population = int(values.size)
        if population == 0:
            raise SamplingError("SLEV cannot aggregate an empty store")
        sample_size = max(1, int(round(rate * population)))

        square_sum = float((values ** 2).sum())
        if square_sum == 0.0:
            leverages = np.full(population, 1.0 / population)
        else:
            leverages = (values ** 2) / square_sum
        probabilities = self.alpha * leverages + (1.0 - self.alpha) / population
        probabilities = probabilities / probabilities.sum()

        indices = rng.choice(population, size=sample_size, replace=True, p=probabilities)
        estimate = hansen_hurwitz_mean(
            values[indices], probabilities[indices], population_size=population
        )
        return SampleEstimate(
            value=float(estimate),
            sample_size=sample_size,
            sampling_rate=rate,
            method=self.method,
            details={"alpha": self.alpha, "full_scan_required": True},
        )
