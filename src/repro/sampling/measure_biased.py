"""Measure-biased baselines (MV and MVB) from the sample+seek comparison.

Section VIII-C of the paper adapts the measure-biased sampling of
sample+seek [17] to AVG aggregation in two ways:

* **MV** ("probabilities on values"): each sampled value is re-weighted with a
  probability proportional to its value (Eq. 4), so the estimate is
  ``sum(x_i^2) / sum(x_i)`` over the sample.  For ``N(100, 20^2)`` this is
  biased upward to ``(mu^2 + sigma^2)/mu = 104``, which is exactly what the
  paper's Table III reports.
* **MVB** ("probabilities on values and boundaries"): samples are first
  divided into regions by the ISLA data boundaries; each region receives
  probability mass proportional to its sample count and, within a region,
  proportional to the values — the worked example in §VIII-C (region share
  ``n_region / n`` times ``value / region_sum``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import BaselineAggregator, SampleEstimate, DEFAULT_PILOT_SIZE
from repro.storage.blockstore import BlockStore

__all__ = ["MeasureBiasedValueAggregator", "MeasureBiasedBoundaryAggregator"]


class MeasureBiasedValueAggregator(BaselineAggregator):
    """MV: re-weight uniform samples with probabilities proportional to values."""

    method = "MV"

    def _aggregate(
        self,
        store: BlockStore,
        column: str,
        rate: float,
        rng: np.random.Generator,
    ) -> SampleEstimate:
        sample = store.uniform_sample(column, rate, rng)
        if sample.size == 0:
            raise SamplingError("MV sampling produced an empty sample")
        value_sum = float(sample.sum())
        if value_sum == 0.0:
            # Degenerate all-zero sample: fall back to the plain mean (zero).
            estimate = 0.0
        else:
            probabilities = sample / value_sum
            estimate = float((probabilities * sample).sum())
        return SampleEstimate(
            value=estimate,
            sample_size=int(sample.size),
            sampling_rate=rate,
            method=self.method,
            details={"plain_mean": float(sample.mean())},
        )


class MeasureBiasedBoundaryAggregator(BaselineAggregator):
    """MVB: measure-biased probabilities combined with the ISLA data boundaries."""

    method = "MVB"

    def __init__(
        self,
        p1: float = 0.5,
        p2: float = 2.0,
        pilot_size: int = DEFAULT_PILOT_SIZE,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0.0 < p1 < p2:
            raise SamplingError(f"boundary parameters must satisfy 0 < p1 < p2, got {p1}, {p2}")
        if pilot_size <= 1:
            raise SamplingError("pilot_size must exceed 1")
        self.p1 = float(p1)
        self.p2 = float(p2)
        self.pilot_size = int(pilot_size)

    def _aggregate(
        self,
        store: BlockStore,
        column: str,
        rate: float,
        rng: np.random.Generator,
    ) -> SampleEstimate:
        # Import here to avoid a package-level cycle: the core package depends
        # on sampling only through the experiments, not vice versa.
        from repro.core.boundaries import DataBoundaries

        pilot = store.pilot_sample(column, self.pilot_size, rng)
        sketch = float(pilot.mean())
        sigma = float(pilot.std())
        boundaries = DataBoundaries.from_sketch(sketch, sigma, p1=self.p1, p2=self.p2)

        sample = store.uniform_sample(column, rate, rng)
        if sample.size == 0:
            raise SamplingError("MVB sampling produced an empty sample")

        regions = boundaries.classify(sample)
        estimate = 0.0
        region_stats = {}
        total = int(sample.size)
        for region_code in np.unique(regions):
            mask = regions == region_code
            region_values = sample[mask]
            region_sum = float(region_values.sum())
            share = region_values.size / total
            if region_sum == 0.0:
                contribution = share * float(region_values.mean()) if region_values.size else 0.0
            else:
                within = region_values / region_sum
                contribution = share * float((within * region_values).sum())
            estimate += contribution
            region_stats[int(region_code)] = {
                "count": int(region_values.size),
                "contribution": contribution,
            }
        return SampleEstimate(
            value=float(estimate),
            sample_size=total,
            sampling_rate=rate,
            method=self.method,
            details={"sketch": sketch, "sigma": sigma, "regions": region_stats},
        )
