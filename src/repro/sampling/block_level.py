"""Block-level sampling (reference [22], Chaudhuri et al. 2004), simplified.

Instead of touching every block, block-level sampling selects a subset of
blocks and samples those more densely, trading statistical efficiency for
I/O.  It serves as an additional related-work baseline and as a stress case
for the experiments: on i.i.d. blocks it matches uniform sampling, on
non-i.i.d. blocks it degrades sharply.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import BaselineAggregator, SampleEstimate
from repro.storage.blockstore import BlockStore

__all__ = ["BlockLevelAggregator"]


class BlockLevelAggregator(BaselineAggregator):
    """Sample a fraction of blocks, then sample densely inside them."""

    method = "BLOCK"

    def __init__(self, block_fraction: float = 0.5, seed: Optional[int] = None) -> None:
        super().__init__(seed=seed)
        if not 0.0 < block_fraction <= 1.0:
            raise SamplingError(
                f"block_fraction must lie in (0, 1], got {block_fraction}"
            )
        self.block_fraction = float(block_fraction)

    def _aggregate(
        self,
        store: BlockStore,
        column: str,
        rate: float,
        rng: np.random.Generator,
    ) -> SampleEstimate:
        block_count = store.block_count
        if block_count == 0:
            raise SamplingError("block store has no blocks")
        chosen_count = max(1, int(round(self.block_fraction * block_count)))
        chosen = rng.choice(block_count, size=chosen_count, replace=False)

        total_rows = float(store.block_sizes().sum())
        budget = max(1, int(round(rate * total_rows)))
        per_block = max(1, budget // chosen_count)

        pieces = []
        for index in chosen:
            block = store.blocks[int(index)]
            if block.size == 0:
                continue
            pieces.append(block.sample_column(column, per_block, rng))
        if not pieces:
            raise SamplingError("block-level sampling produced an empty sample")
        sample = np.concatenate(pieces)
        return SampleEstimate(
            value=float(sample.mean()),
            sample_size=int(sample.size),
            sampling_rate=rate,
            method=self.method,
            details={"blocks_used": sorted(int(i) for i in chosen),
                     "per_block": per_block},
        )
