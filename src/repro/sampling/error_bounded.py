"""Error-bounded stratified sampling (reference [23], Yan et al. 2014), simplified.

The original technique targets sparse data: rows are partitioned into value
strata, and each stratum receives just enough samples to meet a per-stratum
error budget.  We reproduce the essential behaviour — value-based strata with
error-driven allocation — as another related-work baseline used in the
ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import BaselineAggregator, SampleEstimate
from repro.storage.blockstore import BlockStore

__all__ = ["ErrorBoundedStratifiedAggregator"]


class ErrorBoundedStratifiedAggregator(BaselineAggregator):
    """Value-stratified sampling with variance-proportional allocation."""

    method = "EBS"

    def __init__(self, strata: int = 8, seed: Optional[int] = None) -> None:
        super().__init__(seed=seed)
        if strata < 2:
            raise SamplingError(f"strata must be at least 2, got {strata}")
        self.strata = int(strata)

    def _aggregate(
        self,
        store: BlockStore,
        column: str,
        rate: float,
        rng: np.random.Generator,
    ) -> SampleEstimate:
        values = store.full_column(column)
        population = int(values.size)
        if population == 0:
            raise SamplingError("cannot aggregate an empty store")
        budget = max(self.strata, int(round(rate * population)))

        # Equi-width value strata between the observed min and max.
        low, high = float(values.min()), float(values.max())
        if high == low:
            return SampleEstimate(
                value=low,
                sample_size=min(budget, population),
                sampling_rate=rate,
                method=self.method,
                details={"degenerate": True},
            )
        edges = np.linspace(low, high, self.strata + 1)
        assignments = np.clip(np.digitize(values, edges[1:-1]), 0, self.strata - 1)

        stratum_sizes = np.array(
            [(assignments == s).sum() for s in range(self.strata)], dtype=float
        )
        stratum_stds = np.array(
            [
                float(values[assignments == s].std()) if stratum_sizes[s] > 0 else 0.0
                for s in range(self.strata)
            ]
        )
        weights = stratum_sizes * (stratum_stds + 1e-12)
        if weights.sum() == 0.0:
            weights = stratum_sizes
        allocations = np.maximum(
            (stratum_sizes > 0).astype(int),
            np.round(budget * weights / weights.sum()).astype(int),
        )

        estimate = 0.0
        drawn = 0
        for stratum in range(self.strata):
            members = values[assignments == stratum]
            if members.size == 0:
                continue
            share = int(min(allocations[stratum], members.size))
            if share <= 0:
                continue
            sample = members[rng.choice(members.size, size=share, replace=False)]
            estimate += (members.size / population) * float(sample.mean())
            drawn += share

        if drawn == 0:
            raise SamplingError("error-bounded sampling produced an empty sample")
        return SampleEstimate(
            value=float(estimate),
            sample_size=drawn,
            sampling_rate=rate,
            method=self.method,
            details={"strata": self.strata,
                     "allocations": [int(a) for a in allocations]},
        )
