"""Stratified sampling (STS) with blocks as strata."""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import BaselineAggregator, SampleEstimate
from repro.storage.blockstore import BlockStore

__all__ = ["StratifiedAggregator"]

Allocation = Literal["proportional", "neyman"]


class StratifiedAggregator(BaselineAggregator):
    """Stratified sampling treating every block as a stratum.

    Two allocation rules are supported:

    * ``proportional`` — each stratum receives samples proportional to its
      size (this is the STS baseline of the paper's Table V / Section VIII-F).
    * ``neyman`` — samples proportional to ``N_h * sigma_h`` (requires a small
      per-block pilot to estimate the within-stratum deviation).

    The estimate is the stratified mean ``sum(N_h/N * mean_h)``.
    """

    method = "STS"

    def __init__(
        self,
        allocation: Allocation = "proportional",
        pilot_per_block: int = 200,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        if allocation not in ("proportional", "neyman"):
            raise SamplingError(f"unknown allocation {allocation!r}")
        if pilot_per_block <= 1:
            raise SamplingError("pilot_per_block must exceed 1")
        self.allocation = allocation
        self.pilot_per_block = pilot_per_block

    def _aggregate(
        self,
        store: BlockStore,
        column: str,
        rate: float,
        rng: np.random.Generator,
    ) -> SampleEstimate:
        sizes = store.block_sizes()
        total_rows = sizes.sum()
        budget = max(1, int(round(rate * total_rows)))
        allocations = self._allocate(store, column, budget, rng)

        stratum_means = np.zeros(store.block_count, dtype=float)
        drawn = 0
        for index, (block, share) in enumerate(zip(store.blocks, allocations)):
            share = int(share)
            if share <= 0 or block.size == 0:
                stratum_means[index] = 0.0
                continue
            sample = block.sample_column(column, share, rng)
            stratum_means[index] = float(sample.mean())
            drawn += sample.size

        if drawn == 0:
            raise SamplingError("stratified sampling produced an empty sample")
        weights = sizes / total_rows
        estimate = float((weights * stratum_means).sum())
        return SampleEstimate(
            value=estimate,
            sample_size=drawn,
            sampling_rate=rate,
            method=self.method,
            details={"allocation": self.allocation,
                     "per_stratum": [int(a) for a in allocations]},
        )

    # ------------------------------------------------------------ allocation
    def _allocate(
        self,
        store: BlockStore,
        column: str,
        budget: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        sizes = store.block_sizes()
        if self.allocation == "proportional":
            raw = budget * sizes / sizes.sum()
        else:
            deviations = np.array(
                [
                    float(
                        block.sample_column(
                            column, min(self.pilot_per_block, max(2, block.size)), rng
                        ).std()
                    )
                    if block.size > 0
                    else 0.0
                    for block in store.blocks
                ]
            )
            weights = sizes * deviations
            if weights.sum() == 0.0:
                weights = sizes
            raw = budget * weights / weights.sum()
        allocations = np.maximum(1, np.round(raw)).astype(int)
        return allocations
