"""Sampling-based baseline aggregators.

Every estimator the paper compares against (Section VIII and the related-work
section) is implemented here on top of the same block-store substrate ISLA
uses, so the experiment harness can run all methods under identical
conditions:

* :class:`UniformAggregator` (US) — plain uniform sampling.
* :class:`StratifiedAggregator` (STS) — per-block strata, proportional or
  Neyman allocation.
* :class:`MeasureBiasedValueAggregator` (MV) and
  :class:`MeasureBiasedBoundaryAggregator` (MVB) — the measure-biased
  technique of sample+seek [17] adapted to AVG as described in §VIII-C.
* :class:`SlevAggregator` — algorithmic-leveraging (SLEV) biased sampling [2].
* :class:`BiLevelAggregator` — bi-level Bernoulli sampling [1].
* :class:`BlockLevelAggregator` — block-level sampling [22].
* :class:`ErrorBoundedStratifiedAggregator` — error-bounded stratified
  sampling for sparse data [23], simplified.
* :class:`ReservoirSampler` — a generic streaming reservoir sample used by
  the online-aggregation example.
"""

from repro.sampling.base import BaselineAggregator, SampleEstimate
from repro.sampling.uniform import UniformAggregator
from repro.sampling.stratified import StratifiedAggregator
from repro.sampling.measure_biased import (
    MeasureBiasedValueAggregator,
    MeasureBiasedBoundaryAggregator,
)
from repro.sampling.slev import SlevAggregator
from repro.sampling.bilevel import BiLevelAggregator
from repro.sampling.block_level import BlockLevelAggregator
from repro.sampling.error_bounded import ErrorBoundedStratifiedAggregator
from repro.sampling.reservoir import ReservoirSampler

__all__ = [
    "BaselineAggregator",
    "SampleEstimate",
    "UniformAggregator",
    "StratifiedAggregator",
    "MeasureBiasedValueAggregator",
    "MeasureBiasedBoundaryAggregator",
    "SlevAggregator",
    "BiLevelAggregator",
    "BlockLevelAggregator",
    "ErrorBoundedStratifiedAggregator",
    "ReservoirSampler",
]
