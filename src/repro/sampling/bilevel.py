"""Bi-level Bernoulli sampling (reference [1], Haas 2004), simplified.

The bi-level scheme first decides per block how aggressively to sample it
(blocks with larger local variance get more rows), then draws row-level
Bernoulli samples inside the chosen blocks.  It is listed in the paper's
related work as the technique that considers *local variance* but not
*individual differences*; we implement it both as an extra baseline and as
the basis for the non-i.i.d. sampling-rate extension (Section VII-C).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import BaselineAggregator, SampleEstimate
from repro.storage.blockstore import BlockStore

__all__ = ["BiLevelAggregator"]


class BiLevelAggregator(BaselineAggregator):
    """Variance-aware per-block sampling rates with a weighted combination."""

    method = "BILEVEL"

    def __init__(self, pilot_per_block: int = 200, seed: Optional[int] = None) -> None:
        super().__init__(seed=seed)
        if pilot_per_block <= 1:
            raise SamplingError("pilot_per_block must exceed 1")
        self.pilot_per_block = int(pilot_per_block)

    def _aggregate(
        self,
        store: BlockStore,
        column: str,
        rate: float,
        rng: np.random.Generator,
    ) -> SampleEstimate:
        sizes = store.block_sizes()
        total_rows = float(sizes.sum())
        budget = max(1, int(round(rate * total_rows)))

        # Block leverages follow the paper's Section VII-C formula:
        #   blev_i = (1 + sigma_i^2) / (b + sum(sigma_j^2))
        variances = np.array(
            [
                float(
                    block.sample_column(
                        column, min(self.pilot_per_block, max(2, block.size)), rng
                    ).var()
                )
                if block.size > 0
                else 0.0
                for block in store.blocks
            ]
        )
        block_leverages = (1.0 + variances) / (len(sizes) + variances.sum())

        block_means = np.zeros(store.block_count, dtype=float)
        drawn = 0
        per_block_sizes = []
        for index, block in enumerate(store.blocks):
            share = int(round(budget * block_leverages[index]))
            share = max(1, min(share, max(1, block.size)))
            per_block_sizes.append(share)
            if block.size == 0:
                continue
            sample = block.sample_column(column, share, rng)
            block_means[index] = float(sample.mean())
            drawn += sample.size

        if drawn == 0:
            raise SamplingError("bi-level sampling produced an empty sample")
        weights = sizes / total_rows
        estimate = float((weights * block_means).sum())
        return SampleEstimate(
            value=estimate,
            sample_size=drawn,
            sampling_rate=rate,
            method=self.method,
            details={
                "block_leverages": [float(b) for b in block_leverages],
                "per_block_sizes": per_block_sizes,
            },
        )
