"""The fault-injection runtime: deterministic draws, zero cost when off.

One :class:`FaultInjector` executes a :class:`~repro.faults.plan.FaultPlan`.
Guarded sites ask the module-level :func:`active` for the current injector —
``None`` (the production default) short-circuits in one attribute read plus
a None check, so the framework adds no measurable overhead when disabled.

Whether a fault fires is a *pure function* of ``(plan seed, site, spec
index, table, key)``: the draw hashes the triple through BLAKE2 into a
uniform in ``[0, 1)`` and compares against the spec's rate.  No global RNG
state, no call-order dependence — two runs under one plan inject the same
faults no matter how threads interleave, which keeps seeded degraded
answers bit-identical.  The only mutable state is hit accounting
(``once_per_key`` / ``max_hits``), guarded by a lock.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple, Union

from repro import obs
from repro.errors import InjectedFault
from repro.faults.plan import ENV_FAULTS, FaultPlan, FaultSpec

__all__ = [
    "FaultInjector",
    "active",
    "install",
    "clear",
    "fault_scope",
    "reset_env_cache",
]


def _uniform_draw(seed: int, site: str, spec_index: int, table: Optional[str], key: Optional[int]) -> float:
    """Deterministic uniform in [0, 1) for one (spec, table, key) triple."""
    token = f"{seed}|{site}|{spec_index}|{table or ''}|{key if key is not None else ''}"
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class FaultInjector:
    """Executes one fault plan; thread-safe; deterministic per plan seed."""

    def __init__(self, plan: FaultPlan, sleep=time.sleep) -> None:
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        # hit accounting: per-spec totals and per-(spec, table, key) counts
        self._spec_hits: Dict[int, int] = {}
        self._key_hits: Dict[Tuple[int, Optional[str], Optional[int]], int] = {}

    # ------------------------------------------------------------- decisions
    def draw(
        self, site: str, table: Optional[str] = None, key: Optional[int] = None
    ) -> Optional[FaultSpec]:
        """The spec that fires for ``(site, table, key)``, or ``None``.

        The rate decision is stateless and deterministic; the
        ``once_per_key``/``max_hits`` bookkeeping consumes a hit only when
        the decision was positive, so asking about a triple that never
        fires costs nothing and changes nothing.
        """
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site or not spec.matches(table, key):
                continue
            if spec.rate < 1.0:
                if _uniform_draw(self.plan.seed, site, index, table, key) >= spec.rate:
                    continue
            elif spec.rate == 0.0:
                continue
            with self._lock:
                if spec.max_hits is not None:
                    if self._spec_hits.get(index, 0) >= spec.max_hits:
                        continue
                if spec.once_per_key:
                    key_token = (index, table, key)
                    if self._key_hits.get(key_token, 0) >= 1:
                        continue
                    self._key_hits[key_token] = 1
                self._spec_hits[index] = self._spec_hits.get(index, 0) + 1
            obs.counter(f"faults.injected.{site}")
            return spec
        return None

    def would_fire(
        self, site: str, table: Optional[str] = None, key: Optional[int] = None
    ) -> bool:
        """Pure rate decision, without consuming a hit (used by planners/tests)."""
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site or not spec.matches(table, key):
                continue
            if spec.rate >= 1.0:
                return True
            if spec.rate > 0.0 and _uniform_draw(
                self.plan.seed, site, index, table, key
            ) < spec.rate:
                return True
        return False

    # ----------------------------------------------------------- site hooks
    def partition_scan(self, table: Optional[str], key: Optional[int]) -> None:
        """Guard of one partition scan task: straggle first, then maybe fail.

        The straggler sleep models a hung shard (bounded by the spec's
        ``delay_ms``); the failure raises :class:`InjectedFault`, which the
        degraded scan path records as a failed partition.
        """
        straggle = self.draw("scan.straggler", table, key)
        if straggle is not None and straggle.delay_ms > 0.0:
            self._sleep(straggle.delay_ms / 1000.0)
        failure = self.draw("scan.partition", table, key)
        if failure is not None:
            raise InjectedFault(
                "scan.partition",
                f"injected partition failure (table={table!r}, partition={key})",
            )

    def torn_frame(self, key: Optional[int] = None) -> bool:
        """True when the next WAL frame should be written torn."""
        return self.draw("wal.torn_frame", None, key) is not None

    def bitflip(self, table: Optional[str], key: Optional[int]) -> bool:
        """True when a stored block should be treated as CRC-corrupt."""
        return self.draw("block.bitflip", table, key) is not None

    # ------------------------------------------------------------ accounting
    def stats(self) -> Dict[str, int]:
        """Total fires per site (for reports and assertions)."""
        with self._lock:
            totals: Dict[str, int] = {}
            for index, hits in self._spec_hits.items():
                site = self.plan.specs[index].site
                totals[site] = totals.get(site, 0) + hits
            return totals

    def reset(self) -> None:
        """Forget hit accounting (rate decisions are stateless anyway)."""
        with self._lock:
            self._spec_hits.clear()
            self._key_hits.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector(seed={self.plan.seed}, specs={len(self.plan.specs)})"


# --------------------------------------------------------------------------
# module-level switch
# --------------------------------------------------------------------------

_lock = threading.Lock()
_active: Optional[FaultInjector] = None
_env_loaded = False


def active() -> Optional[FaultInjector]:
    """The process-wide injector, or ``None`` when chaos is off.

    The first call resolves :data:`~repro.faults.plan.ENV_FAULTS` once; an
    explicit :func:`install` / :func:`clear` always wins over the
    environment.  Guarded sites call this on every operation — the disabled
    path is one None check.
    """
    global _active, _env_loaded
    if _env_loaded:
        return _active
    with _lock:
        if not _env_loaded:
            plan = FaultPlan.from_env()
            if plan is not None and _active is None:
                _active = FaultInjector(plan)
            _env_loaded = True
    return _active


def install(plan: Union[FaultPlan, FaultInjector]) -> FaultInjector:
    """Activate a plan (or a pre-built injector) process-wide."""
    global _active, _env_loaded
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    with _lock:
        _active = injector
        _env_loaded = True
    return injector


def clear() -> None:
    """Deactivate fault injection (and stop consulting the environment)."""
    global _active, _env_loaded
    with _lock:
        _active = None
        _env_loaded = True


def reset_env_cache() -> None:
    """Re-arm the one-shot ``REPRO_FAULTS`` lookup (tests and benchmarks)."""
    global _active, _env_loaded
    with _lock:
        _active = None
        _env_loaded = False


@contextmanager
def fault_scope(plan: Union[FaultPlan, FaultInjector]) -> Iterator[FaultInjector]:
    """Context manager: install a plan, restore the previous state on exit."""
    global _active, _env_loaded
    with _lock:
        previous = (_active, _env_loaded)
    injector = install(plan)
    try:
        yield injector
    finally:
        with _lock:
            _active, _env_loaded = previous
