"""Declarative, seed-driven fault plans.

A :class:`FaultPlan` is a pure description of the chaos to inject: a plan
seed plus a list of :class:`FaultSpec` entries, each naming an injection
*site*, a firing *rate* and optional scoping (tables, partition keys).
Plans are deterministic by construction — whether a given ``(site, table,
key)`` triple fires is a pure function of the plan seed and the triple, so
two runs under the same plan fail the same partitions, straggle the same
shards and tear the same WAL frames regardless of thread scheduling.  That
is what lets the chaos suite assert bit-identical degraded answers.

Plans load from three places:

* programmatically — ``FaultPlan(seed=7, specs=(FaultSpec(...),))``;
* from a dict/JSON document — :meth:`FaultPlan.from_dict` /
  :meth:`FaultPlan.from_json`;
* from the ``REPRO_FAULTS`` environment variable — either inline JSON or a
  path to a JSON file (:meth:`FaultPlan.from_env`).  Unset means no plan:
  the framework costs one attribute read per guarded site.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["SITES", "ENV_FAULTS", "FaultSpec", "FaultPlan"]

#: environment variable carrying an inline JSON plan or a path to one
ENV_FAULTS = "REPRO_FAULTS"

#: the injection sites wired through the stack
SITES = (
    "scan.partition",   # raise InjectedFault inside a partition scan task
    "scan.straggler",   # sleep delay_ms inside a partition scan task
    "wal.torn_frame",   # write a torn WAL frame, then fail the append
    "block.bitflip",    # treat a stored block as CRC-corrupt at open time
)


@dataclass(frozen=True)
class FaultSpec:
    """One kind of fault: where it strikes, how often, and how hard."""

    #: injection site, one of :data:`SITES`
    site: str
    #: probability that a matching (table, key) draws this fault
    rate: float = 1.0
    #: restrict to these table names (lower-cased); ``None`` matches any
    tables: Optional[Tuple[str, ...]] = None
    #: restrict to these partition keys (block ids); ``None`` matches any
    keys: Optional[Tuple[int, ...]] = None
    #: straggler sleep in milliseconds (``scan.straggler`` only)
    delay_ms: float = 0.0
    #: fire at most once per (site, table, key) — models transient faults,
    #: and is what makes speculative re-execution observably effective
    once_per_key: bool = False
    #: global cap on how many times this spec fires (``None`` = unbounded)
    max_hits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known sites: {', '.join(SITES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must lie in [0, 1], got {self.rate}"
            )
        if self.delay_ms < 0.0:
            raise ConfigurationError(
                f"delay_ms must be non-negative, got {self.delay_ms}"
            )
        if self.max_hits is not None and self.max_hits < 1:
            raise ConfigurationError(
                f"max_hits must be positive, got {self.max_hits}"
            )
        if self.tables is not None:
            object.__setattr__(
                self, "tables", tuple(str(name).lower() for name in self.tables)
            )
        if self.keys is not None:
            object.__setattr__(self, "keys", tuple(int(key) for key in self.keys))

    # ------------------------------------------------------------- matching
    def matches(self, table: Optional[str], key: Optional[int]) -> bool:
        """True when this spec scopes over ``(table, key)``."""
        if self.tables is not None:
            if table is None or table.lower() not in self.tables:
                return False
        if self.keys is not None:
            if key is None or int(key) not in self.keys:
                return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"site": self.site, "rate": self.rate}
        if self.tables is not None:
            payload["tables"] = list(self.tables)
        if self.keys is not None:
            payload["keys"] = list(self.keys)
        if self.delay_ms:
            payload["delay_ms"] = self.delay_ms
        if self.once_per_key:
            payload["once_per_key"] = True
        if self.max_hits is not None:
            payload["max_hits"] = self.max_hits
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        known = {"site", "rate", "tables", "keys", "delay_ms", "once_per_key", "max_hits"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown FaultSpec fields {sorted(unknown)}; known: {sorted(known)}"
            )
        spec = dict(payload)
        if "tables" in spec and spec["tables"] is not None:
            spec["tables"] = tuple(spec["tables"])
        if "keys" in spec and spec["keys"] is not None:
            spec["keys"] = tuple(spec["keys"])
        return cls(**spec)


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs active under it."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def sites(self) -> Tuple[str, ...]:
        """The distinct sites this plan can strike (in spec order)."""
        seen = []
        for spec in self.specs:
            if spec.site not in seen:
                seen.append(spec.site)
        return tuple(seen)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "specs": [spec.to_dict() for spec in self.specs]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"a fault plan must be a JSON object, got {type(payload).__name__}"
            )
        specs = payload.get("specs", [])
        if not isinstance(specs, (list, tuple)):
            raise ConfigurationError("fault plan 'specs' must be a list")
        return cls(
            seed=int(payload.get("seed", 0)),
            specs=tuple(FaultSpec.from_dict(dict(spec)) for spec in specs),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """Parse ``REPRO_FAULTS``: inline JSON, a JSON file path, or unset.

        A malformed value raises :class:`ConfigurationError` rather than
        silently running without chaos — a chaos run that quietly became a
        happy-path run would pass for the wrong reason.
        """
        raw = os.environ.get(ENV_FAULTS)
        if raw is None or not raw.strip():
            return None
        raw = raw.strip()
        if raw.startswith("{"):
            return cls.from_json(raw)
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(
                f"{ENV_FAULTS}={raw!r} is neither inline JSON nor an existing file"
            )
        return cls.from_json(path.read_text(encoding="utf-8"))
