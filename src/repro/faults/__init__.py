"""``repro.faults`` — deterministic fault injection for chaos testing.

A production AQP system earns its keep exactly where the happy path ends:
partitions fail mid-scan, workers straggle, WAL frames tear, stored bytes
rot.  This package injects all four — deterministically, from a seeded
:class:`FaultPlan` — so the degraded-mode machinery in ``parallel``,
``serve`` and ``storage`` can be exercised and asserted on, bit-for-bit.

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`, the
  declarative description (site, rate, scope, delay), loadable from the
  ``REPRO_FAULTS`` environment variable (inline JSON or a file path);
* :mod:`repro.faults.injector` — the runtime: :func:`active` returns the
  process-wide :class:`FaultInjector` or ``None``; guarded sites cost one
  None check when chaos is off.

Sites wired through the stack:

========================  ==========================================================
``scan.partition``        a partition scan task raises :class:`~repro.errors.InjectedFault`
``scan.straggler``        a partition scan task sleeps ``delay_ms`` before running
``wal.torn_frame``        a WAL append writes a torn frame and fails (crash mid-write)
``block.bitflip``         a stored block is treated as CRC-corrupt and quarantined
========================  ==========================================================

Quickstart::

    from repro.faults import FaultPlan, FaultSpec, fault_scope

    plan = FaultPlan(seed=7, specs=(
        FaultSpec(site="scan.partition", rate=0.25),
        FaultSpec(site="scan.straggler", rate=0.1, delay_ms=50, once_per_key=True),
    ))
    with fault_scope(plan):
        result = engine.execute("SELECT AVG(value) FROM t PRECISION 0.5 CONFIDENCE 0.95")
        assert result.degraded  # answered from surviving partitions, wider CI
"""

from repro.faults.injector import (
    FaultInjector,
    active,
    clear,
    fault_scope,
    install,
    reset_env_cache,
)
from repro.faults.plan import ENV_FAULTS, SITES, FaultPlan, FaultSpec

__all__ = [
    "ENV_FAULTS",
    "SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "active",
    "clear",
    "fault_scope",
    "install",
    "reset_env_cache",
]
