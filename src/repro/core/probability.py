"""Re-weighted probability generation (paper Eq. 2).

Each sample's probability mixes its normalised leverage with the uniform
probability: ``prob_i = alpha * lev_i + (1 - alpha) / m`` where ``m`` is the
number of participating samples and ``alpha`` in (0, 1) is the leverage
degree.  Because the normalised leverages sum to one (Constraint 1), the
probabilities always sum to one as well, for every alpha.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.leverage import LeverageNormalizer
from repro.errors import EstimationError

__all__ = ["reweighted_probabilities", "leverage_based_average"]


def reweighted_probabilities(
    leverages: np.ndarray, alpha: float
) -> np.ndarray:
    """Mix normalised leverages with the uniform distribution (Eq. 2).

    Parameters
    ----------
    leverages:
        Normalised leverages of the participating samples (must sum to ~1).
    alpha:
        Leverage degree.  The paper restricts alpha to (0, 1) for the static
        formula; the iterative scheme may drive alpha slightly negative in
        the unbalanced-sampling cases (Case 4), which this function allows.
    """
    lev = np.asarray(leverages, dtype=float)
    if lev.size == 0:
        raise EstimationError("cannot build probabilities from zero samples")
    uniform = 1.0 / lev.size
    return alpha * lev + (1.0 - alpha) * uniform


def leverage_based_average(
    s_values: np.ndarray,
    l_values: np.ndarray,
    alpha: float,
    q: float = 1.0,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Explicit-sample l-estimator: ``sum(prob_i * a_i)`` over the S/L samples.

    Returns the estimate together with the per-region probability vectors.
    This is the direct transcription of Appendix A (steps 1–5) and is used by
    examples and by the property tests that confirm it matches the
    closed-form ``k * alpha + c`` of Theorem 3.
    """
    normalizer = LeverageNormalizer(s_values, l_values, q=q)
    norm_s, norm_l = normalizer.normalized()
    combined = np.concatenate([norm_s, norm_l])
    probabilities = reweighted_probabilities(combined, alpha)
    prob_s = probabilities[: norm_s.size]
    prob_l = probabilities[norm_s.size :]
    estimate = float(
        (prob_s * np.asarray(s_values, dtype=float)).sum()
        + (prob_l * np.asarray(l_values, dtype=float)).sum()
    )
    return estimate, prob_s, prob_l
