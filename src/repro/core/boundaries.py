"""Data boundaries and the five data regions (paper Section IV-A1).

The distribution is cut into five regions around the sketch estimator using
the "3-sigma rule" inspired boundaries:

====  =================================================  =====================
Code  Range                                              Role in AVG
====  =================================================  =====================
TS    (-inf, sketch0 - p2*sigma]                         discarded outlier
S     (sketch0 - p2*sigma, sketch0 - p1*sigma)           participates (low side)
N     [sketch0 - p1*sigma, sketch0 + p1*sigma]           discarded (uninformative)
L     (sketch0 + p1*sigma, sketch0 + p2*sigma)           participates (high side)
TL    [sketch0 + p2*sigma, +inf)                         discarded outlier
====  =================================================  =====================

Only S and L samples enter the leverage computation; everything else is
dropped during the sampling phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Region", "DataBoundaries"]


class Region(IntEnum):
    """The five regions of the data division criteria."""

    TOO_SMALL = 0
    SMALL = 1
    NORMAL = 2
    LARGE = 3
    TOO_LARGE = 4

    @property
    def short_name(self) -> str:
        """The paper's two-letter code (TS, S, N, L, TL)."""
        return {
            Region.TOO_SMALL: "TS",
            Region.SMALL: "S",
            Region.NORMAL: "N",
            Region.LARGE: "L",
            Region.TOO_LARGE: "TL",
        }[self]


@dataclass(frozen=True)
class DataBoundaries:
    """The four cut points separating the five regions."""

    ts_s: float  # boundary between TS and S:     sketch0 - p2*sigma
    s_n: float   # boundary between S  and N:     sketch0 - p1*sigma
    n_l: float   # boundary between N  and L:     sketch0 + p1*sigma
    l_tl: float  # boundary between L  and TL:    sketch0 + p2*sigma

    def __post_init__(self) -> None:
        cuts = (self.ts_s, self.s_n, self.n_l, self.l_tl)
        if any(cuts[i] > cuts[i + 1] for i in range(len(cuts) - 1)):
            raise ConfigurationError(f"boundaries must be non-decreasing, got {cuts}")

    # ---------------------------------------------------------- construction
    @classmethod
    def from_sketch(
        cls, sketch0: float, sigma: float, p1: float = 0.5, p2: float = 2.0
    ) -> "DataBoundaries":
        """Build boundaries around ``sketch0`` using ``p1``/``p2`` (Fig. 3)."""
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        if not 0.0 < p1 < p2:
            raise ConfigurationError(f"need 0 < p1 < p2, got p1={p1}, p2={p2}")
        return cls(
            ts_s=sketch0 - p2 * sigma,
            s_n=sketch0 - p1 * sigma,
            n_l=sketch0 + p1 * sigma,
            l_tl=sketch0 + p2 * sigma,
        )

    # -------------------------------------------------------- classification
    def classify_value(self, value: float) -> Region:
        """Region of a single value (scalar version of :meth:`classify`)."""
        if value <= self.ts_s:
            return Region.TOO_SMALL
        if value < self.s_n:
            return Region.SMALL
        if value <= self.n_l:
            return Region.NORMAL
        if value < self.l_tl:
            return Region.LARGE
        return Region.TOO_LARGE

    def classify(self, values: np.ndarray) -> np.ndarray:
        """Vectorised classification returning an array of ``Region`` codes.

        The comparisons replicate :meth:`classify_value` exactly, including
        which sides of each boundary are closed (paper Section IV-A1).
        """
        array = np.asarray(values, dtype=float)
        regions = np.full(array.shape, int(Region.NORMAL), dtype=np.int8)
        regions[array <= self.ts_s] = int(Region.TOO_SMALL)
        regions[(array > self.ts_s) & (array < self.s_n)] = int(Region.SMALL)
        regions[(array > self.n_l) & (array < self.l_tl)] = int(Region.LARGE)
        regions[array >= self.l_tl] = int(Region.TOO_LARGE)
        return regions

    def split_sl(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return the (S values, L values) of a sample in one pass."""
        array = np.asarray(values, dtype=float)
        s_mask = (array > self.ts_s) & (array < self.s_n)
        l_mask = (array > self.n_l) & (array < self.l_tl)
        return array[s_mask], array[l_mask]

    # ------------------------------------------------------------- geometry
    @property
    def center(self) -> float:
        """Mid point of the N region (equals sketch0 when built from a sketch)."""
        return (self.s_n + self.n_l) / 2.0

    @property
    def region_widths(self) -> Tuple[float, float, float]:
        """Widths of the (S, N, L) regions."""
        return (self.s_n - self.ts_s, self.n_l - self.s_n, self.l_tl - self.n_l)

    def translate(self, offset: float) -> "DataBoundaries":
        """Boundaries shifted by ``offset`` (used by the negative-data handling)."""
        return DataBoundaries(
            ts_s=self.ts_s + offset,
            s_n=self.s_n + offset,
            n_l=self.n_l + offset,
            l_tl=self.l_tl + offset,
        )
