"""Configuration of the ISLA aggregator.

Every tunable the paper introduces is a field of :class:`ISLAConfig`, with the
paper's defaults from Section VIII ("Parameters"):

=======================  =========  =================================================
Field                    Default    Paper symbol / source
=======================  =========  =================================================
``precision``            0.1        desired precision ``e``
``confidence``           0.95       confidence ``beta``
``p1`` / ``p2``          0.5 / 2.0  data boundary parameters
``step_length_factor``   0.8        ``lambda``
``convergence_rate``     0.5        ``eta`` (D halves per iteration)
``threshold``            1e-3       iteration threshold ``thr``
``relaxed_factor``       1.5        ``te`` (sketch0 uses precision ``te * e``)
``pilot_sample_size``    1000       pilot set used to estimate sigma
``balance_tolerance``    0.01       "|S| ~= |L|" band, the paper's (0.99, 1.01)
``moderate_band``        0.06       dev in (0.94, 0.97) u (1.03, 1.06) -> q' = 5
``mild_band``            0.03       inner edge of the moderate band
``q_moderate``           5.0        q' for moderate deviation
``q_severe``             10.0       q' for severe deviation
=======================  =========  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["ISLAConfig"]


@dataclass(frozen=True)
class ISLAConfig:
    """All tunables of the ISLA aggregation pipeline."""

    #: desired half-width ``e`` of the answer's confidence interval
    precision: float = 0.1
    #: confidence level ``beta`` of the answer
    confidence: float = 0.95
    #: inner data-boundary parameter ``p1`` (S/L regions start at sketch0 +- p1*sigma)
    p1: float = 0.5
    #: outer data-boundary parameter ``p2`` (S/L regions end at sketch0 +- p2*sigma)
    p2: float = 2.0
    #: step-length factor ``lambda`` in (0, 1)
    step_length_factor: float = 0.8
    #: convergence speed ``eta`` in (0, 1): D shrinks to eta*D per iteration
    convergence_rate: float = 0.5
    #: iteration threshold ``thr``: stop once |D| <= thr
    threshold: float = 1e-3
    #: relaxed-precision factor ``te`` (> 1) used when generating sketch0
    relaxed_factor: float = 1.5
    #: pilot sample size used to estimate sigma in the Pre-estimation module
    pilot_sample_size: int = 1000
    #: |S|/|L| band treated as "balanced" (Case 5 returns sketch0 directly)
    balance_tolerance: float = 0.01
    #: |dev - 1| below this (but above balance_tolerance) keeps q' = 1
    mild_band: float = 0.03
    #: |dev - 1| below this (but above mild_band) uses q' = q_moderate
    moderate_band: float = 0.06
    #: leverage allocating parameter q' for moderate sketch0 deviation
    q_moderate: float = 5.0
    #: leverage allocating parameter q' for severe sketch0 deviation
    q_severe: float = 10.0
    #: derive the step-length factor of the consistent cases (2 and 3) from
    #: Theorem 1 under the normal model (lambda* = (p1*phi(p1) - p2*phi(p2)) /
    #: (Phi(p2) - Phi(p1)), the first-order ratio of the two estimators'
    #: deviations); the fixed ``step_length_factor`` is still used for the
    #: unbalanced-sampling cases 1 and 4 and as a fallback
    adaptive_step_length: bool = True
    #: hard cap on modulation iterations (the analytic bound is log2(|D0|/thr))
    max_iterations: int = 200
    #: clamp the final block answer to sketch0's relaxed confidence interval
    #: (the safeguard discussed for extreme distributions in Section VII-B)
    clamp_to_sketch_interval: bool = False
    #: partition-parallel scan width: ``None`` keeps the legacy serial scan;
    #: an integer (>= 1) routes execution through the partition backend
    #: (:mod:`repro.parallel`) with that many shards.  Seeded results are
    #: bit-identical across parallelism levels, so this is purely a
    #: throughput knob.
    parallelism: Optional[int] = None
    #: per-shard straggler deadline (milliseconds) for partition-parallel
    #: scans: a partition task still running past it is speculatively
    #: re-executed with the same seed (bit-identical, so speculation can
    #: never change an answer).  ``None`` disables the watchdog.
    straggler_timeout_ms: Optional[float] = None
    #: random seed used when the caller does not pass a Generator
    seed: Optional[int] = None
    #: tri-state telemetry switch: True/False force spans + metrics on/off for
    #: components built from this config; None defers to the ambient setting
    #: (the ``REPRO_TELEMETRY`` environment variable or an activated scope)
    telemetry: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.precision <= 0:
            raise ConfigurationError(f"precision must be positive, got {self.precision}")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must lie in (0, 1), got {self.confidence}"
            )
        if not 0.0 < self.p1 < self.p2:
            raise ConfigurationError(
                f"boundaries must satisfy 0 < p1 < p2, got p1={self.p1}, p2={self.p2}"
            )
        if not 0.0 < self.step_length_factor < 1.0:
            raise ConfigurationError(
                f"step_length_factor must lie in (0, 1), got {self.step_length_factor}"
            )
        if not 0.0 < self.convergence_rate < 1.0:
            raise ConfigurationError(
                f"convergence_rate must lie in (0, 1), got {self.convergence_rate}"
            )
        if self.threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {self.threshold}")
        if self.relaxed_factor <= 1.0:
            raise ConfigurationError(
                f"relaxed_factor must exceed 1, got {self.relaxed_factor}"
            )
        if self.pilot_sample_size < 2:
            raise ConfigurationError(
                f"pilot_sample_size must be at least 2, got {self.pilot_sample_size}"
            )
        if not 0.0 < self.balance_tolerance < 1.0:
            raise ConfigurationError(
                f"balance_tolerance must lie in (0, 1), got {self.balance_tolerance}"
            )
        if not self.balance_tolerance <= self.mild_band <= self.moderate_band:
            raise ConfigurationError(
                "deviation bands must satisfy balance_tolerance <= mild_band <= moderate_band"
            )
        if self.q_moderate < 1.0 or self.q_severe < 1.0:
            raise ConfigurationError("q_moderate and q_severe must be at least 1")
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.parallelism is not None and self.parallelism < 1:
            raise ConfigurationError(
                f"parallelism must be None or at least 1, got {self.parallelism}"
            )
        if self.straggler_timeout_ms is not None and self.straggler_timeout_ms <= 0:
            raise ConfigurationError(
                f"straggler_timeout_ms must be None or positive, "
                f"got {self.straggler_timeout_ms}"
            )

    # ------------------------------------------------------------- utilities
    @property
    def relaxed_precision(self) -> float:
        """The relaxed precision ``te * e`` used to generate sketch0."""
        return self.relaxed_factor * self.precision

    def with_updates(self, **changes) -> "ISLAConfig":
        """Return a copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    @classmethod
    def paper_defaults(cls) -> "ISLAConfig":
        """The exact default parameterisation of Section VIII."""
        return cls()
