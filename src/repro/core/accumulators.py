"""Region moment accumulators (the paper's ``paramS`` / ``paramL``).

Algorithm 1 keeps, per region, only ``{counter, sum, squareSum, cubeSum}``;
these four numbers are everything Theorem 3 needs to build the objective
function, which is why ISLA never stores samples and is insensitive to the
sampling order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import EstimationError

__all__ = ["RegionMoments"]


@dataclass
class RegionMoments:
    """Counter, sum, square sum and cube sum of the samples in one region."""

    count: int = 0
    total: float = 0.0
    square_sum: float = 0.0
    cube_sum: float = 0.0

    # --------------------------------------------------------------- updates
    def update(self, value: float) -> None:
        """Fold one sample into the accumulator (Algorithm 1, updateParams)."""
        self.count += 1
        self.total += value
        self.square_sum += value * value
        self.cube_sum += value * value * value

    def update_many(self, values: Iterable[float]) -> None:
        """Fold a batch of samples (vectorised, same result as repeated update)."""
        array = np.asarray(values, dtype=float)
        if array.size == 0:
            return
        self.count += int(array.size)
        self.total += float(array.sum())
        self.square_sum += float((array ** 2).sum())
        self.cube_sum += float((array ** 3).sum())

    def merge(self, other: "RegionMoments") -> None:
        """Merge another accumulator (used by online and distributed modes)."""
        self.count += other.count
        self.total += other.total
        self.square_sum += other.square_sum
        self.cube_sum += other.cube_sum

    # ------------------------------------------------------------- read-outs
    @property
    def mean(self) -> float:
        """Mean of the region samples (raises on an empty region)."""
        if self.count == 0:
            raise EstimationError("region is empty; mean is undefined")
        return self.total / self.count

    @property
    def is_empty(self) -> bool:
        """True when no sample fell in this region."""
        return self.count == 0

    def copy(self) -> "RegionMoments":
        """Return an independent copy."""
        return RegionMoments(
            count=self.count,
            total=self.total,
            square_sum=self.square_sum,
            cube_sum=self.cube_sum,
        )

    # ---------------------------------------------------------- construction
    @classmethod
    def from_values(cls, values: Iterable[float]) -> "RegionMoments":
        """Build an accumulator directly from a batch of region samples."""
        moments = cls()
        moments.update_many(values)
        return moments

    def __add__(self, other: "RegionMoments") -> "RegionMoments":
        merged = self.copy()
        merged.merge(other)
        return merged
