"""Core ISLA algorithm (the paper's contribution).

The public surface mirrors the paper's three modules:

* **Pre-estimation** (:mod:`repro.core.pre_estimation`) — sampling rate from
  Eq. 1 and the sketch estimator with a relaxed precision.
* **Calculation** (:mod:`repro.core.calculation`) — per-block sampling
  (Algorithm 1) and iterative modulation (Algorithm 2), built from the data
  boundaries, leverage normalisation, the objective function of Theorem 3 and
  the modulation strategies of Section V.
* **Summarization** (:mod:`repro.core.summarization`) — size-weighted
  combination of partial answers.

:class:`~repro.core.isla.ISLAAggregator` wires the three together and is the
entry point most users need.
"""

from repro.core.config import ISLAConfig
from repro.core.boundaries import DataBoundaries, Region
from repro.core.accumulators import RegionMoments
from repro.core.leverage import LeverageNormalizer, allocate_q, theoretical_leverage_sums
from repro.core.probability import reweighted_probabilities
from repro.core.objective import ObjectiveFunction, leverage_coefficients
from repro.core.modulation import (
    IterativeModulator,
    ModulationCase,
    ModulationOutcome,
    classify_case,
    plan_step,
)
from repro.core.pre_estimation import PreEstimate, PreEstimator
from repro.core.calculation import BlockCalculator, sampling_phase, iteration_phase
from repro.core.summarization import combine_block_results
from repro.core.result import AggregateResult, BlockResult
from repro.core.isla import ISLAAggregator

__all__ = [
    "ISLAConfig",
    "DataBoundaries",
    "Region",
    "RegionMoments",
    "LeverageNormalizer",
    "allocate_q",
    "theoretical_leverage_sums",
    "reweighted_probabilities",
    "ObjectiveFunction",
    "leverage_coefficients",
    "IterativeModulator",
    "ModulationCase",
    "ModulationOutcome",
    "classify_case",
    "plan_step",
    "PreEstimate",
    "PreEstimator",
    "BlockCalculator",
    "sampling_phase",
    "iteration_phase",
    "combine_block_results",
    "AggregateResult",
    "BlockResult",
    "ISLAAggregator",
]
