"""The Summarization module (paper Section II-C).

Blocks produce partial AVG answers; the final answer weights each partial
answer by its block's share of the data:

    avg = sum_j avg_j * |B_j| / M
"""

from __future__ import annotations

from typing import Sequence

from repro.core.result import BlockResult
from repro.errors import EstimationError

__all__ = ["combine_block_results", "combine_partial_means"]


def combine_partial_means(estimates: Sequence[float], sizes: Sequence[int]) -> float:
    """Size-weighted combination of per-block means."""
    if not estimates:
        raise EstimationError("no partial answers to combine")
    if len(estimates) != len(sizes):
        raise EstimationError("estimates and sizes must have equal length")
    total = float(sum(sizes))
    if total <= 0:
        raise EstimationError("total data size must be positive")
    return float(sum(est * size for est, size in zip(estimates, sizes)) / total)


def combine_block_results(block_results: Sequence[BlockResult]) -> float:
    """Combine :class:`BlockResult` partial answers into the final AVG."""
    if not block_results:
        raise EstimationError("no block results to combine")
    estimates = [block.estimate for block in block_results]
    sizes = [block.block_size for block in block_results]
    return combine_partial_means(estimates, sizes)
