"""Deviation evaluation, modulation strategies and the iteration loop (Section V).

The iteration drives the objective ``D = µ̂ − sketch`` towards zero at a
geometric rate ``η`` per round.  Which estimator moves, in which direction and
by how much is decided once, before the loop, from two indicators:

* the sign of ``D0 = c − sketch0`` (is the un-leveraged sample mean above or
  below the sketch?), and
* the relation between |S| and |L| (is the sketch above or below µ? —
  ``|S| > |L|`` indicates ``sketch0 > µ`` and vice versa).

This yields the paper's five cases.  The step lengths are solved in closed
form from the per-round target ``D → ηD`` and the step-length factor ``λ``
that fixes the ratio between the smaller and the larger move (Section V-D).

Geometry note (documented in DESIGN.md): for symmetric data the S∪L sample
mean ``c`` falls on the *opposite* side of µ from the sketch (shifting the
window right pulls the truncated mean left), so in the two consistent cases
(2 and 3) the accurate value lies *between* the estimators — Fig. 1's first
configuration — and Theorem 1 prescribes moving them towards each other with
the l-estimator (the closer one) taking the ``λ``-scaled smaller step.  We
therefore implement Case 3 as the exact mirror image of Case 2.  Cases 1 and
4 are the paper's "unbalanced sampling" situations (the two indicators
contradict each other); they keep the paper's same-direction rule with the
l-estimator moving more, and are only selected when the |S|/|L| imbalance is
strong enough to be trusted (otherwise the sketch is returned, as in Case 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.core.config import ISLAConfig
from repro.core.objective import ObjectiveFunction
from repro.errors import ConvergenceError, EstimationError

__all__ = [
    "ModulationCase",
    "classify_case",
    "plan_step",
    "theorem1_step_ratio",
    "ModulationOutcome",
    "IterationRecord",
    "IterativeModulator",
]

#: |k| below this is treated as "the l-estimator cannot move" and the whole
#: per-round correction is applied to the sketch instead.
_K_EPSILON = 1e-12


class ModulationCase(Enum):
    """The five modulation strategies of Section V-C."""

    #: Case 1 — D0 < 0, |S| < |L| (contradictory): both increase, µ̂ more.
    UNBALANCED_INCREASE = "case1"
    #: Case 2 — D0 < 0, |S| > |L|: sketch0 > µ > c; sketch falls more, µ̂ rises slightly.
    TOWARD_EACH_OTHER_DOWN = "case2"
    #: Case 3 — D0 > 0, |S| < |L|: sketch0 < µ < c; sketch rises more, µ̂ falls slightly.
    TOWARD_EACH_OTHER_UP = "case3"
    #: Case 4 — D0 > 0, |S| > |L| (contradictory): both decrease, µ̂ more.
    UNBALANCED_DECREASE = "case4"
    #: Case 5 — |S| ≈ |L|: sketch0 already close to µ; return it directly.
    BALANCED = "case5"

    @property
    def paper_case(self) -> int:
        """The 1-based case number used in the paper."""
        return {
            ModulationCase.UNBALANCED_INCREASE: 1,
            ModulationCase.TOWARD_EACH_OTHER_DOWN: 2,
            ModulationCase.TOWARD_EACH_OTHER_UP: 3,
            ModulationCase.UNBALANCED_DECREASE: 4,
            ModulationCase.BALANCED: 5,
        }[self]

    @property
    def is_contradictory(self) -> bool:
        """True for the "unbalanced sampling" cases 1 and 4."""
        return self in (
            ModulationCase.UNBALANCED_INCREASE,
            ModulationCase.UNBALANCED_DECREASE,
        )


def classify_case(
    d0: float,
    count_s: int,
    count_l: int,
    balance_tolerance: float,
    contradiction_band: Optional[float] = None,
) -> ModulationCase:
    """Pick the modulation strategy from ``D0`` and the S/L counts.

    ``|S| ≈ |L|`` (within ``balance_tolerance`` of ratio 1) short-circuits to
    Case 5, as does a zero ``D0`` (the estimators already agree).

    ``contradiction_band`` guards the contradictory cases 1 and 4: when the
    two indicators disagree but ``|dev − 1|`` is no larger than the band, the
    imbalance is indistinguishable from sampling noise and the sketch is
    trusted instead (Case 5).  Pass ``None`` to disable the guard.
    """
    if count_s <= 0 or count_l <= 0:
        raise EstimationError("classification requires non-empty S and L regions")
    dev = count_s / count_l
    if abs(dev - 1.0) <= balance_tolerance or d0 == 0.0:
        return ModulationCase.BALANCED
    if d0 < 0.0:
        case = (
            ModulationCase.TOWARD_EACH_OTHER_DOWN
            if count_s > count_l
            else ModulationCase.UNBALANCED_INCREASE
        )
    else:
        case = (
            ModulationCase.TOWARD_EACH_OTHER_UP
            if count_s < count_l
            else ModulationCase.UNBALANCED_DECREASE
        )
    if (
        case.is_contradictory
        and contradiction_band is not None
        and abs(dev - 1.0) <= contradiction_band
    ):
        return ModulationCase.BALANCED
    return case


def plan_step(
    case: ModulationCase,
    d_current: float,
    step_length_factor: float,
    convergence_rate: float,
    lest_moves_more: bool = False,
) -> Tuple[float, float]:
    """Signed per-round changes ``(Δµ̂, Δsketch)`` for the current D.

    The changes satisfy ``D + Δµ̂ − Δsketch = η·D`` and the smaller move equals
    ``λ`` times the larger one, with directions given by the case.  Returns a
    pair of signed deltas; the caller converts ``Δµ̂`` into ``Δα`` via ``k``.

    ``lest_moves_more`` applies to the consistent cases (2 and 3) only: by
    default the sketch takes the larger step (the paper's description); when
    the l-estimator is known to be the less reliable of the two — e.g. very
    few S/L samples backing it — the roles are swapped so the answer leans on
    the sketch instead (Theorem 1 with deviations estimated from the actual
    conditions).
    """
    if case is ModulationCase.BALANCED:
        return 0.0, 0.0
    if not 0.0 < step_length_factor < 1.0:
        raise EstimationError(
            f"step_length_factor must lie in (0, 1), got {step_length_factor}"
        )
    if not 0.0 < convergence_rate < 1.0:
        raise EstimationError(
            f"convergence_rate must lie in (0, 1), got {convergence_rate}"
        )
    lam = step_length_factor
    magnitude = (1.0 - convergence_rate) * abs(d_current)
    if magnitude == 0.0:
        return 0.0, 0.0

    if case is ModulationCase.TOWARD_EACH_OTHER_DOWN:
        # D < 0: the estimators move towards each other (µ̂ up, sketch down).
        if lest_moves_more:
            delta_lest = magnitude / (1.0 + lam)
            delta_sketch = -lam * delta_lest
        else:
            delta_sketch = -magnitude / (1.0 + lam)
            delta_lest = lam * abs(delta_sketch)
    elif case is ModulationCase.TOWARD_EACH_OTHER_UP:
        # D > 0: mirror image (µ̂ down, sketch up).
        if lest_moves_more:
            delta_lest = -magnitude / (1.0 + lam)
            delta_sketch = lam * abs(delta_lest)
        else:
            delta_sketch = magnitude / (1.0 + lam)
            delta_lest = -lam * delta_sketch
    elif case is ModulationCase.UNBALANCED_INCREASE:
        # D < 0 with contradictory indicators: both rise, µ̂ by more (Case 1).
        delta_lest = magnitude / (1.0 - lam)
        delta_sketch = lam * delta_lest
    elif case is ModulationCase.UNBALANCED_DECREASE:
        # D > 0 with contradictory indicators: both fall, µ̂ by more (Case 4).
        delta_lest = -magnitude / (1.0 - lam)
        delta_sketch = lam * delta_lest
    else:  # pragma: no cover - exhaustive enum
        raise EstimationError(f"unknown modulation case {case!r}")
    return delta_lest, delta_sketch


@dataclass(frozen=True)
class IterationRecord:
    """One round of the modulation loop (kept when tracing is enabled)."""

    iteration: int
    d_value: float
    alpha: float
    sketch: float
    l_estimate: float


@dataclass(frozen=True)
class ModulationOutcome:
    """The state of the two estimators when the iteration stops."""

    alpha: float
    sketch: float
    l_estimate: float
    iterations: int
    converged: bool
    case: ModulationCase
    initial_d: float
    final_d: float
    trace: Tuple[IterationRecord, ...] = field(default_factory=tuple)

    @property
    def estimate(self) -> float:
        """The aggregation answer of this block (the final l-estimator value)."""
        return self.l_estimate


def theorem1_step_ratio(p1: float, p2: float) -> float:
    """Theorem 1's deviation ratio ``λ* = ε / (ε + ε')`` under the normal model.

    To first order in the sketch deviation, the S∪L truncated mean moves by
    ``-κ`` times the sketch deviation with ``κ = (p1·φ(p1) − p2·φ(p2)) /
    (Φ(p2) − Φ(p1))``; Theorem 1 therefore prescribes a step-length factor of
    ``κ`` for the l-estimator relative to the sketch.  The value depends only
    on the data-boundary parameters (≈ 0.24 for the paper's p1=0.5, p2=2.0).
    """
    from scipy.stats import norm

    if not 0.0 < p1 < p2:
        raise EstimationError(f"need 0 < p1 < p2, got p1={p1}, p2={p2}")
    numerator = p1 * norm.pdf(p1) - p2 * norm.pdf(p2)
    denominator = norm.cdf(p2) - norm.cdf(p1)
    if denominator <= 0.0:
        raise EstimationError("degenerate boundary parameters")
    ratio = numerator / denominator
    # Clamp into the open interval the step-length factor must live in.
    return float(min(max(ratio, 1e-3), 1.0 - 1e-3))


class IterativeModulator:
    """Runs the Phase-2 iteration (Algorithm 2, lines 5–12)."""

    def __init__(self, config: Optional[ISLAConfig] = None, keep_trace: bool = False) -> None:
        self.config = config or ISLAConfig()
        self.keep_trace = keep_trace

    def _step_plan(
        self,
        case: ModulationCase,
        lest_deviation: Optional[float],
        sketch_deviation: Optional[float],
    ) -> Tuple[float, bool]:
        """The (λ, lest_moves_more) pair used for this case.

        For the consistent cases the adaptive mode implements Theorem 1: each
        estimator's step is proportional to its expected deviation from µ.
        The sketch's expected deviation is its standard error (known from the
        relaxed confidence interval); the l-estimator's combines the geometric
        coupling ``κ`` with the sampling noise of the S∪L mean.  Whichever
        estimator is expected to be farther from µ takes the larger step, and
        λ is the ratio of the smaller to the larger deviation.
        """
        config = self.config
        if case.is_contradictory or not config.adaptive_step_length:
            return config.step_length_factor, case.is_contradictory
        if lest_deviation is None or sketch_deviation is None or sketch_deviation <= 0.0:
            return theorem1_step_ratio(config.p1, config.p2), False
        larger = max(lest_deviation, sketch_deviation)
        smaller = min(lest_deviation, sketch_deviation)
        if larger <= 0.0:
            return theorem1_step_ratio(config.p1, config.p2), False
        ratio = float(min(max(smaller / larger, 1e-3), 1.0 - 1e-3))
        return ratio, lest_deviation > sketch_deviation

    def expected_iterations(self, d0: float) -> int:
        """The analytic iteration bound ``ceil(log_{1/η}(|D0| / thr))``."""
        import math

        threshold = self.config.threshold
        if abs(d0) <= threshold:
            return 0
        ratio = abs(d0) / threshold
        return int(math.ceil(math.log(ratio) / math.log(1.0 / self.config.convergence_rate)))

    def run(
        self,
        objective: ObjectiveFunction,
        sketch0: float,
        case: Optional[ModulationCase] = None,
        count_s: Optional[int] = None,
        count_l: Optional[int] = None,
        lest_deviation: Optional[float] = None,
        sketch_deviation: Optional[float] = None,
    ) -> ModulationOutcome:
        """Iteratively modulate α and the sketch until ``|D| <= thr``.

        ``case`` may be passed explicitly; otherwise it is classified from
        ``D0`` and the provided region counts.  ``lest_deviation`` and
        ``sketch_deviation`` are optional estimates of how far each estimator
        is expected to sit from µ; when provided (and adaptive step lengths
        are enabled) they drive Theorem 1's step-length ratio.
        """
        config = self.config
        d0 = objective.initial_value(sketch0)
        if case is None:
            if count_s is None or count_l is None:
                raise EstimationError(
                    "either a ModulationCase or the S/L counts must be provided"
                )
            case = classify_case(
                d0,
                count_s,
                count_l,
                config.balance_tolerance,
                contradiction_band=config.moderate_band,
            )

        alpha = 0.0
        sketch = sketch0
        d_value = d0
        trace: List[IterationRecord] = []
        if case is ModulationCase.BALANCED:
            return ModulationOutcome(
                alpha=0.0,
                sketch=sketch0,
                l_estimate=sketch0,
                iterations=0,
                converged=True,
                case=case,
                initial_d=d0,
                final_d=d0,
                trace=tuple(trace),
            )

        iterations = 0
        step_length_factor, lest_moves_more = self._step_plan(
            case, lest_deviation, sketch_deviation
        )
        while abs(d_value) > config.threshold and iterations < config.max_iterations:
            delta_lest, delta_sketch = plan_step(
                case,
                d_value,
                step_length_factor,
                config.convergence_rate,
                lest_moves_more=lest_moves_more,
            )
            if abs(objective.k) < _K_EPSILON:
                # The l-estimator cannot move; put the whole correction on the
                # sketch so the loop still converges.
                delta_sketch = (1.0 - config.convergence_rate) * d_value
                delta_lest = 0.0
            else:
                alpha += delta_lest / objective.k
            sketch += delta_sketch
            d_value = objective.value(alpha, sketch)
            iterations += 1
            if self.keep_trace:
                trace.append(
                    IterationRecord(
                        iteration=iterations,
                        d_value=d_value,
                        alpha=alpha,
                        sketch=sketch,
                        l_estimate=objective.l_estimator(alpha),
                    )
                )

        converged = abs(d_value) <= config.threshold
        if not converged and iterations >= config.max_iterations:
            raise ConvergenceError(
                f"modulation did not converge after {iterations} iterations "
                f"(|D| = {abs(d_value):.3g} > thr = {config.threshold:.3g})"
            )
        return ModulationOutcome(
            alpha=alpha,
            sketch=sketch,
            l_estimate=objective.l_estimator(alpha),
            iterations=iterations,
            converged=converged,
            case=case,
            initial_d=d0,
            final_d=d_value,
            trace=tuple(trace),
        )
