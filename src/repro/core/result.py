"""Result objects returned by the ISLA aggregator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.stats.confidence import ConfidenceInterval

__all__ = ["BlockResult", "AggregateResult"]


@dataclass(frozen=True)
class BlockResult:
    """Partial answer and diagnostics of one block (Calculation module output)."""

    block_id: int
    estimate: float
    block_size: int
    sample_size: int
    count_s: int
    count_l: int
    case: str
    iterations: int
    alpha: float
    q: float
    deviation: float
    converged: bool
    used_fallback: bool
    fallback_reason: Optional[str] = None

    @property
    def participating_samples(self) -> int:
        """Number of samples that actually entered the computation (S + L)."""
        return self.count_s + self.count_l


@dataclass(frozen=True)
class AggregateResult:
    """The final answer of an ISLA aggregation."""

    value: float
    aggregate: str
    column: str
    table: str
    precision: float
    confidence: float
    interval: ConfidenceInterval
    sampling_rate: float
    sample_size: int
    sketch0: float
    sigma_estimate: float
    data_size: int
    block_results: Tuple[BlockResult, ...] = field(default_factory=tuple)
    method: str = "ISLA"
    elapsed_seconds: float = 0.0
    translation_offset: float = 0.0
    #: True when partitions failed and the answer was re-estimated from the
    #: survivors with a widened confidence interval (degraded mode)
    degraded: bool = False
    #: block ids of the partitions that failed (or were quarantined)
    failed_partitions: Tuple[int, ...] = ()
    #: fraction of the table's rows that actually backed this answer
    sample_fraction: float = 1.0

    # ----------------------------------------------------------- evaluation
    def error_against(self, truth: float) -> float:
        """Absolute error against a known ground truth."""
        return abs(self.value - truth)

    def relative_error_against(self, truth: float) -> float:
        """Relative error against a known ground truth."""
        if truth == 0.0:
            return float("inf") if self.value != 0.0 else 0.0
        return abs(self.value - truth) / abs(truth)

    def satisfies_precision(self, truth: float) -> bool:
        """True when the answer is within ``precision`` of the ground truth."""
        return self.error_against(truth) <= self.precision

    # ------------------------------------------------------------ reporting
    @property
    def participating_samples(self) -> int:
        """Total S+L samples across blocks (what the computation actually used)."""
        return sum(block.participating_samples for block in self.block_results)

    @property
    def fallback_blocks(self) -> int:
        """How many blocks returned sketch0 instead of iterating."""
        return sum(1 for block in self.block_results if block.used_fallback)

    def to_dict(self) -> Dict[str, Any]:
        """A flat dictionary used by the experiment harness and examples."""
        return {
            "value": self.value,
            "aggregate": self.aggregate,
            "method": self.method,
            "table": self.table,
            "column": self.column,
            "precision": self.precision,
            "confidence": self.confidence,
            "interval_low": self.interval.low,
            "interval_high": self.interval.high,
            "sampling_rate": self.sampling_rate,
            "sample_size": self.sample_size,
            "participating_samples": self.participating_samples,
            "sketch0": self.sketch0,
            "sigma_estimate": self.sigma_estimate,
            "data_size": self.data_size,
            "blocks": len(self.block_results),
            "fallback_blocks": self.fallback_blocks,
            "elapsed_seconds": self.elapsed_seconds,
            "degraded": self.degraded,
            "failed_partitions": list(self.failed_partitions),
            "sample_fraction": self.sample_fraction,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.aggregate.upper()}({self.column}) ~= {self.value:.6g} "
            f"(+-{self.precision:g} at {self.confidence:.0%}, "
            f"{self.sample_size} samples over {len(self.block_results)} blocks)"
        )
