"""Leverage scores, the allocating parameter ``q`` and leverage normalisation.

Section IV-A of the paper:

* every S/L sample gets a *raw* leverage from its deviation factor
  ``h_i = a_i^2 / sum(a_j^2)`` — S samples use ``1 - h_i`` (closer to the
  middle axis from below gets *less* weight), L samples use ``h_i``;
* Constraint 1: leverages sum to 1 overall;
* Constraint 2: the per-region leverage mass is proportional to the region's
  sample count, tempered by the allocating parameter ``q`` when the sketch
  deviates (``levSum_S / levSum_L = q * u / v``);
* each raw leverage is divided by its region's normalisation factor ``fac``
  so the two constraints hold.

The normalised leverages are what Eq. 2 mixes with the uniform probability.
The :class:`LeverageNormalizer` works on explicit sample arrays and exists
mainly for validation and for the worked examples; the production path goes
through the closed-form coefficients of :mod:`repro.core.objective`, which
must (and, by the property tests, does) agree with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.config import ISLAConfig
from repro.errors import EstimationError

__all__ = [
    "allocate_q",
    "deviation_degree",
    "theoretical_leverage_sums",
    "raw_leverages",
    "LeverageNormalizer",
]


def deviation_degree(count_s: int, count_l: int) -> float:
    """The deviation degree ``dev = |S| / |L|`` (paper Section IV-A4)."""
    if count_l <= 0:
        raise EstimationError("deviation degree undefined: the L region is empty")
    return count_s / count_l


def allocate_q(count_s: int, count_l: int, config: ISLAConfig) -> float:
    """The leverage allocating parameter ``q`` for the observed |S|, |L|.

    Following Section IV-A4 and the experiment defaults of Section VIII:

    * ``dev`` within ``1 +- mild_band``            -> q' = 1 (no correction)
    * ``dev`` within ``1 +- moderate_band``        -> q' = q_moderate (5)
    * ``dev`` outside the moderate band            -> q' = q_severe (10)

    and the correction shrinks the side with *more* samples:
    ``q = 1/q'`` when |S| > |L|, else ``q = q'``.
    """
    dev = deviation_degree(count_s, count_l)
    distance = abs(dev - 1.0)
    if distance <= config.mild_band:
        q_prime = 1.0
    elif distance <= config.moderate_band:
        q_prime = config.q_moderate
    else:
        q_prime = config.q_severe
    if q_prime == 1.0:
        return 1.0
    return 1.0 / q_prime if count_s > count_l else q_prime


def theoretical_leverage_sums(count_s: int, count_l: int, q: float) -> Tuple[float, float]:
    """Target leverage mass of the S and L regions under Constraints 1 and 2.

    ``levSum_S / levSum_L = q * u / v`` and ``levSum_S + levSum_L = 1`` give
    ``levSum_S = q*u / (q*u + v)`` and ``levSum_L = v / (q*u + v)``.
    """
    if count_s <= 0 or count_l <= 0:
        raise EstimationError("both regions must be non-empty to allocate leverages")
    if q <= 0:
        raise EstimationError(f"q must be positive, got {q}")
    denom = q * count_s + count_l
    return q * count_s / denom, count_l / denom


def raw_leverages(s_values: np.ndarray, l_values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Raw (un-normalised) leverages of the S and L samples.

    With ``T = sum(x^2) + sum(y^2)``: S sample ``x`` gets ``1 - x^2/T``,
    L sample ``y`` gets ``y^2/T`` (Appendix A, step 1).
    """
    s_array = np.asarray(s_values, dtype=float)
    l_array = np.asarray(l_values, dtype=float)
    total_square = float((s_array ** 2).sum() + (l_array ** 2).sum())
    if total_square <= 0.0:
        raise EstimationError("cannot compute leverages: all sample values are zero")
    return 1.0 - s_array ** 2 / total_square, l_array ** 2 / total_square


@dataclass(frozen=True)
class LeverageNormalizer:
    """Explicit-sample leverage normalisation (Appendix A, steps 1–3)."""

    s_values: np.ndarray
    l_values: np.ndarray
    q: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "s_values", np.asarray(self.s_values, dtype=float))
        object.__setattr__(self, "l_values", np.asarray(self.l_values, dtype=float))
        if self.s_values.size == 0 or self.l_values.size == 0:
            raise EstimationError("both S and L must contain at least one sample")
        if self.q <= 0:
            raise EstimationError(f"q must be positive, got {self.q}")

    # ------------------------------------------------------------ step 1 & 2
    @property
    def total_square(self) -> float:
        """``T = sum(x^2) + sum(y^2)``."""
        return float((self.s_values ** 2).sum() + (self.l_values ** 2).sum())

    def raw(self) -> Tuple[np.ndarray, np.ndarray]:
        """Raw leverages of the S and L samples."""
        return raw_leverages(self.s_values, self.l_values)

    def normalization_factors(self) -> Tuple[float, float]:
        """The factors ``fac_x`` and ``fac_y`` of Appendix A, step 2.

        Each factor is the region's raw leverage mass divided by its
        theoretical (target) mass.
        """
        raw_s, raw_l = self.raw()
        target_s, target_l = theoretical_leverage_sums(
            int(self.s_values.size), int(self.l_values.size), self.q
        )
        return float(raw_s.sum()) / target_s, float(raw_l.sum()) / target_l

    # ---------------------------------------------------------------- step 3
    def normalized(self) -> Tuple[np.ndarray, np.ndarray]:
        """Normalised leverages (their grand total is exactly 1)."""
        raw_s, raw_l = self.raw()
        fac_s, fac_l = self.normalization_factors()
        if fac_s == 0.0 or fac_l == 0.0:
            raise EstimationError("degenerate leverage normalisation factor of zero")
        return raw_s / fac_s, raw_l / fac_l

    def leverage_sums(self) -> Tuple[float, float]:
        """Normalised leverage mass per region (should equal the targets)."""
        norm_s, norm_l = self.normalized()
        return float(norm_s.sum()), float(norm_l.sum())
