"""The Pre-estimation module (paper Section III).

Before any block does real work, the system needs two global quantities:

* the sampling rate ``r`` that satisfies the user's precision/confidence
  target (Eq. 1), which requires a rough estimate of the population standard
  deviation ``sigma``; and
* the sketch estimator ``sketch0`` — a cheap overall picture of the answer
  computed with the *relaxed* precision ``te * e`` — which later defines the
  data boundaries and acts as one of the two estimators in the iteration.

Both are computed from small uniform pilot samples drawn proportionally to
block sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.core.config import ISLAConfig
from repro.errors import EstimationError
from repro.stats.confidence import required_sample_size, required_sampling_rate
from repro.storage.blockstore import BlockStore

__all__ = ["PreEstimate", "PreEstimator"]


@dataclass(frozen=True)
class PreEstimate:
    """Everything the Calculation module needs from pre-estimation."""

    #: estimated population standard deviation (from the pilot sample)
    sigma: float
    #: the initial sketch estimator value
    sketch0: float
    #: sampling rate ``r`` each block should use
    sampling_rate: float
    #: sample size that backed the sketch estimator
    sketch_sample_size: int
    #: pilot sample size used for the sigma estimate
    pilot_sample_size: int
    #: total data size ``M``
    data_size: int
    #: the relaxed precision ``te * e`` behind sketch0's confidence interval
    relaxed_precision: float

    @property
    def required_sample_size(self) -> int:
        """The total sample size ``m = r * M`` the calculation phase will draw."""
        return max(1, int(round(self.sampling_rate * self.data_size)))


class PreEstimator:
    """Computes :class:`PreEstimate` from a block store."""

    def __init__(self, config: Optional[ISLAConfig] = None) -> None:
        self.config = config or ISLAConfig()

    def estimate(
        self,
        store: BlockStore,
        column: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> PreEstimate:
        """Run pre-estimation over ``store``.

        Raises
        ------
        EstimationError
            If the store is empty or the pilot sample degenerates.
        """
        config = self.config
        column = store.validate_column(column)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        data_size = store.total_rows
        if data_size <= 0:
            raise EstimationError("cannot pre-estimate an empty store")

        with obs.span("isla.pre_estimate", table=store.name, column=column) as sp:
            # --- sigma from a small pilot sample ---------------------------
            pilot_size = min(config.pilot_sample_size, data_size)
            pilot = store.pilot_sample(column, pilot_size, generator)
            sigma = float(pilot.std())

            # --- sampling rate for the main computation (Eq. 1) ------------
            if sigma == 0.0:
                # Degenerate column (a constant): one sample per block suffices.
                sampling_rate = min(1.0, store.block_count / data_size)
            else:
                sampling_rate = required_sampling_rate(
                    sigma, config.precision, config.confidence, data_size
                )

            # --- sketch estimator with the relaxed precision ---------------
            relaxed_precision = config.relaxed_precision
            if sigma == 0.0:
                sketch_sample_size = min(data_size, max(store.block_count, 1))
            else:
                sketch_sample_size = min(
                    data_size,
                    required_sample_size(sigma, relaxed_precision, config.confidence),
                )
            sketch_sample = store.pilot_sample(
                column, max(1, sketch_sample_size), generator
            )
            sketch0 = float(sketch_sample.mean())
            sp.set_tag("pilot_rows", int(pilot.size))
            sp.set_tag("sketch_rows", int(sketch_sample.size))
            sp.set_tag("sampling_rate", sampling_rate)

        return PreEstimate(
            sigma=sigma,
            sketch0=sketch0,
            sampling_rate=sampling_rate,
            sketch_sample_size=int(sketch_sample.size),
            pilot_sample_size=int(pilot.size),
            data_size=data_size,
            relaxed_precision=relaxed_precision,
        )
