"""The ISLA aggregator facade: Pre-estimation → Calculation → Summarization.

:class:`ISLAAggregator` is the main entry point of the library::

    from repro import ISLAAggregator, ISLAConfig, BlockStore

    store = BlockStore.from_array("sensor", values, block_count=10)
    result = ISLAAggregator(ISLAConfig(precision=0.1)).aggregate_avg(store)
    print(result.value, result.interval)

The aggregator never materialises samples: each block contributes only its
``paramS`` / ``paramL`` power sums, which also makes the online-aggregation
extension (Section VII-A) a natural continuation of the same state.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.core.calculation import BlockCalculator
from repro.core.boundaries import DataBoundaries
from repro.core.config import ISLAConfig
from repro.core.pre_estimation import PreEstimate, PreEstimator
from repro.core.result import AggregateResult, BlockResult
from repro.core.summarization import combine_block_results
from repro.errors import EmptyDataError
from repro.stats.confidence import ConfidenceInterval
from repro.storage.blockstore import BlockStore

__all__ = ["ISLAAggregator"]


class ISLAAggregator:
    """Leverage-based approximate AVG/SUM aggregation over a block store."""

    method = "ISLA"

    def __init__(
        self,
        config: Optional[ISLAConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or ISLAConfig()
        # An explicit seed argument overrides the config seed for convenience.
        self._seed = seed if seed is not None else self.config.seed
        self._telemetry: Optional[obs.Telemetry] = None

    @property
    def telemetry(self) -> Optional[obs.Telemetry]:
        """The aggregator-owned telemetry created by a forced config toggle."""
        return self._telemetry

    def _telemetry_scope(self):
        """Honour a forced ``config.telemetry`` toggle.

        ``None`` defers to the ambient telemetry.  When the toggle already
        matches the ambient switch, spans keep flowing to the ambient sink
        (e.g. the engine's or an EXPLAIN ANALYZE capture); otherwise an
        aggregator-owned instance with the forced switch is activated.
        """
        forced = self.config.telemetry
        if forced is None or obs.active_telemetry().enabled == forced:
            return nullcontext()
        if self._telemetry is None or self._telemetry.enabled != forced:
            self._telemetry = obs.Telemetry(enabled=forced)
        return self._telemetry.activate()

    # ------------------------------------------------------------------ AVG
    def aggregate_avg(
        self,
        store: BlockStore,
        column: Optional[str] = None,
        *,
        rate: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        pre_estimate: Optional[PreEstimate] = None,
    ) -> AggregateResult:
        """Approximate ``AVG(column)`` over ``store``.

        Parameters
        ----------
        store:
            The partitioned table.
        column:
            Column to aggregate; defaults to the store's default column.
        rate:
            Optional override of the sampling rate (the experiments use this
            to give ISLA one third of the baselines' budget).  When omitted
            the rate comes from Eq. 1 via pre-estimation.
        rng:
            Optional random generator (a fresh seeded generator is created
            otherwise).
        pre_estimate:
            Re-use an existing pre-estimate (the online extension passes the
            one from the previous round).
        """
        column = store.validate_column(column)
        if store.total_rows == 0:
            raise EmptyDataError(f"store {store.name!r} has no rows")
        generator = rng if rng is not None else np.random.default_rng(self._seed)

        with self._telemetry_scope(), obs.stopwatch(
            "isla.aggregate", table=store.name, column=column, method=self.method
        ) as watch:
            estimate = pre_estimate or PreEstimator(self.config).estimate(
                store, column, generator
            )
            sampling_rate = rate if rate is not None else estimate.sampling_rate

            # Negative data are handled by the translation trick of footnote 1:
            # shift the boundaries and samples into positive territory,
            # aggregate, then shift the answer back.
            offset = self._translation_offset(estimate)
            boundaries = DataBoundaries.from_sketch(
                estimate.sketch0 + offset,
                estimate.sigma,
                p1=self.config.p1,
                p2=self.config.p2,
            )

            block_results = self._run_blocks(
                store,
                column,
                sampling_rate,
                boundaries,
                estimate,
                offset,
                generator,
            )
            combined = combine_block_results(block_results) - offset
            watch.set_tag("sampling_rate", sampling_rate)
            watch.set_tag("blocks", len(block_results))
        elapsed = watch.elapsed_seconds

        interval = ConfidenceInterval(
            center=combined,
            radius=self.config.precision,
            confidence=self.config.confidence,
        )
        return AggregateResult(
            value=combined,
            aggregate="avg",
            column=column,
            table=store.name,
            precision=self.config.precision,
            confidence=self.config.confidence,
            interval=interval,
            sampling_rate=sampling_rate,
            sample_size=sum(block.sample_size for block in block_results),
            sketch0=estimate.sketch0,
            sigma_estimate=estimate.sigma,
            data_size=store.total_rows,
            block_results=tuple(block_results),
            method=self.method,
            elapsed_seconds=elapsed,
            translation_offset=offset,
        )

    # ------------------------------------------------------------------ SUM
    def aggregate_sum(
        self,
        store: BlockStore,
        column: Optional[str] = None,
        *,
        rate: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> AggregateResult:
        """Approximate ``SUM(column)``: the AVG answer multiplied by ``M``."""
        avg_result = self.aggregate_avg(store, column, rate=rate, rng=rng)
        data_size = store.total_rows
        interval = ConfidenceInterval(
            center=avg_result.value * data_size,
            radius=avg_result.precision * data_size,
            confidence=avg_result.confidence,
        )
        return AggregateResult(
            value=avg_result.value * data_size,
            aggregate="sum",
            column=avg_result.column,
            table=avg_result.table,
            precision=avg_result.precision * data_size,
            confidence=avg_result.confidence,
            interval=interval,
            sampling_rate=avg_result.sampling_rate,
            sample_size=avg_result.sample_size,
            sketch0=avg_result.sketch0,
            sigma_estimate=avg_result.sigma_estimate,
            data_size=data_size,
            block_results=avg_result.block_results,
            method=self.method,
            elapsed_seconds=avg_result.elapsed_seconds,
            translation_offset=avg_result.translation_offset,
            degraded=avg_result.degraded,
            failed_partitions=avg_result.failed_partitions,
            sample_fraction=avg_result.sample_fraction,
        )

    # ------------------------------------------------------------- internals
    def _translation_offset(self, estimate: PreEstimate) -> float:
        """Shift applied so the working values are positive (footnote 1).

        The shift is derived from the pre-estimate: if the bulk of the
        distribution (sketch0 - p2*sigma, with a one-sigma margin) could dip
        below zero, everything is translated up by that amount.
        """
        lower_reach = estimate.sketch0 - (self.config.p2 + 1.0) * estimate.sigma
        if lower_reach >= 0.0:
            return 0.0
        return -lower_reach

    def _run_blocks(
        self,
        store: BlockStore,
        column: str,
        sampling_rate: float,
        boundaries: DataBoundaries,
        estimate: PreEstimate,
        offset: float,
        rng: np.random.Generator,
    ) -> Sequence[BlockResult]:
        calculator = BlockCalculator(self.config)
        sketch_shifted = estimate.sketch0 + offset
        results = []
        for block in store.blocks:
            if offset != 0.0:
                block = _shifted_block(block, column, offset)
            with obs.span("isla.block", block=block.block_id) as sp:
                result = calculator.run(
                    block,
                    column,
                    sampling_rate,
                    boundaries,
                    sketch_shifted,
                    rng,
                    sketch_interval_radius=estimate.relaxed_precision,
                )
                sp.set_tag("sample_size", result.sample_size)
                sp.set_tag("iterations", result.iterations)
            results.append(result)
        return results


def _shifted_block(block, column, offset):
    """Return a lightweight copy of ``block`` with ``column`` shifted by ``offset``."""
    from repro.storage.block import Block

    shifted = dict(block.columns)
    shifted[column] = block.column(column) + offset
    return Block(block_id=block.block_id, columns=shifted)
