"""The objective function ``D = kα + c − sketch`` (paper Theorem 3).

Theorem 3 shows that the l-estimator is an affine function of the leverage
degree, ``µ̂ = f(α) = kα + c``, whose coefficients depend only on the region
moments (count, sum, square sum, cube sum of the S and L samples) and the
allocating parameter ``q``:

* ``c = (Σx + Σy) / (u + v)`` — the plain mean of the participating samples
  (the value of the l-estimator at α = 0);
* ``k = (T·Σx − Σx³) / ((1 + v/(q·u)) · (u·T − Σx²))
       + v·Σy³ / ((q·u + v) · Σy²) − c``  with ``T = Σx² + Σy²``.

Note: the paper's appendix prints ``c = (u+v)/(Σx+Σy)``; the main-text
statement of Theorem 3 (and dimensional analysis) give the reciprocal used
here.  The property tests confirm the closed form matches the explicit
per-sample computation of Appendix A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.accumulators import RegionMoments
from repro.errors import EstimationError

__all__ = ["leverage_coefficients", "ObjectiveFunction"]


def leverage_coefficients(
    param_s: RegionMoments, param_l: RegionMoments, q: float = 1.0
) -> Tuple[float, float]:
    """Compute ``(k, c)`` of Theorem 3 from the region moments.

    Raises
    ------
    EstimationError
        If either region is empty, ``q`` is not positive, or a denominator
        degenerates (all participating values equal to zero).
    """
    if param_s.is_empty or param_l.is_empty:
        raise EstimationError(
            "Theorem 3 requires at least one S and one L sample "
            f"(got |S|={param_s.count}, |L|={param_l.count})"
        )
    if q <= 0.0:
        raise EstimationError(f"q must be positive, got {q}")

    u = float(param_s.count)
    v = float(param_l.count)
    sum_x, sq_x, cube_x = param_s.total, param_s.square_sum, param_s.cube_sum
    sum_y, sq_y, cube_y = param_l.total, param_l.square_sum, param_l.cube_sum
    total_square = sq_x + sq_y

    if total_square <= 0.0:
        raise EstimationError("all participating sample values are zero")
    if sq_y <= 0.0:
        raise EstimationError("the L region has zero square sum")

    c = (sum_x + sum_y) / (u + v)

    s_denominator = (1.0 + v / (q * u)) * (u * total_square - sq_x)
    if s_denominator == 0.0:
        raise EstimationError("degenerate S-term denominator in Theorem 3")
    s_term = (total_square * sum_x - cube_x) / s_denominator
    l_term = v * cube_y / ((q * u + v) * sq_y)

    k = s_term + l_term - c
    return k, c


@dataclass(frozen=True)
class ObjectiveFunction:
    """``D(α, sketch) = kα + c − sketch`` with convenience evaluators."""

    k: float
    c: float

    @classmethod
    def from_moments(
        cls, param_s: RegionMoments, param_l: RegionMoments, q: float = 1.0
    ) -> "ObjectiveFunction":
        """Build the objective from region moments via Theorem 3."""
        k, c = leverage_coefficients(param_s, param_l, q)
        return cls(k=k, c=c)

    def l_estimator(self, alpha: float) -> float:
        """Value of the leverage-based estimator ``µ̂ = kα + c``."""
        return self.k * alpha + self.c

    def value(self, alpha: float, sketch: float) -> float:
        """Objective value ``D = µ̂ − sketch``."""
        return self.l_estimator(alpha) - sketch

    def initial_value(self, sketch0: float) -> float:
        """``D0 = c − sketch0`` (α starts at zero)."""
        return self.c - sketch0

    def alpha_for_target(self, target: float) -> float:
        """Solve ``kα + c = target`` for α (raises when k is ~0)."""
        if abs(self.k) < 1e-15:
            raise EstimationError("k is zero; the l-estimator cannot be modulated")
        return (target - self.c) / self.k
