"""The Calculation module: Algorithm 1 (sampling) and Algorithm 2 (iteration).

Each block runs two phases:

1. **Sampling phase** — draw ``m = r * |B_j|`` uniform samples, classify each
   against the data boundaries, and fold S/L samples into the two region
   accumulators.  Samples outside S and L are dropped immediately; no sample
   is ever stored.
2. **Iteration phase** — if |S| and |L| are approximately balanced, return
   ``sketch0``; otherwise build the objective function from the accumulators
   (Theorem 3), pick the modulation strategy, and iterate until ``|D| <= thr``.
   The block's partial answer is the final value of the l-estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.core.accumulators import RegionMoments
from repro.core.boundaries import DataBoundaries
from repro.core.config import ISLAConfig
from repro.core.leverage import allocate_q, deviation_degree
from repro.core.modulation import (
    IterativeModulator,
    ModulationCase,
    classify_case,
)
from repro.core.objective import ObjectiveFunction
from repro.core.result import BlockResult
from repro.errors import EstimationError
from repro.storage.block import Block

__all__ = ["sampling_phase", "iteration_phase", "BlockCalculator"]


def sampling_phase(
    block: Block,
    column: str,
    rate: float,
    boundaries: DataBoundaries,
    rng: np.random.Generator,
) -> Tuple[RegionMoments, RegionMoments, int]:
    """Algorithm 1: sample one block and accumulate the S/L region moments.

    Returns ``(paramS, paramL, sample_size)``.  The implementation is
    vectorised (classification and the power sums are computed with numpy)
    but is observationally identical to the per-row pseudo code.
    """
    sample_size = int(round(rate * block.size))
    param_s = RegionMoments()
    param_l = RegionMoments()
    if sample_size <= 0 or block.size == 0:
        return param_s, param_l, 0
    with obs.span("sample.draw", block=block.block_id) as sp:
        sample = block.sample_column(column, sample_size, rng)
        s_values, l_values = boundaries.split_sl(sample)
        param_s.update_many(s_values)
        param_l.update_many(l_values)
        sp.set_tag("rows", sample_size)
        sp.set_tag("count_s", param_s.count)
        sp.set_tag("count_l", param_l.count)
    obs.counter("sample.rows", sample_size)
    return param_s, param_l, sample_size


@dataclass(frozen=True)
class IterationOutput:
    """Raw output of the iteration phase before being wrapped in a BlockResult."""

    estimate: float
    case: ModulationCase
    iterations: int
    alpha: float
    q: float
    deviation: float
    converged: bool
    used_fallback: bool
    fallback_reason: Optional[str]


def iteration_phase(
    param_s: RegionMoments,
    param_l: RegionMoments,
    sketch0: float,
    config: ISLAConfig,
    sketch_interval_radius: Optional[float] = None,
) -> IterationOutput:
    """Algorithm 2: decide the strategy and iterate to the block's answer.

    ``sketch_interval_radius`` is the half-width of sketch0's relaxed
    confidence interval; when ``config.clamp_to_sketch_interval`` is set the
    final answer is clipped into ``sketch0 ± radius`` (the safeguard for
    extreme distributions discussed in Section VII-B).
    """
    with obs.span("isla.iteration") as sp:
        output = _iteration_phase(
            param_s, param_l, sketch0, config, sketch_interval_radius
        )
        if sp.is_recording:
            sp.set_tag("case", output.case.value)
            sp.set_tag("iterations", output.iterations)
            sp.set_tag("converged", output.converged)
            if output.used_fallback:
                sp.set_tag("fallback", output.fallback_reason)
            obs.counter("isla.iterations", output.iterations)
    return output


def _iteration_phase(
    param_s: RegionMoments,
    param_l: RegionMoments,
    sketch0: float,
    config: ISLAConfig,
    sketch_interval_radius: Optional[float] = None,
) -> IterationOutput:
    # Fallbacks: a region with no samples cannot support Theorem 3; the sketch
    # (which carries its own relaxed precision guarantee) is the answer.
    if param_s.is_empty or param_l.is_empty:
        reason = "empty_S_region" if param_s.is_empty else "empty_L_region"
        return IterationOutput(
            estimate=sketch0,
            case=ModulationCase.BALANCED,
            iterations=0,
            alpha=0.0,
            q=1.0,
            deviation=float("nan"),
            converged=True,
            used_fallback=True,
            fallback_reason=reason,
        )

    deviation = deviation_degree(param_s.count, param_l.count)
    if abs(deviation - 1.0) <= config.balance_tolerance:
        # Case 5: sketch0 already splits S and L evenly, so it is close to µ.
        return IterationOutput(
            estimate=sketch0,
            case=ModulationCase.BALANCED,
            iterations=0,
            alpha=0.0,
            q=1.0,
            deviation=deviation,
            converged=True,
            used_fallback=False,
            fallback_reason=None,
        )

    with obs.span("leverage.compute") as lev:
        q = allocate_q(param_s.count, param_l.count, config)
        lev.set_tag("q", q)
        lev.set_tag("deviation", deviation)
    try:
        objective = ObjectiveFunction.from_moments(param_s, param_l, q)
    except EstimationError:
        return IterationOutput(
            estimate=sketch0,
            case=ModulationCase.BALANCED,
            iterations=0,
            alpha=0.0,
            q=q,
            deviation=deviation,
            converged=True,
            used_fallback=True,
            fallback_reason="degenerate_objective",
        )

    d0 = objective.initial_value(sketch0)
    case = classify_case(
        d0,
        param_s.count,
        param_l.count,
        config.balance_tolerance,
        contradiction_band=config.moderate_band,
    )
    lest_deviation, sketch_deviation = _expected_deviations(
        param_s, param_l, objective.c, config, sketch_interval_radius
    )
    modulator = IterativeModulator(config)
    outcome = modulator.run(
        objective,
        sketch0,
        case=case,
        lest_deviation=lest_deviation,
        sketch_deviation=sketch_deviation,
    )

    estimate = outcome.l_estimate
    if config.clamp_to_sketch_interval and sketch_interval_radius is not None:
        low = sketch0 - sketch_interval_radius
        high = sketch0 + sketch_interval_radius
        estimate = min(max(estimate, low), high)

    return IterationOutput(
        estimate=estimate,
        case=case,
        iterations=outcome.iterations,
        alpha=outcome.alpha,
        q=q,
        deviation=deviation,
        converged=outcome.converged,
        used_fallback=False,
        fallback_reason=None,
    )


def _expected_deviations(
    param_s: RegionMoments,
    param_l: RegionMoments,
    c: float,
    config: ISLAConfig,
    sketch_interval_radius: Optional[float],
) -> Tuple[Optional[float], Optional[float]]:
    """Expected |µ̂ − µ| and |sketch − µ| used for Theorem 1's step ratio.

    The sketch's expected deviation is its standard error, recovered from the
    relaxed confidence-interval radius.  The l-estimator's combines the
    first-order geometric coupling (a sketch deviation of δ shifts the S∪L
    truncated mean by ``κ·δ``) with the sampling noise of the S∪L mean.
    Returns ``(None, None)`` when the sketch radius is unknown, in which case
    the modulator falls back to the purely geometric ratio.
    """
    if sketch_interval_radius is None or sketch_interval_radius <= 0.0:
        return None, None
    from math import sqrt

    from repro.core.modulation import theorem1_step_ratio
    from repro.stats.confidence import normal_quantile

    sketch_std = sketch_interval_radius / normal_quantile(config.confidence)
    count = param_s.count + param_l.count
    if count <= 0:
        return None, None
    second_moment = (param_s.square_sum + param_l.square_sum) / count
    variance = max(0.0, second_moment - c * c)
    c_std = sqrt(variance / count)
    kappa = theorem1_step_ratio(config.p1, config.p2)
    lest_deviation = sqrt((kappa * sketch_std) ** 2 + c_std ** 2)
    return lest_deviation, sketch_std


class BlockCalculator:
    """Convenience wrapper running both phases over one block."""

    def __init__(self, config: Optional[ISLAConfig] = None) -> None:
        self.config = config or ISLAConfig()

    def run(
        self,
        block: Block,
        column: str,
        rate: float,
        boundaries: DataBoundaries,
        sketch0: float,
        rng: np.random.Generator,
        sketch_interval_radius: Optional[float] = None,
    ) -> BlockResult:
        """Run Algorithm 1 then Algorithm 2 on one block."""
        param_s, param_l, sample_size = sampling_phase(
            block, column, rate, boundaries, rng
        )
        output = iteration_phase(
            param_s,
            param_l,
            sketch0,
            self.config,
            sketch_interval_radius=sketch_interval_radius,
        )
        return BlockResult(
            block_id=block.block_id,
            estimate=output.estimate,
            block_size=block.size,
            sample_size=sample_size,
            count_s=param_s.count,
            count_l=param_l.count,
            case=output.case.value,
            iterations=output.iterations,
            alpha=output.alpha,
            q=output.q,
            deviation=output.deviation,
            converged=output.converged,
            used_fallback=output.used_fallback,
            fallback_reason=output.fallback_reason,
        )
