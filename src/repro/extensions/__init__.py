"""Extensions of the core scheme (paper Section VII).

* :mod:`repro.extensions.online` — progressive (online) aggregation that
  keeps refining the answer using the stored region moments (VII-A).
* :mod:`repro.extensions.noniid` — per-block boundaries and variance-weighted
  sampling rates for non-i.i.d. blocks (VII-C).
* :mod:`repro.extensions.extreme` — leverage-guided MIN/MAX aggregation
  (VII-D, sketched in the paper as work in progress).
* :mod:`repro.extensions.distributed` — thread-parallel execution of the
  Calculation module, mirroring the distributed deployment of VII-E.
* :mod:`repro.extensions.time_constraint` — execute within a wall-clock
  budget by sizing the sample from a calibration run (VII-F).
"""

from repro.extensions.online import OnlineAggregator, OnlineState
from repro.extensions.noniid import NonIIDAggregator
from repro.extensions.extreme import ExtremeValueAggregator, ExtremeResult
from repro.extensions.distributed import ParallelISLAAggregator
from repro.extensions.time_constraint import TimeConstrainedAggregator

__all__ = [
    "OnlineAggregator",
    "OnlineState",
    "NonIIDAggregator",
    "ExtremeValueAggregator",
    "ExtremeResult",
    "ParallelISLAAggregator",
    "TimeConstrainedAggregator",
]
