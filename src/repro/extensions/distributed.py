"""Thread-parallel execution of the Calculation module — paper Section VII-E.

The paper's deployment story is "compute partial answers on each machine,
then let a coordinator combine them".  Inside one process the same structure
maps onto a thread pool: every block's sampling + iteration runs as an
independent task (the per-block state is completely self-contained), and the
Summarization step runs on the caller's thread.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import numpy as np

from repro import obs
from repro.core.boundaries import DataBoundaries
from repro.core.calculation import BlockCalculator
from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.core.pre_estimation import PreEstimator
from repro.core.result import AggregateResult, BlockResult
from repro.core.summarization import combine_block_results
from repro.errors import EmptyDataError
from repro.stats.confidence import ConfidenceInterval
from repro.storage.blockstore import BlockStore

__all__ = ["ParallelISLAAggregator"]


class ParallelISLAAggregator(ISLAAggregator):
    """ISLA aggregation where blocks are processed by a thread pool."""

    method = "ISLA-parallel"

    def __init__(
        self,
        config: Optional[ISLAConfig] = None,
        max_workers: int = 4,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(config, seed=seed)
        if max_workers < 1:
            raise EmptyDataError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = int(max_workers)

    def aggregate_avg(
        self,
        store: BlockStore,
        column: Optional[str] = None,
        *,
        rate: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        pre_estimate=None,
    ) -> AggregateResult:
        """Parallel version of :meth:`ISLAAggregator.aggregate_avg`."""
        column = store.validate_column(column)
        if store.total_rows == 0:
            raise EmptyDataError(f"store {store.name!r} has no rows")
        seed_source = np.random.SeedSequence(
            self._seed if self._seed is not None else None
        )
        with self._telemetry_scope(), obs.stopwatch(
            "isla.parallel",
            table=store.name,
            column=column,
            workers=self.max_workers,
        ) as watch:
            pre_rng = np.random.default_rng(seed_source.spawn(1)[0])
            estimate = pre_estimate or PreEstimator(self.config).estimate(
                store, column, pre_rng
            )
            sampling_rate = rate if rate is not None else estimate.sampling_rate
            boundaries = DataBoundaries.from_sketch(
                estimate.sketch0, estimate.sigma, p1=self.config.p1, p2=self.config.p2
            )

            calculator = BlockCalculator(self.config)
            block_seeds = seed_source.spawn(store.block_count)
            # One context copy per task: worker threads start with an empty
            # context, so this is what keeps their spans attached to the
            # current trace (each task needs its own copy because a Context
            # cannot be entered concurrently).
            block_contexts = [
                contextvars.copy_context() for _ in range(store.block_count)
            ]

            def run_block(args) -> BlockResult:
                block, child_seed, context = args
                block_rng = np.random.default_rng(child_seed)
                return context.run(
                    calculator.run,
                    block,
                    column,
                    sampling_rate,
                    boundaries,
                    estimate.sketch0,
                    block_rng,
                    sketch_interval_radius=estimate.relaxed_precision,
                )

            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                block_results: List[BlockResult] = list(
                    pool.map(run_block, zip(store.blocks, block_seeds, block_contexts))
                )

            value = combine_block_results(block_results)
        elapsed = watch.elapsed_seconds
        interval = ConfidenceInterval(
            center=value, radius=self.config.precision, confidence=self.config.confidence
        )
        return AggregateResult(
            value=value,
            aggregate="avg",
            column=column,
            table=store.name,
            precision=self.config.precision,
            confidence=self.config.confidence,
            interval=interval,
            sampling_rate=sampling_rate,
            sample_size=sum(block.sample_size for block in block_results),
            sketch0=estimate.sketch0,
            sigma_estimate=estimate.sigma,
            data_size=store.total_rows,
            block_results=tuple(block_results),
            method=self.method,
            elapsed_seconds=elapsed,
        )
