"""Thread-parallel execution of the Calculation module — paper Section VII-E.

The paper's deployment story is "compute partial answers on each machine,
then let a coordinator combine them".  This extension predates the
first-class partition backend and is now a thin compatibility shim over
:class:`repro.parallel.PartitionParallelAggregator`: same per-block seed
spawn (one ``SeedSequence`` child for the pre-phase, one per block in
canonical order), same merge through Summarization, but with its own
private pool sized by ``max_workers`` instead of the shared scan pool.

Because both implementations follow the seed contract of
:mod:`repro.parallel.seeding`, results for a given seed are bit-identical
to the historical behaviour *and* to the new backend at any parallelism.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ISLAConfig
from repro.errors import EmptyDataError
from repro.parallel.isla import PartitionParallelAggregator
from repro.parallel.pool import ScanPool

__all__ = ["ParallelISLAAggregator"]


class ParallelISLAAggregator(PartitionParallelAggregator):
    """ISLA aggregation where blocks are processed by a thread pool."""

    method = "ISLA-parallel"

    def __init__(
        self,
        config: Optional[ISLAConfig] = None,
        max_workers: int = 4,
        seed: Optional[int] = None,
    ) -> None:
        if max_workers < 1:
            raise EmptyDataError(f"max_workers must be positive, got {max_workers}")
        super().__init__(
            config,
            seed=seed,
            pool=ScanPool(max_workers=int(max_workers)),
            parallelism=int(max_workers),
        )
        self.max_workers = int(max_workers)
