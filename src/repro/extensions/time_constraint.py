"""Time-constrained execution — paper Section VII-F.

Some deployments bound the *latency* rather than the precision.  The paper's
recipe: learn the relationship between sample size and runtime from the
workload, size the sample to the time budget, then report the precision that
sample size can guarantee.  The implementation calibrates throughput with a
tiny timed pilot run, converts the remaining budget into an affordable sample
size, and runs the normal ISLA pipeline with that sampling rate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.core.boundaries import DataBoundaries
from repro.core.calculation import sampling_phase
from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.core.pre_estimation import PreEstimator
from repro.core.result import AggregateResult
from repro.errors import TimeBudgetExceeded
from repro.stats.confidence import half_width
from repro.storage.blockstore import BlockStore

__all__ = ["TimeConstrainedAggregator"]

#: fraction of the budget reserved for calibration + bookkeeping
_OVERHEAD_FRACTION = 0.25
#: sample size of the timed calibration run
_CALIBRATION_SAMPLES = 2000


class TimeConstrainedAggregator:
    """Run ISLA within a wall-clock budget, reporting the achieved precision."""

    def __init__(
        self,
        config: Optional[ISLAConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or ISLAConfig()
        self._seed = seed if seed is not None else self.config.seed

    def aggregate_within(
        self,
        store: BlockStore,
        column: Optional[str] = None,
        *,
        budget_seconds: float,
        rng: Optional[np.random.Generator] = None,
    ) -> AggregateResult:
        """Aggregate AVG(column) spending at most roughly ``budget_seconds``.

        Raises
        ------
        TimeBudgetExceeded
            If the budget cannot accommodate even a minimal sample.
        """
        if budget_seconds <= 0:
            raise TimeBudgetExceeded(f"budget must be positive, got {budget_seconds}")
        column = store.validate_column(column)
        generator = rng if rng is not None else np.random.default_rng(self._seed)
        with obs.stopwatch(
            "timed.aggregate", table=store.name, budget_seconds=budget_seconds
        ) as watch:
            # Pre-estimation is needed regardless; it also tells us sigma.
            estimate = PreEstimator(self.config).estimate(store, column, generator)
            boundaries = DataBoundaries.from_sketch(
                estimate.sketch0, estimate.sigma, p1=self.config.p1, p2=self.config.p2
            )

            # Calibrate throughput: time a small sampling pass over the first
            # block.
            first_block = store.blocks[0]
            calibration_rate = min(1.0, _CALIBRATION_SAMPLES / max(1, first_block.size))
            with obs.stopwatch("timed.calibrate", block=first_block.block_id) as cal:
                sampling_phase(
                    first_block, column, calibration_rate, boundaries, generator
                )
            calibration_elapsed = max(cal.elapsed_seconds, 1e-6)
            rows_timed = max(1, int(round(calibration_rate * first_block.size)))
            seconds_per_row = calibration_elapsed / rows_timed

            usable = (budget_seconds - watch.elapsed_seconds) * (1.0 - _OVERHEAD_FRACTION)
            if usable <= 0:
                raise TimeBudgetExceeded(
                    f"budget of {budget_seconds:.3f}s exhausted during calibration"
                )
            affordable_rows = int(usable / seconds_per_row)
            if affordable_rows < store.block_count:
                raise TimeBudgetExceeded(
                    f"budget of {budget_seconds:.3f}s only affords {affordable_rows} "
                    f"samples across {store.block_count} blocks"
                )
            affordable_rows = min(affordable_rows, store.total_rows)
            rate = affordable_rows / store.total_rows

            # The precision this sample size can actually guarantee
            # (Definition 1).
            achieved_precision = half_width(
                estimate.sigma, max(2, affordable_rows), self.config.confidence
            )
            config = self.config.with_updates(precision=max(achieved_precision, 1e-12))
            aggregator = ISLAAggregator(config, seed=self._seed)
            result = aggregator.aggregate_avg(
                store, column, rate=rate, rng=generator, pre_estimate=estimate
            )
            watch.set_tag("affordable_rows", affordable_rows)
            watch.set_tag("achieved_precision", achieved_precision)
        total_elapsed = watch.elapsed_seconds
        # Report the end-to-end latency of the constrained run.
        return AggregateResult(
            value=result.value,
            aggregate=result.aggregate,
            column=result.column,
            table=result.table,
            precision=result.precision,
            confidence=result.confidence,
            interval=result.interval,
            sampling_rate=result.sampling_rate,
            sample_size=result.sample_size,
            sketch0=result.sketch0,
            sigma_estimate=result.sigma_estimate,
            data_size=result.data_size,
            block_results=result.block_results,
            method="ISLA-timed",
            elapsed_seconds=total_elapsed,
            translation_offset=result.translation_offset,
        )
