"""Online (progressive) aggregation — paper Section VII-A.

Because every block keeps only its ``paramS`` / ``paramL`` power sums, a
finished aggregation can be *continued*: draw additional samples, fold them
into the same accumulators, and re-run the iteration phase.  Each refinement
therefore tightens the answer without re-reading the earlier samples — the
property the paper contrasts with classical online aggregation, which must
retain or re-weight its sample set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.accumulators import RegionMoments
from repro.core.boundaries import DataBoundaries
from repro.core.calculation import iteration_phase, sampling_phase
from repro.core.config import ISLAConfig
from repro.core.pre_estimation import PreEstimate, PreEstimator
from repro.core.result import AggregateResult, BlockResult
from repro.core.summarization import combine_block_results
from repro.errors import EstimationError
from repro.stats.confidence import ConfidenceInterval
from repro.storage.blockstore import BlockStore

__all__ = ["OnlineState", "OnlineAggregator"]


@dataclass
class OnlineState:
    """Accumulated per-block state carried between refinement rounds."""

    pre_estimate: PreEstimate
    boundaries: DataBoundaries
    param_s: Dict[int, RegionMoments] = field(default_factory=dict)
    param_l: Dict[int, RegionMoments] = field(default_factory=dict)
    samples_drawn: Dict[int, int] = field(default_factory=dict)
    rounds: int = 0

    def total_samples(self) -> int:
        """Total samples drawn so far across blocks and rounds."""
        return sum(self.samples_drawn.values())


class OnlineAggregator:
    """Progressive ISLA aggregation with explicit refinement rounds."""

    def __init__(
        self,
        config: Optional[ISLAConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or ISLAConfig()
        self._rng = np.random.default_rng(seed if seed is not None else self.config.seed)
        self._state: Optional[OnlineState] = None
        self._store: Optional[BlockStore] = None
        self._column: Optional[str] = None

    # ------------------------------------------------------------------ API
    @property
    def state(self) -> Optional[OnlineState]:
        """The accumulated state (None before :meth:`start`)."""
        return self._state

    def start(
        self,
        store: BlockStore,
        column: Optional[str] = None,
        initial_rate: Optional[float] = None,
    ) -> AggregateResult:
        """Run the first round and remember the state for later refinement."""
        column = store.validate_column(column)
        pre_estimate = PreEstimator(self.config).estimate(store, column, self._rng)
        boundaries = DataBoundaries.from_sketch(
            pre_estimate.sketch0,
            pre_estimate.sigma,
            p1=self.config.p1,
            p2=self.config.p2,
        )
        self._store = store
        self._column = column
        self._state = OnlineState(
            pre_estimate=pre_estimate,
            boundaries=boundaries,
            param_s={block.block_id: RegionMoments() for block in store.blocks},
            param_l={block.block_id: RegionMoments() for block in store.blocks},
            samples_drawn={block.block_id: 0 for block in store.blocks},
        )
        rate = initial_rate if initial_rate is not None else pre_estimate.sampling_rate
        return self.refine(rate)

    def ingest(self, values, catalog=None) -> int:
        """Append new rows to the store as a fresh block (online append).

        The new block joins the accumulated state with empty power sums, so
        the next :meth:`refine` samples it alongside the existing blocks.
        When the store is registered in a ``catalog``, the table is touched
        so the serving layer's version-keyed result cache drops every
        answer computed before the append.  Returns the new block id.
        """
        if self._state is None or self._store is None or self._column is None:
            raise EstimationError("call start() before ingest()")
        block = self._store.append_block(
            np.asarray(values, dtype=float), column=self._column
        )
        state = self._state
        state.param_s[block.block_id] = RegionMoments()
        state.param_l[block.block_id] = RegionMoments()
        state.samples_drawn[block.block_id] = 0
        obs.counter("online.ingested_rows", block.size)
        if catalog is not None:
            catalog.touch(self._store.name)
        return block.block_id

    def refine(self, additional_rate: float) -> AggregateResult:
        """Draw more samples at ``additional_rate`` and recompute the answer."""
        if self._state is None or self._store is None or self._column is None:
            raise EstimationError("call start() before refine()")
        if additional_rate <= 0:
            raise EstimationError(f"additional_rate must be positive, got {additional_rate}")
        state = self._state
        with obs.span(
            "online.round", round=state.rounds + 1, rate=additional_rate
        ) as sp:
            drawn_this_round = 0
            for block in self._store.blocks:
                new_s, new_l, drawn = sampling_phase(
                    block, self._column, min(1.0, additional_rate), state.boundaries,
                    self._rng,
                )
                state.param_s[block.block_id].merge(new_s)
                state.param_l[block.block_id].merge(new_l)
                state.samples_drawn[block.block_id] += drawn
                drawn_this_round += drawn
            state.rounds += 1
            sp.set_tag("rows", drawn_this_round)
            sp.set_tag("total_rows", state.total_samples())
            return self._current_result()

    # ------------------------------------------------------------ internals
    def _current_result(self) -> AggregateResult:
        assert self._state is not None and self._store is not None and self._column is not None
        state = self._state
        block_results: List[BlockResult] = []
        for block in self._store.blocks:
            output = iteration_phase(
                state.param_s[block.block_id],
                state.param_l[block.block_id],
                state.pre_estimate.sketch0,
                self.config,
                sketch_interval_radius=state.pre_estimate.relaxed_precision,
            )
            block_results.append(
                BlockResult(
                    block_id=block.block_id,
                    estimate=output.estimate,
                    block_size=block.size,
                    sample_size=state.samples_drawn[block.block_id],
                    count_s=state.param_s[block.block_id].count,
                    count_l=state.param_l[block.block_id].count,
                    case=output.case.value,
                    iterations=output.iterations,
                    alpha=output.alpha,
                    q=output.q,
                    deviation=output.deviation,
                    converged=output.converged,
                    used_fallback=output.used_fallback,
                    fallback_reason=output.fallback_reason,
                )
            )
        value = combine_block_results(block_results)
        interval = ConfidenceInterval(
            center=value, radius=self.config.precision, confidence=self.config.confidence
        )
        return AggregateResult(
            value=value,
            aggregate="avg",
            column=self._column,
            table=self._store.name,
            precision=self.config.precision,
            confidence=self.config.confidence,
            interval=interval,
            sampling_rate=state.pre_estimate.sampling_rate,
            sample_size=state.total_samples(),
            sketch0=state.pre_estimate.sketch0,
            sigma_estimate=state.pre_estimate.sigma,
            data_size=self._store.total_rows,
            block_results=tuple(block_results),
            method="ISLA-online",
        )
