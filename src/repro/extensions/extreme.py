"""Leverage-guided extreme-value (MIN/MAX) aggregation — paper Section VII-D.

The paper sketches the extension: keep the same block framework but (1) record
only the per-block extreme value and (2) let the *sampling rate* of each block
be leverage-based, combining the block's local variance with its "general
condition" (blocks whose values run generally higher are more likely to
contain the maximum, and vice versa for the minimum).

This module implements that sketch.  The block sampling leverage is::

    lev_i  ∝  (1 + sigma_i^2) * exp(direction * (mean_i - mean_all) / spread)

where ``direction`` is +1 for MAX and −1 for MIN, so high-mean blocks receive
more samples when hunting the maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Optional

import numpy as np

from repro import obs
from repro.core.config import ISLAConfig
from repro.errors import EmptyDataError, EstimationError
from repro.storage.blockstore import BlockStore

__all__ = ["ExtremeResult", "ExtremeValueAggregator"]

ExtremeKind = Literal["max", "min"]


@dataclass(frozen=True)
class ExtremeResult:
    """Result of an approximate MIN/MAX aggregation."""

    value: float
    kind: str
    column: str
    table: str
    sample_size: int
    per_block_extremes: Dict[int, float]
    per_block_rates: Dict[int, float]
    elapsed_seconds: float

    def error_against(self, truth: float) -> float:
        """Absolute error against the exact extreme."""
        return abs(self.value - truth)


class ExtremeValueAggregator:
    """Approximate MIN/MAX with leverage-based per-block sampling rates."""

    def __init__(
        self,
        config: Optional[ISLAConfig] = None,
        base_rate: float = 0.05,
        pilot_per_block: int = 300,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 < base_rate <= 1.0:
            raise EstimationError(f"base_rate must lie in (0, 1], got {base_rate}")
        self.config = config or ISLAConfig()
        self.base_rate = float(base_rate)
        self.pilot_per_block = int(pilot_per_block)
        self._seed = seed if seed is not None else self.config.seed

    # ------------------------------------------------------------------ API
    def aggregate_max(
        self, store: BlockStore, column: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> ExtremeResult:
        """Approximate ``MAX(column)``."""
        return self._aggregate(store, column, kind="max", rng=rng)

    def aggregate_min(
        self, store: BlockStore, column: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> ExtremeResult:
        """Approximate ``MIN(column)``."""
        return self._aggregate(store, column, kind="min", rng=rng)

    # ------------------------------------------------------------ internals
    def _aggregate(
        self,
        store: BlockStore,
        column: Optional[str],
        kind: ExtremeKind,
        rng: Optional[np.random.Generator],
    ) -> ExtremeResult:
        column = store.validate_column(column)
        if store.total_rows == 0:
            raise EmptyDataError(f"store {store.name!r} has no rows")
        generator = rng if rng is not None else np.random.default_rng(self._seed)
        direction = 1.0 if kind == "max" else -1.0

        with obs.stopwatch(
            "extreme.aggregate", table=store.name, column=column, kind=kind
        ) as watch:
            # Pilot pass: per-block mean and variance drive the sampling
            # leverages.
            means = []
            variances = []
            with obs.span("extreme.pilot", blocks=store.block_count):
                for block in store.blocks:
                    pilot_size = min(self.pilot_per_block, max(2, block.size))
                    pilot = block.sample_column(column, pilot_size, generator)
                    means.append(float(pilot.mean()))
                    variances.append(float(pilot.var()))
            with obs.span("leverage.compute", kind="extreme"):
                means_array = np.asarray(means)
                spread = float(means_array.std()) or 1.0
                general_condition = np.exp(
                    direction * (means_array - means_array.mean()) / spread
                )
                leverages = (1.0 + np.asarray(variances)) * general_condition
                leverages = leverages / leverages.sum()

            budget = max(store.block_count, int(round(self.base_rate * store.total_rows)))
            per_block_extremes: Dict[int, float] = {}
            per_block_rates: Dict[int, float] = {}
            drawn = 0
            best: Optional[float] = None
            for index, block in enumerate(store.blocks):
                if block.size == 0:
                    continue
                share = max(1, int(round(budget * leverages[index])))
                rate = min(1.0, share / block.size)
                with obs.span("sample.draw", block=block.block_id) as sp:
                    sample = block.sample_column(
                        column, max(1, int(round(rate * block.size))), generator
                    )
                    extreme = float(sample.max() if kind == "max" else sample.min())
                    sp.set_tag("rows", int(sample.size))
                per_block_extremes[block.block_id] = extreme
                per_block_rates[block.block_id] = rate
                drawn += sample.size
                if best is None:
                    best = extreme
                else:
                    best = max(best, extreme) if kind == "max" else min(best, extreme)
            obs.counter("sample.rows", drawn)

            if best is None:
                raise EmptyDataError("no block produced any samples")
        elapsed = watch.elapsed_seconds
        return ExtremeResult(
            value=best,
            kind=kind,
            column=column,
            table=store.name,
            sample_size=drawn,
            per_block_extremes=per_block_extremes,
            per_block_rates=per_block_rates,
            elapsed_seconds=elapsed,
        )
