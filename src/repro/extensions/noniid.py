"""Non-i.i.d. block handling — paper Section VII-C.

When blocks follow different local distributions, two things change relative
to the i.i.d. pipeline:

* **Per-block sampling rates.**  Blocks with larger local variance receive
  more samples.  The block leverage is ``blev_i = (1 + sigma_i^2) /
  (b + sum_j sigma_j^2)`` and block ``i`` samples at rate
  ``r * M * blev_i / |B_i|`` (capped at 1).
* **Per-block boundaries.**  Each block draws its own pilot, computes its own
  ``sketch0_i`` / ``sigma_i`` and therefore its own data boundaries, then runs
  the normal iteration phase locally.

The Summarization step is unchanged (size-weighted combination).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import obs
from repro.core.boundaries import DataBoundaries
from repro.core.calculation import BlockCalculator
from repro.core.config import ISLAConfig
from repro.core.result import AggregateResult, BlockResult
from repro.core.summarization import combine_block_results
from repro.errors import EmptyDataError
from repro.stats.confidence import ConfidenceInterval, required_sampling_rate
from repro.storage.blockstore import BlockStore

__all__ = ["NonIIDAggregator"]


class NonIIDAggregator:
    """ISLA aggregation with per-block boundaries and sampling rates."""

    method = "ISLA-noniid"

    def __init__(
        self,
        config: Optional[ISLAConfig] = None,
        pilot_per_block: int = 500,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or ISLAConfig()
        self.pilot_per_block = int(pilot_per_block)
        self._seed = seed if seed is not None else self.config.seed

    def aggregate_avg(
        self,
        store: BlockStore,
        column: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> AggregateResult:
        """Approximate ``AVG(column)`` over a store with heterogeneous blocks."""
        column = store.validate_column(column)
        if store.total_rows == 0:
            raise EmptyDataError(f"store {store.name!r} has no rows")
        generator = rng if rng is not None else np.random.default_rng(self._seed)

        with obs.stopwatch("noniid.aggregate", table=store.name, column=column) as watch:
            # Per-block pilots: sketch0_i, sigma_i.
            sketches: List[float] = []
            sigmas: List[float] = []
            with obs.span("noniid.pilot", blocks=store.block_count):
                for block in store.blocks:
                    pilot_size = min(self.pilot_per_block, max(2, block.size))
                    pilot = block.sample_column(column, pilot_size, generator)
                    sketches.append(float(pilot.mean()))
                    sigmas.append(float(pilot.std()))

            # Overall sampling rate from the pooled deviation (Eq. 1), then
            # spread across blocks with the variance-driven block leverages.
            pooled_sigma = float(np.sqrt(np.mean(np.square(sigmas)))) or 1e-12
            overall_rate = required_sampling_rate(
                pooled_sigma, self.config.precision, self.config.confidence,
                store.total_rows,
            )
            with obs.span("leverage.compute", kind="block") as lev:
                variances = np.square(np.asarray(sigmas, dtype=float))
                block_leverages = (1.0 + variances) / (store.block_count + variances.sum())
                lev.set_tag("pooled_sigma", pooled_sigma)

            calculator = BlockCalculator(self.config)
            block_results: List[BlockResult] = []
            total_rows = store.total_rows
            for index, block in enumerate(store.blocks):
                if block.size == 0:
                    continue
                local_rate = min(
                    1.0, overall_rate * total_rows * block_leverages[index] / block.size
                )
                boundaries = DataBoundaries.from_sketch(
                    sketches[index], sigmas[index], p1=self.config.p1, p2=self.config.p2
                )
                with obs.span("isla.block", block=block.block_id) as sp:
                    result = calculator.run(
                        block,
                        column,
                        local_rate,
                        boundaries,
                        sketches[index],
                        generator,
                        sketch_interval_radius=self.config.relaxed_precision,
                    )
                    sp.set_tag("sample_size", result.sample_size)
                    sp.set_tag("rate", local_rate)
                block_results.append(result)

            value = combine_block_results(block_results)
        elapsed = watch.elapsed_seconds
        interval = ConfidenceInterval(
            center=value, radius=self.config.precision, confidence=self.config.confidence
        )
        return AggregateResult(
            value=value,
            aggregate="avg",
            column=column,
            table=store.name,
            precision=self.config.precision,
            confidence=self.config.confidence,
            interval=interval,
            sampling_rate=overall_rate,
            sample_size=sum(block.sample_size for block in block_results),
            sketch0=float(np.mean(sketches)),
            sigma_estimate=pooled_sigma,
            data_size=store.total_rows,
            block_results=tuple(block_results),
            method=self.method,
            elapsed_seconds=elapsed,
        )
