"""Partition-parallel execution backend.

The scan over storage blocks is the system's hot loop, and the paper's
estimators are embarrassingly parallel over blocks: every block folds into
self-contained partial aggregates that the Summarization step merges.  This
package shards that loop:

* :mod:`repro.parallel.seeding` — the seed-determinism contract (one
  ``SeedSequence`` child per partition in canonical order) shared with the
  serving layer, so results are bit-identical at any parallelism;
* :mod:`repro.parallel.pool` — the process-wide :class:`ScanPool` every
  parallel scan submits shards to (serve workers share it, so concurrent
  queries never oversubscribe the machine);
* :mod:`repro.parallel.isla` — :class:`PartitionParallelAggregator`, the
  ISLA pipeline with a sharded Calculation phase;
* :mod:`repro.parallel.baselines` — partition kernels for the sampling
  baselines (US, STS, MV, MVB, SLEV, BILEVEL, EBS, BLOCK) plus an exact
  parallel mean;
* :mod:`repro.parallel.bench` — the serial-vs-parallel benchmark behind
  ``benchmarks/bench_parallel_scan.py``.

Enable it per engine (``AQPEngine(parallelism=4)``), per config
(``ISLAConfig(parallelism=4)``) or from the CLI (``--parallelism 4``);
``parallelism=None`` (the default) keeps the legacy serial path.
"""

from repro.parallel.baselines import parallel_baseline_aggregate, parallel_exact_mean
from repro.parallel.bench import BenchReport, build_bench_store, format_report, run_benchmark
from repro.parallel.isla import PartitionParallelAggregator, degraded_radius
from repro.parallel.pool import (
    PartialScanResult,
    PartitionFailure,
    ScanPool,
    default_parallelism,
    reset_shared_scan_pool,
    shared_scan_pool,
)
from repro.parallel.seeding import (
    SeedLike,
    as_seed_sequence,
    partition_generators,
    spawn_scan_seeds,
)

__all__ = [
    "BenchReport",
    "PartialScanResult",
    "PartitionFailure",
    "PartitionParallelAggregator",
    "ScanPool",
    "SeedLike",
    "as_seed_sequence",
    "build_bench_store",
    "default_parallelism",
    "degraded_radius",
    "format_report",
    "parallel_baseline_aggregate",
    "parallel_exact_mean",
    "partition_generators",
    "reset_shared_scan_pool",
    "run_benchmark",
    "shared_scan_pool",
    "spawn_scan_seeds",
]
