"""Partition-parallel ISLA aggregation.

The paper's Calculation module is embarrassingly parallel over blocks: each
block folds its samples into self-contained ``paramS``/``paramL`` region
moments and the Summarization step only needs the per-block partial answers.
:class:`PartitionParallelAggregator` exploits that: the serial pre-estimation
runs once on the caller's thread, then every block becomes one partition task
(sampling phase + iteration phase) sharded across the shared
:class:`~repro.parallel.pool.ScanPool`, and the partial answers merge through
the *same* summarization and confidence machinery as the serial aggregator —
so the returned value and CI are drawn from an identically distributed
estimator, and a given seed yields bit-identical answers at any parallelism
(see :mod:`repro.parallel.seeding`).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro import obs
from repro.core.boundaries import DataBoundaries
from repro.core.calculation import BlockCalculator
from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator, _shifted_block
from repro.core.pre_estimation import PreEstimate, PreEstimator
from repro.core.result import AggregateResult, BlockResult
from repro.core.summarization import combine_block_results
from repro.errors import EmptyDataError, PartialResultError
from repro.parallel.pool import PartialScanResult, ScanPool, shared_scan_pool
from repro.parallel.seeding import SeedLike, spawn_scan_seeds
from repro.stats.confidence import ConfidenceInterval
from repro.storage.blockstore import BlockStore

__all__ = ["PartitionParallelAggregator", "degraded_radius"]


def degraded_radius(
    precision: float, planned_samples: int, surviving_samples: int
) -> float:
    """Widened CI half-width after losing partitions.

    Definition 1 ties the half-width to the sample size through
    ``e = u * sigma / sqrt(m)``: the requested ``precision`` was budgeted for
    ``planned_samples`` draws, so an answer backed by only
    ``surviving_samples`` of them carries half-width
    ``precision * sqrt(planned / surviving)`` at the *same* confidence.
    This is what makes a degraded answer statistically honest: the
    confidence level is preserved and the interval widens to pay for the
    missing data.
    """
    if surviving_samples <= 0:
        raise PartialResultError("no surviving samples to widen a CI over")
    if planned_samples <= surviving_samples:
        return precision
    return precision * math.sqrt(planned_samples / surviving_samples)


class PartitionParallelAggregator(ISLAAggregator):
    """ISLA aggregation with the block scan sharded across a scan pool."""

    method = "ISLA"

    def __init__(
        self,
        config: Optional[ISLAConfig] = None,
        seed: SeedLike = None,
        pool: Optional[ScanPool] = None,
        parallelism: Optional[int] = None,
    ) -> None:
        super().__init__(config, seed=None)
        # The base class only accepts int seeds; the scan contract also
        # takes SeedSequence children handed down by the serving layer.
        self._seed = seed if seed is not None else self.config.seed
        self._pool = pool
        resolved = parallelism if parallelism is not None else self.config.parallelism
        self.parallelism = max(1, int(resolved)) if resolved is not None else 1
        timeout_ms = self.config.straggler_timeout_ms
        #: per-shard straggler deadline in seconds (None disables the watchdog)
        self.straggler_timeout = (
            timeout_ms / 1000.0 if timeout_ms is not None else None
        )

    @property
    def pool(self) -> ScanPool:
        """The scan pool partition shards are submitted to."""
        if self._pool is None:
            self._pool = shared_scan_pool()
        return self._pool

    # ------------------------------------------------------------------ AVG
    def aggregate_avg(
        self,
        store: BlockStore,
        column: Optional[str] = None,
        *,
        rate: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        pre_estimate: Optional[PreEstimate] = None,
    ) -> AggregateResult:
        """Partition-parallel version of :meth:`ISLAAggregator.aggregate_avg`.

        Mirrors the serial pipeline — pre-estimation, negative-data
        translation, per-block calculation, summarization — with the block
        loop replaced by sharded partition tasks, each consuming its own
        seed child.  Passing ``rng`` roots the partition spawn at that
        generator's seed sequence.
        """
        column = store.validate_column(column)
        if store.total_rows == 0:
            raise EmptyDataError(f"store {store.name!r} has no rows")
        pre_seed, partition_seeds = spawn_scan_seeds(
            rng if rng is not None else self._seed, store.block_count
        )

        with self._telemetry_scope(), obs.stopwatch(
            "parallel.scan",
            table=store.name,
            column=column,
            method=self.method,
            parallelism=self.parallelism,
            partitions=store.block_count,
        ) as watch:
            pre_rng = np.random.default_rng(pre_seed)
            estimate = pre_estimate or PreEstimator(self.config).estimate(
                store, column, pre_rng
            )
            sampling_rate = rate if rate is not None else estimate.sampling_rate

            offset = self._translation_offset(estimate)
            boundaries = DataBoundaries.from_sketch(
                estimate.sketch0 + offset,
                estimate.sigma,
                p1=self.config.p1,
                p2=self.config.p2,
            )
            sketch_shifted = estimate.sketch0 + offset
            calculator = BlockCalculator(self.config)

            def run_partition(task) -> BlockResult:
                block, child_seed = task
                if offset != 0.0:
                    block = _shifted_block(block, column, offset)
                block_rng = np.random.default_rng(child_seed)
                with obs.span("parallel.partition", block=block.block_id) as sp:
                    result = calculator.run(
                        block,
                        column,
                        sampling_rate,
                        boundaries,
                        sketch_shifted,
                        block_rng,
                        sketch_interval_radius=estimate.relaxed_precision,
                    )
                    sp.set_tag("sample_size", result.sample_size)
                    sp.set_tag("iterations", result.iterations)
                return result

            scan: PartialScanResult = self.pool.scan_partial(
                run_partition,
                list(zip(store.blocks, partition_seeds)),
                self.parallelism,
                table=store.name,
                keys=[block.block_id for block in store.blocks],
                straggler_timeout=self.straggler_timeout,
            )
            block_results: List[BlockResult] = scan.completed()
            if not block_results:
                raise PartialResultError(
                    f"every partition of {store.name!r} failed "
                    f"({len(scan.failures)} failures, first: {scan.failures[0].error!r})"
                )
            obs.counter("parallel.partitions", len(block_results))
            if scan.failures:
                obs.counter("degraded.partitions_lost", len(scan.failures))
                watch.set_tag("failed_partitions", len(scan.failures))
            combined = combine_block_results(block_results) - offset
            watch.set_tag("sampling_rate", sampling_rate)
            watch.set_tag("blocks", len(block_results))
        elapsed = watch.elapsed_seconds

        degraded = not scan.ok
        surviving_samples = sum(block.sample_size for block in block_results)
        surviving_rows = sum(block.block_size for block in block_results)
        radius = self.config.precision
        if degraded:
            # The rate was budgeted for the full table; re-derive the planned
            # draw count and widen the interval for the samples we lost.
            planned_samples = max(
                surviving_samples, int(round(sampling_rate * store.total_rows))
            )
            radius = degraded_radius(
                self.config.precision, planned_samples, surviving_samples
            )
            obs.counter("degraded.answers")

        interval = ConfidenceInterval(
            center=combined,
            radius=radius,
            confidence=self.config.confidence,
        )
        return AggregateResult(
            value=combined,
            aggregate="avg",
            column=column,
            table=store.name,
            precision=self.config.precision,
            confidence=self.config.confidence,
            interval=interval,
            sampling_rate=sampling_rate,
            sample_size=surviving_samples,
            sketch0=estimate.sketch0,
            sigma_estimate=estimate.sigma,
            data_size=store.total_rows,
            block_results=tuple(block_results),
            method=self.method,
            elapsed_seconds=elapsed,
            translation_offset=offset,
            degraded=degraded,
            failed_partitions=tuple(sorted(scan.failed_keys)),
            sample_fraction=(
                surviving_rows / store.total_rows if store.total_rows else 1.0
            ),
        )
