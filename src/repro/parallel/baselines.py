"""Partition-parallel partial aggregation for the sampling baselines.

Every baseline estimator decomposes into a *pre phase* (pilot samples,
boundary/allocation computation — serial, seeded by the scan's pre-seed),
one or more *partition phases* (vectorised per-block scans sharded across
the :class:`~repro.parallel.pool.ScanPool`, each partition consuming its own
seed child), and a *merge* that combines the per-partition partials through
the existing accumulator machinery (:class:`~repro.core.accumulators.RegionMoments`
power sums and the size-weighted :func:`~repro.core.summarization.combine_partial_means`).

Globally-coupled estimators split into multiple partition phases with a
barrier between them: SLEV's leverage normaliser (``Σ x²``), BILEVEL's block
leverages and EBS's value strata are each computed by a deterministic
partial pass before the sampling pass.  The estimators stay unbiased — each
partition estimates its own blocks' mean and the merge weights by block
share, exactly the Summarization rule of the paper — and seeded results are
bit-identical at every parallelism (see :mod:`repro.parallel.seeding`).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.accumulators import RegionMoments
from repro.core.boundaries import DataBoundaries
from repro.core.summarization import combine_partial_means
from repro.errors import EmptyDataError, PartialResultError, SamplingError
from repro.parallel.pool import ScanPool, shared_scan_pool
from repro.parallel.seeding import (
    SeedLike,
    partition_generators,
    spawn_scan_seeds,
)
from repro.sampling.base import BaselineAggregator, SampleEstimate
from repro.stats.estimators import hansen_hurwitz_mean
from repro.storage.blockstore import BlockStore, resolve_block_share

__all__ = ["parallel_baseline_aggregate", "parallel_exact_mean"]

#: a partition runner: maps a per-block function over blocks, in block order
Runner = Callable[[Callable, Sequence], List]


class _ScanFailures(Exception):
    """Internal control flow: a kernel phase lost partitions; retry without them."""


def parallel_baseline_aggregate(
    aggregator: BaselineAggregator,
    store: BlockStore,
    column: Optional[str] = None,
    *,
    rate: Optional[float] = None,
    precision: Optional[float] = None,
    confidence: float = 0.95,
    seed: SeedLike = None,
    pool: Optional[ScanPool] = None,
    parallelism: int = 1,
) -> SampleEstimate:
    """Run ``aggregator``'s estimator with a partition-parallel scan.

    Accepts the same rate/precision resolution as
    :meth:`~repro.sampling.base.BaselineAggregator.aggregate`; the pilot
    sample behind a ``precision`` target draws from the scan's pre-seed
    stream so the resolved rate is itself reproducible.

    Partition failures degrade rather than fail the scan: the blocks that
    failed are excluded and the kernel re-runs over the survivors (the
    pre-phase generator is rewound, and surviving partitions keep their
    original seed children, so the surviving draws are bit-identical to a
    run that never saw the failure).  A degraded estimate re-weights over
    the surviving blocks — exactly the Summarization rule, applied to the
    blocks that still exist — and tags ``details`` with ``degraded``, the
    failed partition list and the surviving row fraction.
    """
    kernel = _KERNELS.get(aggregator.method)
    if kernel is None:
        raise SamplingError(
            f"no partition-parallel kernel for method {aggregator.method!r}"
        )
    column = store.validate_column(column)
    pool = pool if pool is not None else shared_scan_pool()
    parallelism = max(1, int(parallelism))
    if seed is None:
        seed = aggregator.seed
    pre_seed, partition_seeds = spawn_scan_seeds(seed, store.block_count)
    pre_rng = np.random.default_rng(pre_seed)

    with obs.span(
        "parallel.scan",
        method=aggregator.method,
        table=store.name,
        parallelism=parallelism,
        partitions=store.block_count,
    ) as sp:
        resolved_rate = aggregator._resolve_rate(
            store, column, rate=rate, precision=precision,
            confidence=confidence, rng=pre_rng,
        )
        # Rewind point: every (re-)run of the kernel consumes the pre-phase
        # stream from here, so excluding a failed block cannot shift the
        # pilot draws of the surviving ones.
        kernel_state = pre_rng.bit_generator.state

        excluded: Dict[int, int] = {}  # failed block id -> rows lost
        view, view_seeds = store, partition_seeds
        estimate: Optional[SampleEstimate] = None
        for _attempt in range(store.block_count):
            failed: List[int] = []

            def run(
                function: Callable,
                items: Sequence,
                _view: BlockStore = view,
                _failed: List[int] = failed,
            ) -> List:
                scan = pool.scan_partial(
                    function,
                    items,
                    parallelism,
                    table=store.name,
                    keys=[block.block_id for block in _view.blocks],
                )
                if scan.failures:
                    _failed.extend(
                        _view.blocks[failure.index].block_id
                        for failure in scan.failures
                    )
                    raise _ScanFailures()
                return scan.results

            pre_rng.bit_generator.state = kernel_state
            try:
                estimate = kernel(
                    aggregator, view, column, resolved_rate, pre_rng, view_seeds, run
                )
                break
            except _ScanFailures:
                for block_id in failed:
                    rows = next(
                        block.size for block in store.blocks if block.block_id == block_id
                    )
                    excluded[block_id] = rows
                obs.counter("degraded.partitions_lost", len(failed))
                survivors = [
                    (block, child)
                    for block, child in zip(store.blocks, partition_seeds)
                    if block.block_id not in excluded
                ]
                if not survivors:
                    raise PartialResultError(
                        f"every partition of {store.name!r} failed under "
                        f"{aggregator.method}"
                    )
                view = BlockStore.from_blocks(
                    store.name,
                    [block for block, _ in survivors],
                    default_column=store.default_column,
                )
                view_seeds = [child for _, child in survivors]
        if estimate is None:
            raise PartialResultError(
                f"partition scan over {store.name!r} kept losing blocks; "
                f"no attempt completed ({len(excluded)} excluded)"
            )
        sp.set_tag("rows", estimate.sample_size)
        sp.set_tag("rate", resolved_rate)
        if excluded:
            sp.set_tag("failed_partitions", len(excluded))
    obs.counter("parallel.partitions", view.block_count)
    obs.counter("sample.rows", estimate.sample_size)
    details = dict(estimate.details)
    details["parallelism"] = parallelism
    details["partitions"] = store.block_count
    if excluded:
        obs.counter("degraded.answers")
        surviving_rows = store.total_rows - sum(excluded.values())
        details["degraded"] = True
        details["failed_partitions"] = sorted(excluded)
        details["sample_fraction"] = (
            surviving_rows / store.total_rows if store.total_rows else 1.0
        )
    return SampleEstimate(
        value=estimate.value,
        sample_size=estimate.sample_size,
        sampling_rate=estimate.sampling_rate,
        method=estimate.method,
        details=details,
    )


def parallel_exact_mean(
    store: BlockStore,
    column: Optional[str] = None,
    *,
    pool: Optional[ScanPool] = None,
    parallelism: int = 1,
) -> Tuple[float, int]:
    """Exact ``(mean, rows)`` with per-block partial sums merged on the caller."""
    column = store.validate_column(column)
    pool = pool if pool is not None else shared_scan_pool()

    def partial(block) -> Tuple[float, int]:
        values = block.column(column)
        return float(values.sum()), int(values.size)

    partials = pool.map_partitions(partial, store.blocks, max(1, int(parallelism)))
    total = sum(piece for piece, _ in partials)
    rows = sum(count for _, count in partials)
    if rows == 0:
        raise SamplingError(f"store {store.name!r} has no rows")
    return total / rows, rows


# --------------------------------------------------------------------------
# per-method kernels
# --------------------------------------------------------------------------

def _sample_share(rate: float, block_size: int, rng: np.random.Generator) -> int:
    """Per-block sample size at the global rate (the serial convention).

    Delegates to :func:`~repro.storage.blockstore.resolve_block_share`, so
    sub-rounding blocks get the same probabilistic single-row draw as the
    serial scan instead of being silently excluded.  The draw consumes from
    the *partition's own* stream, which keeps seeded results bit-identical
    at every parallelism.
    """
    return resolve_block_share(rate, block_size, rng)


def _merged_moments(partials: Sequence[RegionMoments]) -> RegionMoments:
    merged = RegionMoments()
    for piece in partials:
        merged.merge(piece)
    return merged


def _us_kernel(aggregator, store, column, rate, pre_rng, seeds, run) -> SampleEstimate:
    bundles = partition_generators(seeds, 1)

    def partial(task) -> RegionMoments:
        block, (rng,) = task
        share = _sample_share(rate, block.size, rng)
        if share <= 0 or block.size == 0:
            return RegionMoments()
        return RegionMoments.from_values(block.sample_column(column, share, rng))

    merged = _merged_moments(run(partial, list(zip(store.blocks, bundles))))
    if merged.count == 0:
        # Same degenerate path (and exception branch) as the serial scan,
        # which fails inside BlockStore.uniform_sample.
        raise EmptyDataError(
            f"sampling rate {rate} produced an empty sample over {store.name!r}"
        )
    mean = merged.total / merged.count
    variance = max(0.0, merged.square_sum / merged.count - mean * mean)
    return SampleEstimate(
        value=float(mean),
        sample_size=merged.count,
        sampling_rate=rate,
        method=aggregator.method,
        details={"sample_std": math.sqrt(variance)},
    )


def _mv_kernel(aggregator, store, column, rate, pre_rng, seeds, run) -> SampleEstimate:
    bundles = partition_generators(seeds, 1)

    def partial(task) -> RegionMoments:
        block, (rng,) = task
        share = _sample_share(rate, block.size, rng)
        if share <= 0 or block.size == 0:
            return RegionMoments()
        return RegionMoments.from_values(block.sample_column(column, share, rng))

    merged = _merged_moments(run(partial, list(zip(store.blocks, bundles))))
    if merged.count == 0:
        raise SamplingError("MV sampling produced an empty sample")
    # sum(p_i * x_i) with p_i = x_i / sum(x) collapses to squareSum / sum —
    # exactly the power sums the accumulators already carry.
    estimate = merged.square_sum / merged.total if merged.total != 0.0 else 0.0
    return SampleEstimate(
        value=float(estimate),
        sample_size=merged.count,
        sampling_rate=rate,
        method=aggregator.method,
        details={"plain_mean": merged.total / merged.count},
    )


def _mvb_kernel(aggregator, store, column, rate, pre_rng, seeds, run) -> SampleEstimate:
    pilot = store.pilot_sample(column, aggregator.pilot_size, pre_rng)
    sketch = float(pilot.mean())
    sigma = float(pilot.std())
    boundaries = DataBoundaries.from_sketch(
        sketch, sigma, p1=aggregator.p1, p2=aggregator.p2
    )
    bundles = partition_generators(seeds, 1)

    def partial(task) -> Dict[int, RegionMoments]:
        block, (rng,) = task
        share = _sample_share(rate, block.size, rng)
        if share <= 0 or block.size == 0:
            return {}
        sample = block.sample_column(column, share, rng)
        regions = boundaries.classify(sample)
        moments: Dict[int, RegionMoments] = {}
        for code in np.unique(regions):
            moments[int(code)] = RegionMoments.from_values(sample[regions == code])
        return moments

    region_moments: Dict[int, RegionMoments] = {}
    for piece in run(partial, list(zip(store.blocks, bundles))):
        for code, moments in piece.items():
            region_moments.setdefault(code, RegionMoments()).merge(moments)
    total = sum(moments.count for moments in region_moments.values())
    if total == 0:
        raise SamplingError("MVB sampling produced an empty sample")
    estimate = 0.0
    region_stats = {}
    for code in sorted(region_moments):
        moments = region_moments[code]
        share = moments.count / total
        # share * sum(x_i^2) / sum(x_i) within the region; a zero-sum region
        # contributes share * mean = 0, matching the serial degenerate path.
        contribution = (
            share * (moments.square_sum / moments.total) if moments.total != 0.0 else 0.0
        )
        estimate += contribution
        region_stats[code] = {"count": moments.count, "contribution": contribution}
    return SampleEstimate(
        value=float(estimate),
        sample_size=total,
        sampling_rate=rate,
        method=aggregator.method,
        details={"sketch": sketch, "sigma": sigma, "regions": region_stats},
    )


def _sts_kernel(aggregator, store, column, rate, pre_rng, seeds, run) -> SampleEstimate:
    sizes = store.block_sizes()
    total_rows = sizes.sum()
    budget = max(1, int(round(rate * total_rows)))
    bundles = partition_generators(seeds, 2)  # pilot stream, sampling stream

    if aggregator.allocation == "neyman":
        def pilot(task) -> float:
            block, (pilot_rng, _) = task
            if block.size == 0:
                return 0.0
            share = min(aggregator.pilot_per_block, max(2, block.size))
            return float(block.sample_column(column, share, pilot_rng).std())

        deviations = np.asarray(run(pilot, list(zip(store.blocks, bundles))))
        weights = sizes * deviations
        if weights.sum() == 0.0:
            weights = sizes
        raw = budget * weights / weights.sum()
    else:
        raw = budget * sizes / sizes.sum()
    allocations = np.maximum(1, np.round(raw)).astype(int)

    def partial(task) -> Tuple[float, int]:
        block, (_, sample_rng), share = task
        if share <= 0 or block.size == 0:
            return 0.0, 0
        sample = block.sample_column(column, int(share), sample_rng)
        return float(sample.mean()), int(sample.size)

    results = run(
        partial,
        [
            (block, bundle, int(share))
            for block, bundle, share in zip(store.blocks, bundles, allocations)
        ],
    )
    drawn = sum(count for _, count in results)
    if drawn == 0:
        raise SamplingError("stratified sampling produced an empty sample")
    weights = sizes / total_rows
    estimate = float(
        sum(weight * mean for weight, (mean, _) in zip(weights, results))
    )
    return SampleEstimate(
        value=estimate,
        sample_size=drawn,
        sampling_rate=rate,
        method=aggregator.method,
        details={
            "allocation": aggregator.allocation,
            "per_stratum": [int(a) for a in allocations],
        },
    )


def _bilevel_kernel(aggregator, store, column, rate, pre_rng, seeds, run) -> SampleEstimate:
    sizes = store.block_sizes()
    total_rows = float(sizes.sum())
    budget = max(1, int(round(rate * total_rows)))
    bundles = partition_generators(seeds, 2)  # pilot stream, sampling stream

    def pilot(task) -> float:
        block, (pilot_rng, _) = task
        if block.size == 0:
            return 0.0
        share = min(aggregator.pilot_per_block, max(2, block.size))
        return float(block.sample_column(column, share, pilot_rng).var())

    variances = np.asarray(run(pilot, list(zip(store.blocks, bundles))))
    block_leverages = (1.0 + variances) / (len(sizes) + variances.sum())

    def partial(task) -> Tuple[float, int]:
        block, (_, sample_rng), leverage = task
        share = int(round(budget * leverage))
        share = max(1, min(share, max(1, block.size)))
        if block.size == 0:
            return 0.0, 0
        sample = block.sample_column(column, share, sample_rng)
        return float(sample.mean()), int(sample.size)

    results = run(
        partial,
        [
            (block, bundle, float(leverage))
            for block, bundle, leverage in zip(store.blocks, bundles, block_leverages)
        ],
    )
    drawn = sum(count for _, count in results)
    if drawn == 0:
        raise SamplingError("bi-level sampling produced an empty sample")
    weights = sizes / total_rows
    estimate = float(sum(weight * mean for weight, (mean, _) in zip(weights, results)))
    return SampleEstimate(
        value=estimate,
        sample_size=drawn,
        sampling_rate=rate,
        method=aggregator.method,
        details={
            "block_leverages": [float(b) for b in block_leverages],
            "per_block_sizes": [count for _, count in results],
        },
    )


def _slev_kernel(aggregator, store, column, rate, pre_rng, seeds, run) -> SampleEstimate:
    population = store.total_rows
    if population == 0:
        raise SamplingError("SLEV cannot aggregate an empty store")
    sample_size = max(1, int(round(rate * population)))
    alpha = aggregator.alpha
    bundles = partition_generators(seeds, 1)

    # Phase 1 — the leverage normaliser Σx² (SLEV's unavoidable full pass),
    # computed as vectorised per-partition partials.
    def square_partial(block) -> float:
        values = block.column(column)
        return float((values * values).sum())

    square_sums = run(square_partial, list(store.blocks))
    global_square = float(sum(square_sums))

    # Per-block probability mass under pi_i = alpha*h_i + (1-alpha)/n.
    block_sizes = store.block_sizes()
    if global_square == 0.0:
        masses = block_sizes / population
    else:
        masses = (
            alpha * np.asarray(square_sums) / global_square
            + (1.0 - alpha) * block_sizes / population
        )

    # Phase 2 — each partition draws its leverage share of the budget with
    # within-block probabilities pi_i / mass_b and Hansen-Hurwitz-estimates
    # its own blocks' mean; the merge weights by block share (unbiased).
    def partial(task) -> Tuple[float, int, int]:
        block, (rng,), mass = task
        if block.size == 0:
            return 0.0, 0, 0
        draws = max(1, int(round(sample_size * mass)))
        values = block.column(column)
        if global_square == 0.0:
            within = np.full(values.size, 1.0 / values.size)
        else:
            pi = alpha * values * values / global_square + (1.0 - alpha) / population
            within = pi / pi.sum()
        indices = rng.choice(values.size, size=draws, replace=True, p=within)
        estimate = hansen_hurwitz_mean(
            values[indices], within[indices], population_size=values.size
        )
        return float(estimate), int(block.size), draws

    results = run(
        partial,
        [
            (block, bundle, float(mass))
            for block, bundle, mass in zip(store.blocks, bundles, masses)
        ],
    )
    occupied = [(mean, size) for mean, size, _ in results if size > 0]
    if not occupied:
        raise SamplingError("SLEV sampling produced an empty sample")
    estimate = combine_partial_means(
        [mean for mean, _ in occupied], [size for _, size in occupied]
    )
    drawn = sum(draws for _, _, draws in results)
    return SampleEstimate(
        value=float(estimate),
        sample_size=drawn,
        sampling_rate=rate,
        method=aggregator.method,
        details={"alpha": alpha, "full_scan_required": True},
    )


def _ebs_kernel(aggregator, store, column, rate, pre_rng, seeds, run) -> SampleEstimate:
    strata = aggregator.strata
    population = store.total_rows
    if population == 0:
        raise SamplingError("cannot aggregate an empty store")
    budget = max(strata, int(round(rate * population)))
    bundles = partition_generators(seeds, 1)

    # Phase 1 — global value range from per-partition extrema.
    def extrema(block) -> Tuple[float, float]:
        values = block.column(column)
        if values.size == 0:
            return math.inf, -math.inf
        return float(values.min()), float(values.max())

    bounds = run(extrema, list(store.blocks))
    low = min(piece for piece, _ in bounds)
    high = max(piece for _, piece in bounds)
    if high == low:
        return SampleEstimate(
            value=low,
            sample_size=min(budget, population),
            sampling_rate=rate,
            method=aggregator.method,
            details={"degenerate": True},
        )
    edges = np.linspace(low, high, strata + 1)

    # Phase 2 — per-partition per-stratum power sums (counts, Σx, Σx²)
    # merged into the global stratum sizes and standard deviations.
    def stratum_partial(block) -> np.ndarray:
        stats = np.zeros((strata, 3), dtype=float)
        values = block.column(column)
        if values.size == 0:
            return stats
        assignments = np.clip(np.digitize(values, edges[1:-1]), 0, strata - 1)
        for stratum in range(strata):
            members = values[assignments == stratum]
            if members.size:
                stats[stratum] = (members.size, members.sum(), (members * members).sum())
        return stats

    per_block_stats = run(stratum_partial, list(store.blocks))
    merged = np.sum(per_block_stats, axis=0)
    stratum_sizes = merged[:, 0]
    with np.errstate(invalid="ignore", divide="ignore"):
        stratum_means = np.where(stratum_sizes > 0, merged[:, 1] / np.maximum(stratum_sizes, 1), 0.0)
        stratum_vars = np.where(
            stratum_sizes > 0,
            np.maximum(0.0, merged[:, 2] / np.maximum(stratum_sizes, 1) - stratum_means ** 2),
            0.0,
        )
    stratum_stds = np.sqrt(stratum_vars)
    weights = stratum_sizes * (stratum_stds + 1e-12)
    if weights.sum() == 0.0:
        weights = stratum_sizes
    allocations = np.maximum(
        (stratum_sizes > 0).astype(int),
        np.round(budget * weights / weights.sum()).astype(int),
    )

    # Deterministic per-block shares: each block samples its local members
    # of stratum s proportionally to its share of the stratum, with a
    # canonical top-up so every non-empty stratum draws at least once.
    counts = np.stack([stats[:, 0] for stats in per_block_stats])  # (blocks, strata)
    shares = np.zeros_like(counts, dtype=int)
    for stratum in range(strata):
        if stratum_sizes[stratum] <= 0 or allocations[stratum] <= 0:
            continue
        raw = allocations[stratum] * counts[:, stratum] / stratum_sizes[stratum]
        shares[:, stratum] = np.minimum(np.round(raw), counts[:, stratum]).astype(int)
        if shares[:, stratum].sum() == 0:
            first = int(np.argmax(counts[:, stratum] > 0))
            shares[first, stratum] = 1

    # Phase 3 — the only randomised pass: sample within each block-stratum.
    def sample_partial(task) -> np.ndarray:
        block, (rng,), block_shares = task
        drawn = np.zeros((strata, 2), dtype=float)  # (count, sum) per stratum
        if block.size == 0 or not block_shares.any():
            return drawn
        values = block.column(column)
        assignments = np.clip(np.digitize(values, edges[1:-1]), 0, strata - 1)
        for stratum in range(strata):
            share = int(block_shares[stratum])
            if share <= 0:
                continue
            members = values[assignments == stratum]
            share = min(share, members.size)
            if share <= 0:
                continue
            sample = members[rng.choice(members.size, size=share, replace=False)]
            drawn[stratum] = (share, sample.sum())
        return drawn

    drawn_stats = np.sum(
        run(
            sample_partial,
            [
                (block, bundle, shares[index])
                for index, (block, bundle) in enumerate(zip(store.blocks, bundles))
            ],
        ),
        axis=0,
    )
    total_drawn = int(drawn_stats[:, 0].sum())
    if total_drawn == 0:
        raise SamplingError("error-bounded sampling produced an empty sample")
    estimate = 0.0
    for stratum in range(strata):
        count = drawn_stats[stratum, 0]
        if count <= 0:
            continue
        estimate += (stratum_sizes[stratum] / population) * (
            drawn_stats[stratum, 1] / count
        )
    return SampleEstimate(
        value=float(estimate),
        sample_size=total_drawn,
        sampling_rate=rate,
        method=aggregator.method,
        details={"strata": strata, "allocations": [int(a) for a in allocations]},
    )


def _block_kernel(aggregator, store, column, rate, pre_rng, seeds, run) -> SampleEstimate:
    block_count = store.block_count
    if block_count == 0:
        raise SamplingError("block store has no blocks")
    chosen_count = max(1, int(round(aggregator.block_fraction * block_count)))
    chosen = set(
        int(index)
        for index in pre_rng.choice(block_count, size=chosen_count, replace=False)
    )
    total_rows = float(store.block_sizes().sum())
    budget = max(1, int(round(rate * total_rows)))
    per_block = max(1, budget // chosen_count)
    bundles = partition_generators(seeds, 1)

    def partial(task) -> RegionMoments:
        index, block, (rng,) = task
        if index not in chosen or block.size == 0:
            return RegionMoments()
        return RegionMoments.from_values(block.sample_column(column, per_block, rng))

    merged = _merged_moments(
        run(
            partial,
            [
                (index, block, bundle)
                for index, (block, bundle) in enumerate(zip(store.blocks, bundles))
            ],
        )
    )
    if merged.count == 0:
        raise SamplingError("block-level sampling produced an empty sample")
    return SampleEstimate(
        value=float(merged.total / merged.count),
        sample_size=merged.count,
        sampling_rate=rate,
        method=aggregator.method,
        details={"blocks_used": sorted(chosen), "per_block": per_block},
    )


_KERNELS = {
    "US": _us_kernel,
    "STS": _sts_kernel,
    "MV": _mv_kernel,
    "MVB": _mvb_kernel,
    "SLEV": _slev_kernel,
    "BILEVEL": _bilevel_kernel,
    "EBS": _ebs_kernel,
    "BLOCK": _block_kernel,
}
