"""Benchmark logic for the partition-parallel scan backend.

``benchmarks/bench_parallel_scan.py`` is a thin CLI over this module so the
measurement code is importable (and unit-testable) like everything else.

Two things are measured on one multi-block table:

* **throughput** — wall-clock of the serial aggregator versus the partition
  backend at increasing parallelism (best-of-``repeats`` to damp scheduler
  noise);
* **determinism** — the same seed must give bit-identical estimates and CI
  bounds at parallelism 1, 2 and 4 (the contract of
  :mod:`repro.parallel.seeding`).

The determinism check is unconditional.  The speed check needs at least two
usable cores to be physically winnable, so :func:`run_benchmark` reports
``speedup_expected`` and the smoke harness only enforces "parallel beats
serial" when the machine can deliver it (CI runners can; a 1-core container
cannot).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.parallel.isla import PartitionParallelAggregator
from repro.parallel.pool import ScanPool
from repro.storage.blockstore import BlockStore

__all__ = ["BenchReport", "build_bench_store", "run_benchmark", "format_report"]

#: parallelism levels the determinism contract is asserted over
DETERMINISM_LEVELS: Tuple[int, ...] = (1, 2, 4)


@dataclass
class BenchReport:
    """Everything one benchmark run measured."""

    rows: int
    blocks: int
    serial_seconds: float
    parallel_seconds: Dict[int, float] = field(default_factory=dict)
    deterministic: bool = False
    determinism_values: Dict[int, float] = field(default_factory=dict)
    determinism_bounds: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    speedup_expected: bool = False

    @property
    def best_parallel_seconds(self) -> float:
        return min(self.parallel_seconds.values())

    @property
    def speedup(self) -> float:
        """Serial wall-clock over the best parallel wall-clock."""
        return self.serial_seconds / max(self.best_parallel_seconds, 1e-12)

    @property
    def parallel_beats_serial(self) -> bool:
        return self.best_parallel_seconds < self.serial_seconds

    def passed(self) -> bool:
        """The smoke criterion: determinism always, speed when winnable."""
        if not self.deterministic:
            return False
        if self.speedup_expected and not self.parallel_beats_serial:
            return False
        return True


def build_bench_store(
    rows: int, blocks: int, seed: int = 0, name: str = "bench"
) -> BlockStore:
    """A multi-block table with per-block mean drift (non-trivial to sample)."""
    rng = np.random.default_rng(seed)
    per_block = max(1, rows // blocks)
    arrays = [
        rng.normal(100.0 + 3.0 * index, 20.0, size=per_block)
        for index in range(blocks)
    ]
    return BlockStore.from_block_arrays(name, arrays)


def _time_best(function, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    rows: int = 400_000,
    blocks: int = 16,
    seed: int = 42,
    repeats: int = 3,
    parallelism_levels: Sequence[int] = (2, 4),
    config: Optional[ISLAConfig] = None,
) -> BenchReport:
    """Benchmark serial vs partition-parallel ISLA on one synthetic table."""
    store = build_bench_store(rows, blocks, seed=seed)
    config = config or ISLAConfig(precision=0.5)
    report = BenchReport(
        rows=store.total_rows,
        blocks=store.block_count,
        serial_seconds=0.0,
        speedup_expected=(os.cpu_count() or 1) >= 2,
    )

    serial = ISLAAggregator(config, seed=seed)
    report.serial_seconds = _time_best(lambda: serial.aggregate_avg(store), repeats)

    with ScanPool(max_workers=max(parallelism_levels)) as pool:
        for level in parallelism_levels:
            aggregator = PartitionParallelAggregator(
                config, seed=seed, pool=pool, parallelism=level
            )
            report.parallel_seconds[level] = _time_best(
                lambda: aggregator.aggregate_avg(store), repeats
            )

        # Determinism: same seed, varying parallelism — values and CI bounds
        # must be bit-identical, not merely approximately equal.
        for level in DETERMINISM_LEVELS:
            aggregator = PartitionParallelAggregator(
                config, seed=seed, pool=pool, parallelism=level
            )
            result = aggregator.aggregate_avg(store)
            report.determinism_values[level] = result.value
            report.determinism_bounds[level] = (
                result.interval.low,
                result.interval.high,
            )

    values = set(report.determinism_values.values())
    bounds = set(report.determinism_bounds.values())
    report.deterministic = len(values) == 1 and len(bounds) == 1
    return report


def format_report(report: BenchReport) -> str:
    """Human-readable benchmark report."""
    lines: List[str] = [
        f"parallel scan benchmark — {report.rows} rows in {report.blocks} blocks",
        f"  serial            {report.serial_seconds * 1000.0:8.1f} ms",
    ]
    for level in sorted(report.parallel_seconds):
        seconds = report.parallel_seconds[level]
        lines.append(
            f"  parallelism={level:<3d}   {seconds * 1000.0:8.1f} ms"
            f"  ({report.serial_seconds / max(seconds, 1e-12):4.2f}x)"
        )
    lines.append(
        f"  determinism (p={list(DETERMINISM_LEVELS)}): "
        + ("bit-identical" if report.deterministic else "MISMATCH "
           + repr(report.determinism_values))
    )
    if not report.speedup_expected:
        lines.append(
            "  speed check skipped: single usable core "
            "(os.cpu_count() < 2), parallel cannot beat serial here"
        )
    lines.append("  PASS" if report.passed() else "  FAIL")
    return "\n".join(lines)
