"""The seed-determinism contract shared by ``serve`` and ``parallel``.

Both concurrency layers of the system follow one rule so that seeded runs
are bit-for-bit reproducible regardless of how much hardware executes them:

**every independently scheduled unit of randomness gets its own
``np.random.SeedSequence`` child, spawned from one root in a canonical
order that does not depend on worker count or scheduling.**

* The serving layer (:mod:`repro.serve`) spawns one child per *submitted
  query*, in submission order, so a seeded :class:`~repro.serve.QueryService`
  answers identically no matter how its worker threads interleave.
* The parallel scan backend (:mod:`repro.parallel`) spawns one child per
  *partition* (storage block), in canonical block order, plus one leading
  child for the pre-scan phase (pilot sampling / pre-estimation).  Worker
  threads only decide *when* a partition runs, never *which random stream*
  it consumes, so estimates and confidence bounds are bit-identical at
  parallelism 1, 2, 4, ... for the same seed.

The two layers compose: a served query's child seed becomes the root of
that query's partition spawn.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["SeedLike", "as_seed_sequence", "spawn_scan_seeds", "partition_generators"]

#: anything the scan backend accepts as a reproducibility root
SeedLike = Union[None, int, np.integer, np.random.SeedSequence, np.random.Generator]


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalise ``seed`` into a :class:`np.random.SeedSequence` root.

    ``None`` and integers build a fresh sequence; an existing sequence is
    *rebuilt* from its entropy and spawn key (the serving layer passes the
    per-query child it spawned at submit time) so that spawning partition
    children never mutates the caller's object — the same root therefore
    always yields the same partition seeds, no matter how many scans it
    roots; a ``Generator`` contributes its own bit generator's sequence,
    so explicitly-seeded generators stay reproducible.
    """
    if isinstance(seed, np.random.Generator):
        state_seq = seed.bit_generator.seed_seq
        seed = state_seq if isinstance(state_seq, np.random.SeedSequence) else None
    if isinstance(seed, np.random.SeedSequence):
        return np.random.SeedSequence(
            entropy=seed.entropy, spawn_key=seed.spawn_key
        )
    return np.random.SeedSequence(seed)


def spawn_scan_seeds(
    seed: SeedLike, partition_count: int
) -> Tuple[np.random.SeedSequence, List[np.random.SeedSequence]]:
    """Spawn ``(pre_seed, partition_seeds)`` for one partition-parallel scan.

    The first child seeds the scan's serial pre-phase (pilot samples,
    pre-estimation, block selection); the remaining ``partition_count``
    children seed the partitions in canonical partition order.  The spawn
    depends only on ``seed`` and ``partition_count`` — never on the pool
    size — which is what makes seeded scans bit-identical across
    parallelism levels.
    """
    if partition_count < 0:
        raise ValueError(f"partition_count must be non-negative, got {partition_count}")
    root = as_seed_sequence(seed)
    children = root.spawn(partition_count + 1)
    return children[0], list(children[1:])


def partition_generators(
    partition_seeds: Sequence[np.random.SeedSequence],
    streams_per_partition: int = 1,
) -> List[List[np.random.Generator]]:
    """Build per-partition generator bundles from spawned partition seeds.

    Multi-phase estimators (e.g. BILEVEL's pilot-then-sample passes) need
    more than one independent stream per partition; each partition's seed
    spawns ``streams_per_partition`` grandchildren so every phase has its
    own stream, again in a canonical order.
    """
    if streams_per_partition < 1:
        raise ValueError(
            f"streams_per_partition must be positive, got {streams_per_partition}"
        )
    bundles: List[List[np.random.Generator]] = []
    for child in partition_seeds:
        grandchildren = child.spawn(streams_per_partition)
        bundles.append([np.random.default_rng(grand) for grand in grandchildren])
    return bundles


def partition_rng(seed: Optional[np.random.SeedSequence]) -> np.random.Generator:
    """A generator for one partition task (tiny convenience wrapper)."""
    return np.random.default_rng(seed)
