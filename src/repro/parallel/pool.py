"""The scan pool: bounded thread workers shared by every partition scan.

One process gets one :class:`ScanPool` (lazily created, sized to the
hardware unless ``REPRO_PARALLELISM`` overrides it).  Every parallel scan —
whether issued directly through :class:`~repro.query.engine.AQPEngine` or by
the serving layer's worker threads — submits its partition shards into this
shared pool, so ``serve`` workers never oversubscribe the machine: total
scan threads stay bounded by the pool size no matter how many queries are
in flight.

Determinism is *not* the pool's job: partitions carry their own random
streams (see :mod:`repro.parallel.seeding`), so the pool is free to schedule
shards in any order on any thread.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from repro import faults, obs

__all__ = [
    "ScanPool",
    "PartitionFailure",
    "PartialScanResult",
    "shared_scan_pool",
    "reset_shared_scan_pool",
    "default_parallelism",
]

T = TypeVar("T")
U = TypeVar("U")

#: environment override for the shared pool size
ENV_PARALLELISM = "REPRO_PARALLELISM"


def default_parallelism() -> int:
    """Default worker count: ``REPRO_PARALLELISM`` or the CPU count.

    A malformed override is not silently ignored — a warning names the bad
    value before falling back to the CPU count, so a typo in a deployment
    environment cannot quietly change the machine's scan concurrency.
    """
    override = os.environ.get(ENV_PARALLELISM)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            warnings.warn(
                f"ignoring malformed {ENV_PARALLELISM}={override!r} "
                f"(not an integer); falling back to the CPU count",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class PartitionFailure:
    """One partition that could not be scanned."""

    #: position of the partition in the scanned item sequence
    index: int
    #: the partition's stable key (its block id) when the caller supplied one
    key: Optional[int]
    #: the exception that killed the scan task
    error: BaseException
    #: True when the failure came from the fault-injection framework
    injected: bool = False


@dataclass
class PartialScanResult:
    """What a degraded-aware scan produced: survivors plus typed failures.

    ``results`` is aligned with the scanned items (``None`` at failed
    positions) so multi-phase callers can keep partition bookkeeping;
    :meth:`completed` gives the surviving values in partition order.
    """

    results: List[Any]
    failures: List[PartitionFailure] = field(default_factory=list)
    #: speculative re-executions launched by the straggler watchdog
    speculated: int = 0

    @property
    def ok(self) -> bool:
        """True when every partition scanned cleanly."""
        return not self.failures

    @property
    def failed_indices(self) -> List[int]:
        return [failure.index for failure in self.failures]

    @property
    def failed_keys(self) -> List[int]:
        """Keys of the failed partitions (those that carried one)."""
        return [failure.key for failure in self.failures if failure.key is not None]

    def completed(self) -> List[Any]:
        """The surviving results, in partition order."""
        failed = set(self.failed_indices)
        return [value for index, value in enumerate(self.results) if index not in failed]


class ScanPool:
    """A bounded thread pool that maps ordered partition work.

    The pool executes *shards* — contiguous runs of partitions — so the
    per-task Python overhead is amortised while per-partition random
    streams keep results independent of the shard split.  Results always
    come back in partition order.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max(1, int(max_workers if max_workers is not None else default_parallelism()))
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ API
    def map_partitions(
        self,
        function: Callable[[U], T],
        items: Sequence[U],
        parallelism: int,
    ) -> List[T]:
        """Apply ``function`` to every item, sharded across the pool.

        ``parallelism`` is the number of shards this scan is willing to
        run concurrently; the effective concurrency is additionally capped
        by the pool's worker count (shards beyond it simply queue).  With
        one shard (or one item) the work runs inline on the caller's
        thread — no pool, no handoff — which keeps ``parallelism=1``
        byte-for-byte equivalent to the threaded path.
        """
        items = list(items)
        shard_count = max(1, min(int(parallelism), len(items)))
        if shard_count <= 1:
            return [function(item) for item in items]

        # Contiguous shards in partition order; sizes differ by at most 1.
        bounds = [
            (len(items) * index) // shard_count for index in range(shard_count + 1)
        ]
        shards = [items[bounds[i] : bounds[i + 1]] for i in range(shard_count)]
        # Worker threads start from an empty contextvars context; one copy
        # per shard keeps their spans attached to the caller's trace (a
        # Context cannot be entered concurrently, hence one per shard).
        contexts = [contextvars.copy_context() for _ in shards]

        def run_shard(shard: Sequence[U], context: contextvars.Context) -> List[T]:
            return context.run(lambda: [function(item) for item in shard])

        executor = self._ensure_executor()
        obs.counter("parallel.shards", shard_count)
        futures = [
            executor.submit(run_shard, shard, context)
            for shard, context in zip(shards, contexts)
        ]
        results: List[T] = []
        for future in futures:
            results.extend(future.result())
        return results

    def scan_partial(
        self,
        function: Callable[[U], T],
        items: Sequence[U],
        parallelism: int,
        *,
        table: Optional[str] = None,
        keys: Optional[Sequence[int]] = None,
        straggler_timeout: Optional[float] = None,
    ) -> PartialScanResult:
        """Degraded-aware scan: per-partition failures are captured, not raised.

        Each item runs through the fault-injection guard (when a plan is
        active) and its own try/except, so one failing partition costs the
        caller *that partition* — never the shard or the scan.  ``keys``
        carries the partitions' stable identifiers (block ids) used both for
        deterministic fault decisions and for the failure report.

        With ``straggler_timeout`` (seconds) set, partitions run as
        individual tasks under a watchdog: any task still running past the
        deadline is speculatively re-executed.  Because partitions own their
        random streams (:mod:`repro.parallel.seeding`), the speculative copy
        is bit-identical to the original, so whichever finishes first is
        *the* answer — speculation can never change a result.
        """
        items = list(items)
        if keys is not None and len(keys) != len(items):
            raise ValueError(
                f"keys ({len(keys)}) must align with items ({len(items)})"
            )

        def run_one(index: int, item: U) -> T:
            injector = faults.active()
            if injector is not None:
                key = keys[index] if keys is not None else index
                injector.partition_scan(table, key)
            return function(item)

        def failure(index: int, error: BaseException) -> PartitionFailure:
            from repro.errors import InjectedFault

            obs.counter("faults.partition.failed")
            return PartitionFailure(
                index=index,
                key=keys[index] if keys is not None else None,
                error=error,
                injected=isinstance(error, InjectedFault),
            )

        shard_count = max(1, min(int(parallelism), len(items)))
        if shard_count <= 1:
            # Inline on the caller's thread — same code path as
            # ``map_partitions`` at parallelism 1, plus failure capture.
            result = PartialScanResult(results=[None] * len(items))
            for index, item in enumerate(items):
                try:
                    result.results[index] = run_one(index, item)
                except Exception as exc:  # noqa: BLE001 - typed into the report
                    result.failures.append(failure(index, exc))
            return result

        executor = self._ensure_executor()
        if straggler_timeout is None:
            return self._scan_sharded(executor, run_one, failure, items, shard_count)
        return self._scan_speculative(
            executor, run_one, failure, items, straggler_timeout
        )

    def _scan_sharded(
        self, executor, run_one, failure, items: Sequence, shard_count: int
    ) -> PartialScanResult:
        """Contiguous shards (the fast path), with per-item failure capture."""
        bounds = [
            (len(items) * index) // shard_count for index in range(shard_count + 1)
        ]
        shards = [
            list(range(bounds[i], bounds[i + 1])) for i in range(shard_count)
        ]
        contexts = [contextvars.copy_context() for _ in shards]
        obs.counter("parallel.shards", shard_count)

        def run_shard(indices: Sequence[int], context: contextvars.Context):
            def body():
                outcomes = []
                for index in indices:
                    try:
                        outcomes.append((index, True, run_one(index, items[index])))
                    except Exception as exc:  # noqa: BLE001 - typed into the report
                        outcomes.append((index, False, exc))
                return outcomes

            return context.run(body)

        futures = [
            executor.submit(run_shard, shard, context)
            for shard, context in zip(shards, contexts)
        ]
        result = PartialScanResult(results=[None] * len(items))
        for future in futures:
            for index, ok, value in future.result():
                if ok:
                    result.results[index] = value
                else:
                    result.failures.append(failure(index, value))
        result.failures.sort(key=lambda f: f.index)
        return result

    def _scan_speculative(
        self, executor, run_one, failure, items: Sequence, straggler_timeout: float
    ) -> PartialScanResult:
        """Per-item tasks under a straggler watchdog.

        Items whose first attempt is still running ``straggler_timeout``
        seconds after the scan started get one speculative duplicate; the
        first attempt to finish (either copy) resolves the item.
        """
        result = PartialScanResult(results=[None] * len(items))

        def submit(index: int) -> Future:
            context = contextvars.copy_context()
            return executor.submit(context.run, run_one, index, items[index])

        attempts: dict = {index: [submit(index)] for index in range(len(items))}
        unresolved = set(attempts)
        speculated: set = set()
        deadline = time.monotonic() + straggler_timeout
        while unresolved:
            pending = [
                future
                for index in unresolved
                for future in attempts[index]
                if not future.done()
            ]
            timeout = max(0.0, deadline - time.monotonic()) if not speculated else None
            if pending:
                wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
            for index in sorted(unresolved):
                done = next((f for f in attempts[index] if f.done()), None)
                if done is None:
                    continue
                unresolved.discard(index)
                error = done.exception()
                if error is not None:
                    result.failures.append(failure(index, error))
                else:
                    result.results[index] = done.result()
            if unresolved and not speculated and time.monotonic() >= deadline:
                # The watchdog fires once: every still-running partition gets
                # exactly one speculative duplicate.
                for index in sorted(unresolved):
                    attempts[index].append(submit(index))
                    speculated.add(index)
                obs.counter("faults.speculated", len(speculated))
        result.speculated = len(speculated)
        result.failures.sort(key=lambda f: f.index)
        return result

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ScanPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------ internals
    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-scan",
                )
                obs.gauge("parallel.pool.size", self.max_workers)
            return self._executor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "live" if self._executor is not None else "idle"
        return f"ScanPool(max_workers={self.max_workers}, {state})"


_shared_lock = threading.Lock()
_shared_pool: Optional[ScanPool] = None


def shared_scan_pool() -> ScanPool:
    """The process-wide scan pool (lazily created).

    Engine executors and serving workers all scan through this one pool, so
    concurrent queries share the machine instead of multiplying thread
    counts (``serve`` workers × scan parallelism).
    """
    global _shared_pool
    with _shared_lock:
        if _shared_pool is None:
            _shared_pool = ScanPool()
        return _shared_pool


def reset_shared_scan_pool() -> None:
    """Drop (and shut down) the shared pool — used by tests and benchmarks."""
    global _shared_pool
    with _shared_lock:
        pool, _shared_pool = _shared_pool, None
    if pool is not None:
        pool.close()
