"""The scan pool: bounded thread workers shared by every partition scan.

One process gets one :class:`ScanPool` (lazily created, sized to the
hardware unless ``REPRO_PARALLELISM`` overrides it).  Every parallel scan —
whether issued directly through :class:`~repro.query.engine.AQPEngine` or by
the serving layer's worker threads — submits its partition shards into this
shared pool, so ``serve`` workers never oversubscribe the machine: total
scan threads stay bounded by the pool size no matter how many queries are
in flight.

Determinism is *not* the pool's job: partitions carry their own random
streams (see :mod:`repro.parallel.seeding`), so the pool is free to schedule
shards in any order on any thread.
"""

from __future__ import annotations

import contextvars
import os
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro import obs

__all__ = ["ScanPool", "shared_scan_pool", "reset_shared_scan_pool", "default_parallelism"]

T = TypeVar("T")
U = TypeVar("U")

#: environment override for the shared pool size
ENV_PARALLELISM = "REPRO_PARALLELISM"


def default_parallelism() -> int:
    """Default worker count: ``REPRO_PARALLELISM`` or the CPU count.

    A malformed override is not silently ignored — a warning names the bad
    value before falling back to the CPU count, so a typo in a deployment
    environment cannot quietly change the machine's scan concurrency.
    """
    override = os.environ.get(ENV_PARALLELISM)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            warnings.warn(
                f"ignoring malformed {ENV_PARALLELISM}={override!r} "
                f"(not an integer); falling back to the CPU count",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, os.cpu_count() or 1)


class ScanPool:
    """A bounded thread pool that maps ordered partition work.

    The pool executes *shards* — contiguous runs of partitions — so the
    per-task Python overhead is amortised while per-partition random
    streams keep results independent of the shard split.  Results always
    come back in partition order.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max(1, int(max_workers if max_workers is not None else default_parallelism()))
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ API
    def map_partitions(
        self,
        function: Callable[[U], T],
        items: Sequence[U],
        parallelism: int,
    ) -> List[T]:
        """Apply ``function`` to every item, sharded across the pool.

        ``parallelism`` is the number of shards this scan is willing to
        run concurrently; the effective concurrency is additionally capped
        by the pool's worker count (shards beyond it simply queue).  With
        one shard (or one item) the work runs inline on the caller's
        thread — no pool, no handoff — which keeps ``parallelism=1``
        byte-for-byte equivalent to the threaded path.
        """
        items = list(items)
        shard_count = max(1, min(int(parallelism), len(items)))
        if shard_count <= 1:
            return [function(item) for item in items]

        # Contiguous shards in partition order; sizes differ by at most 1.
        bounds = [
            (len(items) * index) // shard_count for index in range(shard_count + 1)
        ]
        shards = [items[bounds[i] : bounds[i + 1]] for i in range(shard_count)]
        # Worker threads start from an empty contextvars context; one copy
        # per shard keeps their spans attached to the caller's trace (a
        # Context cannot be entered concurrently, hence one per shard).
        contexts = [contextvars.copy_context() for _ in shards]

        def run_shard(shard: Sequence[U], context: contextvars.Context) -> List[T]:
            return context.run(lambda: [function(item) for item in shard])

        executor = self._ensure_executor()
        obs.counter("parallel.shards", shard_count)
        futures = [
            executor.submit(run_shard, shard, context)
            for shard, context in zip(shards, contexts)
        ]
        results: List[T] = []
        for future in futures:
            results.extend(future.result())
        return results

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ScanPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------ internals
    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-scan",
                )
                obs.gauge("parallel.pool.size", self.max_workers)
            return self._executor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "live" if self._executor is not None else "idle"
        return f"ScanPool(max_workers={self.max_workers}, {state})"


_shared_lock = threading.Lock()
_shared_pool: Optional[ScanPool] = None


def shared_scan_pool() -> ScanPool:
    """The process-wide scan pool (lazily created).

    Engine executors and serving workers all scan through this one pool, so
    concurrent queries share the machine instead of multiplying thread
    counts (``serve`` workers × scan parallelism).
    """
    global _shared_pool
    with _shared_lock:
        if _shared_pool is None:
            _shared_pool = ScanPool()
        return _shared_pool


def reset_shared_scan_pool() -> None:
    """Drop (and shut down) the shared pool — used by tests and benchmarks."""
    global _shared_pool
    with _shared_lock:
        pool, _shared_pool = _shared_pool, None
    if pool is not None:
        pool.close()
