"""Concurrency stress tests: versioned Catalog + ResultCache under fire.

Two layers are hammered:

* the primitives directly — reader threads racing mutator threads that
  append / re-register / touch tables, asserting the version-keyed cache
  never serves an entry across versions and that a final invalidation
  leaves nothing behind;
* the serving stack end-to-end — queries racing online appends through a
  :class:`~repro.serve.QueryService`, asserting answers stay correct and
  post-append queries never hit pre-append cache entries.

Every join carries a timeout: a deadlock shows up as a test failure, not a
hung CI job.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.query.ast import CacheSignature
from repro.query.engine import AQPEngine
from repro.query.executor import ExecutionResult
from repro.serve import CacheKey, QueryService, ResultCache, ServeConfig
from repro.storage.blockstore import BlockStore
from repro.storage.catalog import Catalog

JOIN_TIMEOUT = 20.0  # seconds; generous — only a deadlock gets near it

TABLES = ("alpha", "beta")


def _signature(table: str) -> CacheSignature:
    # The named signature AggregateQuery.cache_signature() produces.
    return CacheSignature(
        aggregate="avg", column="value", table=table, method="ISLA",
        time_budget_ms=None,
    )


def _result(table: str, version: int) -> ExecutionResult:
    return ExecutionResult(
        value=float(version),
        method="ISLA",
        aggregate="avg",
        column="value",
        table=table,
        sample_size=1,
        elapsed_seconds=0.0,
        details={"version": version},
    )


def _join_all(threads):
    deadline = time.monotonic() + JOIN_TIMEOUT
    for thread in threads:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
    stuck = [thread.name for thread in threads if thread.is_alive()]
    assert not stuck, f"deadlock suspected: threads still alive: {stuck}"


class TestCacheCatalogHammer:
    def test_no_cross_version_hit_and_clean_final_invalidation(self):
        catalog = Catalog()
        cache = ResultCache(capacity=128)
        rng = np.random.default_rng(0)
        for table in TABLES:
            catalog.register(
                BlockStore.from_array(table, rng.normal(0, 1, 64), block_count=2)
            )

        stop = threading.Event()
        errors = []
        hits = [0]
        lookups = [0]
        lock = threading.Lock()

        def reader(index: int):
            local_rng = np.random.default_rng(index)
            try:
                while not stop.is_set():
                    table = TABLES[int(local_rng.integers(len(TABLES)))]
                    version = catalog.version(table)
                    key = CacheKey(
                        signature=_signature(table), table_version=version
                    )
                    entry = cache.lookup(key, 0.5, 0.95)
                    with lock:
                        lookups[0] += 1
                    if entry is None:
                        cache.put(key, _result(table, version), 0.3, 0.95)
                    else:
                        # The one invariant that makes version-keyed caching
                        # sound: a hit can never bleed across versions.
                        if entry.key.table_version != version:
                            raise AssertionError(
                                f"stale hit: entry v{entry.key.table_version} "
                                f"served for v{version}"
                            )
                        if entry.result.details["version"] != version:
                            raise AssertionError("entry content from another version")
                        with lock:
                            hits[0] += 1
            except Exception as exc:  # noqa: BLE001 - surfaced by the main thread
                errors.append(exc)

        def mutator(index: int):
            local_rng = np.random.default_rng(1000 + index)
            try:
                for _ in range(150):
                    table = TABLES[int(local_rng.integers(len(TABLES)))]
                    action = int(local_rng.integers(3))
                    if action == 0:
                        catalog.touch(table)
                    elif action == 1:
                        catalog.register(
                            BlockStore.from_array(
                                table, local_rng.normal(0, 1, 64), block_count=2
                            )
                        )
                    else:
                        catalog.resolve(table).append_block(
                            local_rng.normal(0, 1, 16)
                        )
                        catalog.touch(table)
                    # eager invalidation, as the serving layer does on events
                    cache.invalidate_table(table)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        readers = [
            threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
            for i in range(6)
        ]
        mutators = [
            threading.Thread(target=mutator, args=(i,), name=f"mutator-{i}")
            for i in range(3)
        ]
        for thread in readers + mutators:
            thread.start()
        _join_all(mutators)
        stop.set()
        _join_all(readers)

        assert not errors, errors
        assert lookups[0] > 0

        # Final invalidation: nothing for either table may survive, at any
        # version — old keys must all miss afterwards.
        final_versions = {table: catalog.touch(table) for table in TABLES}
        for table in TABLES:
            cache.invalidate_table(table)
        assert len(cache) == 0
        for table in TABLES:
            for version in range(final_versions[table] + 1):
                key = CacheKey(signature=_signature(table), table_version=version)
                assert cache.lookup(key, 0.5, 0.95) is None

    def test_concurrent_puts_keep_cache_bounded(self):
        cache = ResultCache(capacity=16)
        errors = []

        def writer(index: int):
            try:
                for i in range(400):
                    key = CacheKey(
                        signature=("avg", "value", f"t{index}", float(i % 7), 0.95),
                        table_version=i,
                    )
                    cache.put(key, _result(f"t{index}", i), 0.3, 0.95)
                    cache.lookup(key, 0.5, 0.95)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,), name=f"writer-{i}")
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        _join_all(threads)
        assert not errors, errors
        assert len(cache) <= 16


class TestServiceUnderMutation:
    @pytest.fixture
    def engine(self) -> AQPEngine:
        engine = AQPEngine(seed=5)
        rng = np.random.default_rng(5)
        engine.register_array(
            "live", rng.normal(100.0, 5.0, 12_000), block_count=6
        )
        return engine

    def test_queries_racing_appends_stay_correct(self, engine):
        statement = "SELECT AVG(value) FROM live PRECISION 1.0 CONFIDENCE 0.99"
        service = QueryService(
            engine, ServeConfig(workers=3, max_queue=256, seed=5)
        )
        errors = []
        outcomes = []
        outcome_lock = threading.Lock()

        def querier(index: int):
            try:
                for _ in range(20):
                    outcome = service.submit(statement).outcome(timeout=JOIN_TIMEOUT)
                    with outcome_lock:
                        outcomes.append(outcome)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def appender():
            rng = np.random.default_rng(77)
            try:
                for _ in range(10):
                    engine.append_array("live", rng.normal(100.0, 5.0, 500))
                    time.sleep(0.002)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        with service:
            threads = [
                threading.Thread(target=querier, args=(i,), name=f"querier-{i}")
                for i in range(4)
            ] + [threading.Thread(target=appender, name="appender")]
            for thread in threads:
                thread.start()
            _join_all(threads)

        assert not errors, errors
        assert len(outcomes) == 80
        truth = engine.catalog.resolve("live").exact_mean()
        for outcome in outcomes:
            assert outcome.ok, outcome.error
            # Data only ever shifts by i.i.d. appends from the same
            # distribution; a very loose band still catches garbage reads.
            assert abs(outcome.result.value - truth) <= 4.0

    def test_append_invalidates_no_stale_hit_survives(self, engine):
        statement = "SELECT AVG(value) FROM live PRECISION 1.0 CONFIDENCE 0.99"
        with QueryService(engine, ServeConfig(workers=2, seed=5)) as service:
            first = service.submit(statement).outcome(timeout=JOIN_TIMEOUT)
            warmed = service.submit(statement).outcome(timeout=JOIN_TIMEOUT)
            assert first.ok and warmed.ok
            assert warmed.cache_hit  # cache warmed at the old version

            engine.append_array("live", np.full(4_000, 200.0))  # shifts the mean

            after = service.submit(statement).outcome(timeout=JOIN_TIMEOUT)
            assert after.ok
            assert not after.cache_hit  # the append invalidated the entry
            new_truth = engine.catalog.resolve("live").exact_mean()
            assert abs(after.result.value - new_truth) <= 2.0
            assert after.result.value != first.result.value

    def test_service_with_parallel_scans_under_appends(self, engine):
        # Serving concurrency on top of partition-parallel scans: workers
        # share the process-wide scan pool, results must stay correct.
        from repro.parallel import reset_shared_scan_pool

        engine.config = engine.config.with_updates(parallelism=2)
        statement = "SELECT AVG(value) FROM live PRECISION 1.0 CONFIDENCE 0.99"
        reset_shared_scan_pool()
        try:
            with QueryService(
                engine, ServeConfig(workers=3, max_queue=64, seed=5)
            ) as service:
                tickets = [service.submit(statement) for _ in range(24)]
                engine.append_array("live", np.random.default_rng(9).normal(100, 5, 500))
                tickets += [service.submit(statement) for _ in range(24)]
                outcomes = [t.outcome(timeout=JOIN_TIMEOUT) for t in tickets]
            truth = engine.catalog.resolve("live").exact_mean()
            for outcome in outcomes:
                assert outcome.ok, outcome.error
                assert outcome.result.details.get("parallelism") in (None, 2)
                assert abs(outcome.result.value - truth) <= 4.0
        finally:
            reset_shared_scan_pool()
