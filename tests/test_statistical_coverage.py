"""Property-based statistical tests: empirical CI coverage, serial vs parallel.

The system's contract is statistical: an answer with ``PRECISION e
CONFIDENCE beta`` must land within ``e`` of the truth in at least a
``beta`` fraction of runs.  These tests measure that fraction empirically
over a seeded grid of synthetic tables and precisions (>= 200 independent
trials per case, no external property-testing dependency) and assert it
stays within the statistical allowance of ``beta`` — for the serial path
and for the partition-parallel path, which must obey the *same*
distribution because parallelism only re-schedules identical random
streams (see :mod:`repro.parallel.seeding`).

The allowance is the normal-approximation noise of a coverage proportion:
``beta - 4 * sqrt(beta * (1 - beta) / trials)`` — about 0.089 below beta
at beta=0.95 and 200 trials, so a real coverage regression fails while
honest sampling noise does not.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.parallel import PartitionParallelAggregator, ScanPool
from repro.sampling import UniformAggregator
from repro.storage.blockstore import BlockStore

TRIALS = 200

#: seeded grid of (table seed, mean, std, precision) cases
GRID = [
    (11, 100.0, 20.0, 1.0),
    (23, 50.0, 5.0, 0.4),
    (37, -30.0, 10.0, 0.8),  # negative data exercises the translation offset
]


def _allowed(confidence: float, trials: int) -> float:
    return confidence - 4.0 * math.sqrt(confidence * (1.0 - confidence) / trials)


def _store(seed: int, mean: float, std: float) -> BlockStore:
    values = np.random.default_rng(seed).normal(mean, std, size=6_000)
    return BlockStore.from_array(f"cov{seed}", values, block_count=4)


def _coverage(run_trial, truth: float, precision: float) -> float:
    within = sum(
        1 for trial in range(TRIALS) if abs(run_trial(trial) - truth) <= precision
    )
    return within / TRIALS


@pytest.fixture(scope="module")
def pool():
    with ScanPool(max_workers=4) as shared:
        yield shared


class TestISLACoverage:
    @pytest.mark.parametrize("table_seed,mean,std,precision", GRID)
    def test_serial_coverage_meets_confidence(self, table_seed, mean, std, precision):
        store = _store(table_seed, mean, std)
        truth = store.exact_mean()
        config = ISLAConfig(
            precision=precision, confidence=0.95, pilot_sample_size=300
        )

        def run_trial(trial: int) -> float:
            return ISLAAggregator(config, seed=trial).aggregate_avg(store).value

        assert _coverage(run_trial, truth, precision) >= _allowed(0.95, TRIALS)

    @pytest.mark.parametrize("table_seed,mean,std,precision", GRID)
    def test_parallel_coverage_meets_confidence(
        self, pool, table_seed, mean, std, precision
    ):
        store = _store(table_seed, mean, std)
        truth = store.exact_mean()
        config = ISLAConfig(
            precision=precision, confidence=0.95, pilot_sample_size=300
        )

        def run_trial(trial: int) -> float:
            return (
                PartitionParallelAggregator(
                    config, seed=trial, pool=pool, parallelism=2
                )
                .aggregate_avg(store)
                .value
            )

        assert _coverage(run_trial, truth, precision) >= _allowed(0.95, TRIALS)

    def test_serial_and_parallel_draw_identical_samples(self, pool):
        # Stronger than equal coverage: at parallelism 1 the partition
        # backend must reproduce its own streams run-for-run, and the
        # per-trial answers of parallelism 1 and 4 must agree exactly,
        # so both paths share one sampling distribution by construction.
        store = _store(3, 100.0, 20.0)
        config = ISLAConfig(precision=1.0, confidence=0.95, pilot_sample_size=300)
        for trial in range(25):
            narrow = PartitionParallelAggregator(
                config, seed=trial, pool=pool, parallelism=1
            ).aggregate_avg(store)
            wide = PartitionParallelAggregator(
                config, seed=trial, pool=pool, parallelism=4
            ).aggregate_avg(store)
            assert narrow.value == wide.value
            assert narrow.sample_size == wide.sample_size


class TestBaselineCoverage:
    def test_uniform_precision_target_coverage(self, pool):
        # The Eq.-1 rate derivation must deliver its promised coverage
        # through the parallel kernel as well.
        store = _store(51, 80.0, 12.0)
        truth = store.exact_mean()
        precision, confidence = 0.8, 0.95

        def run_trial(trial: int) -> float:
            return (
                UniformAggregator()
                .aggregate(
                    store,
                    precision=precision,
                    confidence=confidence,
                    parallelism=2,
                    pool=pool,
                    rng=np.random.default_rng(trial),
                )
                .value
            )

        assert _coverage(run_trial, truth, precision) >= _allowed(confidence, TRIALS)
