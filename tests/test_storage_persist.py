"""Unit tests for the durable block store (snapshot, WAL, mmap, recovery)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import EmptyDataError, StorageError
from repro.query.engine import AQPEngine
from repro.storage.block import Block
from repro.storage.blockstore import BlockStore
from repro.storage.persist import (
    DurableBlockStore,
    load_manifest,
    open_store,
    save_store,
)
from repro.storage.table import Table
from repro.storage.wal import WalRecord, WriteAheadLog, replay_wal

STMT = "SELECT AVG(value) FROM {table} PRECISION 0.5 CONFIDENCE 0.95"


def _make_store(rng, name="t", rows=5000, blocks=8) -> BlockStore:
    return BlockStore.from_array(name, rng.normal(50.0, 5.0, rows), block_count=blocks)


class TestWal:
    def test_record_round_trip(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        values = rng.normal(0.0, 1.0, 100)
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(block_id=3, column="value", values=values, version=2))
            wal.append(WalRecord(block_id=4, column="value", values=values * 2, version=3))
        records, torn = replay_wal(path)
        assert torn == 0
        assert [r.block_id for r in records] == [3, 4]
        assert [r.version for r in records] == [2, 3]
        assert np.array_equal(records[0].values, values)
        assert np.array_equal(records[1].values, values * 2)

    def test_missing_file_is_empty(self, tmp_path):
        records, torn = replay_wal(tmp_path / "absent.log")
        assert records == [] and torn == 0

    def test_torn_tail_discarded_at_every_cut(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        values = rng.normal(0.0, 1.0, 16)
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(block_id=0, column="value", values=values, version=1))
        intact = path.read_bytes()
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(block_id=1, column="value", values=values, version=2))
        full = path.read_bytes()
        # cut the second record at every byte boundary: the first record
        # must always survive, the torn second must never half-apply
        for cut in range(len(intact), len(full)):
            path.write_bytes(full[:cut])
            records, torn = replay_wal(path)
            assert len(records) == 1, f"cut at byte {cut}"
            assert torn == cut - len(intact)
        path.write_bytes(full)
        records, torn = replay_wal(path)
        assert len(records) == 2 and torn == 0

    def test_corrupt_payload_fails_crc(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(block_id=0, column="value",
                                 values=rng.normal(0.0, 1.0, 64), version=1))
        buffer = bytearray(path.read_bytes())
        buffer[len(buffer) // 2] ^= 0xFF
        path.write_bytes(bytes(buffer))
        records, torn = replay_wal(path)
        assert records == [] and torn == len(buffer)

    def test_garbage_prefix_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"this is not a log")
        records, torn = replay_wal(path)
        assert records == [] and torn == 17

    def test_closed_log_refuses_appends(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(StorageError):
            wal.append(WalRecord(block_id=0, column="value",
                                 values=np.ones(3), version=1))


class TestSnapshot:
    def test_round_trip_bit_identical(self, tmp_path, rng):
        store = _make_store(rng)
        save_store(store, tmp_path / "t", table_version=5)
        durable = open_store(tmp_path / "t", mmap=False)
        assert durable.table_version == 5
        assert durable.store.block_count == store.block_count
        assert durable.store.default_column == store.default_column
        for original, loaded in zip(store.blocks, durable.store.blocks):
            assert loaded.block_id == original.block_id
            assert np.array_equal(loaded.column("value"), original.column("value"))
        durable.close()

    def test_multi_column_round_trip(self, tmp_path, rng):
        table = Table.from_mapping(
            "multi", {"a": rng.normal(0, 1, 900), "b": rng.normal(5, 2, 900)}
        )
        store = BlockStore.from_table(table, block_count=3, default_column="b")
        save_store(store, tmp_path / "multi")
        durable = open_store(tmp_path / "multi", mmap=False)
        assert durable.store.default_column == "b"
        assert set(durable.store.column_names) == {"a", "b"}
        for original, loaded in zip(store.blocks, durable.store.blocks):
            for column in ("a", "b"):
                assert np.array_equal(loaded.column(column), original.column(column))
        durable.close()

    def test_mmap_open_is_zero_copy(self, tmp_path, rng):
        store = _make_store(rng)
        save_store(store, tmp_path / "t")
        durable = open_store(tmp_path / "t", mmap=True)
        for block in durable.store.blocks:
            values = block.column("value")
            assert isinstance(values, np.memmap) or isinstance(values.base, np.memmap)
        durable.close()

    def test_empty_store_refused(self, tmp_path):
        with pytest.raises(StorageError):
            save_store(BlockStore(name="empty"), tmp_path / "empty")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            load_manifest(tmp_path)

    def test_unsupported_format_version(self, tmp_path, rng):
        store = _make_store(rng)
        save_store(store, tmp_path / "t")
        manifest_path = tmp_path / "t" / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            open_store(tmp_path / "t")

    def test_missing_block_file(self, tmp_path, rng):
        store = _make_store(rng, blocks=2)
        save_store(store, tmp_path / "t")
        next(iter((tmp_path / "t" / "blocks").glob("*.npy"))).unlink()
        with pytest.raises(StorageError):
            open_store(tmp_path / "t")

    def test_snapshot_resets_wal(self, tmp_path, rng):
        store = _make_store(rng)
        durable = DurableBlockStore.create(store, tmp_path / "t")
        durable.append_block(rng.normal(0, 1, 40))
        assert (tmp_path / "t" / "wal.log").stat().st_size > 0
        durable.checkpoint()
        assert (tmp_path / "t" / "wal.log").stat().st_size == 0
        # the checkpointed snapshot carries the appended block
        reopened = open_store(tmp_path / "t", mmap=False)
        assert reopened.store.block_count == store.block_count + 1
        assert reopened.store.total_rows == durable.store.total_rows
        assert reopened.table_version == durable.table_version
        assert reopened.recovered_appends == 0
        durable.close()
        reopened.close()


class TestDurableAppends:
    def test_append_replays_on_open(self, tmp_path, rng):
        store = _make_store(rng)
        durable = DurableBlockStore.create(store, tmp_path / "t", table_version=1)
        batch = rng.normal(0, 1, 120)
        durable.append_block(batch)
        durable.close()  # no checkpoint: the append lives only in the WAL

        recovered = open_store(tmp_path / "t")
        assert recovered.recovered_appends == 1
        assert recovered.table_version == 2
        assert np.array_equal(recovered.store.blocks[-1].column("value"), batch)
        recovered.close()

    def test_append_validates_before_logging(self, tmp_path, rng):
        durable = DurableBlockStore.create(_make_store(rng), tmp_path / "t")
        with pytest.raises(StorageError):
            durable.append_block(np.ones(5), column="other")
        with pytest.raises(EmptyDataError):
            durable.append_block(np.empty(0))
        durable.close()
        # neither invalid append reached the log
        assert replay_wal(tmp_path / "t" / "wal.log")[0] == []

    def test_closed_store_refuses_mutation(self, tmp_path, rng):
        durable = DurableBlockStore.create(_make_store(rng), tmp_path / "t")
        durable.close()
        with pytest.raises(StorageError):
            durable.append_block(np.ones(3))
        with pytest.raises(StorageError):
            durable.checkpoint()


class TestEngineIntegration:
    def test_save_open_query_parity(self, tmp_path, rng):
        values = rng.normal(100.0, 20.0, 40_000)
        with AQPEngine(seed=11) as memory_engine:
            memory_engine.register_array("t", values, block_count=8)
            expected = memory_engine.execute(STMT.format(table="t"))
            memory_engine.save("t", tmp_path / "t")

        with AQPEngine(seed=11) as disk_engine:
            assert disk_engine.open(tmp_path / "t") == "t"
            result = disk_engine.execute(STMT.format(table="t"))
        assert result.value == expected.value
        assert result.sample_size == expected.sample_size

    def test_open_restores_catalog_version(self, tmp_path, rng):
        values = rng.normal(100.0, 20.0, 8_000)
        with AQPEngine(seed=0) as engine:
            engine.register_array("t", values, block_count=4)
            engine.append_array("t", rng.normal(0, 1, 50))
            engine.append_array("t", rng.normal(0, 1, 50))
            assert engine.catalog.version("t") == 3
            engine.save("t", tmp_path / "t")

        with AQPEngine(seed=0) as reopened:
            reopened.open(tmp_path / "t")
            assert reopened.catalog.version("t") == 3

    def test_durable_append_array_is_wal_logged(self, tmp_path, rng):
        values = rng.normal(100.0, 20.0, 8_000)
        with AQPEngine(seed=0) as engine:
            engine.register_array("t", values, block_count=4)
            engine.save("t", tmp_path / "t")
            engine.append_array("t", rng.normal(0, 1, 64))
            assert engine.catalog.version("t") == 2

        with AQPEngine(seed=0) as reopened:
            reopened.open(tmp_path / "t")
            assert reopened.catalog.version("t") == 2
            assert reopened.catalog.resolve("t").total_rows == 8_000 + 64

    def test_recovered_appends_touch_subscribers(self, tmp_path, rng):
        values = rng.normal(100.0, 20.0, 8_000)
        with AQPEngine(seed=0) as engine:
            engine.register_array("t", values, block_count=4)
            engine.save("t", tmp_path / "t")
            engine.append_array("t", rng.normal(0, 1, 64))

        events = []
        with AQPEngine(seed=0) as reopened:
            reopened.catalog.subscribe(
                lambda event, name, version: events.append((event, name, version))
            )
            reopened.open(tmp_path / "t")
        assert ("register", "t", 1) in events
        assert ("touch", "t", 2) in events

    def test_open_under_alias(self, tmp_path, rng):
        with AQPEngine(seed=0) as engine:
            engine.register_array("t", rng.normal(0, 1, 1000), block_count=2)
            engine.save("t", tmp_path / "t")
        with AQPEngine(seed=0) as other:
            assert other.open(tmp_path / "t", name="renamed") == "renamed"
            assert "renamed" in other.tables


class TestCatalogPersistedVersions:
    def test_register_restores_version(self, rng):
        from repro.storage.catalog import Catalog

        catalog = Catalog()
        store = _make_store(rng, rows=100, blocks=2)
        assert catalog.register(store, version=7) == 7
        assert catalog.version("t") == 7

    def test_register_version_never_regresses(self, rng):
        from repro.storage.catalog import Catalog

        catalog = Catalog()
        store = _make_store(rng, rows=100, blocks=2)
        for _ in range(9):
            catalog.register(store)
        # a stale manifest version below the live counter must not win
        assert catalog.register(store, version=3) == 10
