"""Unit tests for leverage scores, the allocating parameter q and normalisation."""

import numpy as np
import pytest

from repro.core.config import ISLAConfig
from repro.core.leverage import (
    LeverageNormalizer,
    allocate_q,
    deviation_degree,
    raw_leverages,
    theoretical_leverage_sums,
)
from repro.errors import EstimationError


class TestDeviationAndQ:
    def test_deviation_degree(self):
        assert deviation_degree(100, 100) == pytest.approx(1.0)
        assert deviation_degree(120, 100) == pytest.approx(1.2)

    def test_deviation_requires_nonempty_l(self):
        with pytest.raises(EstimationError):
            deviation_degree(10, 0)

    def test_q_is_one_in_the_mild_band(self):
        config = ISLAConfig()
        assert allocate_q(1000, 1005, config) == 1.0
        assert allocate_q(1020, 1000, config) == 1.0

    def test_q_moderate_band(self):
        config = ISLAConfig()
        # dev = 1.05 -> moderate band, S larger -> q = 1/5
        assert allocate_q(1050, 1000, config) == pytest.approx(1.0 / config.q_moderate)
        # dev ~ 0.952 -> moderate band, L larger -> q = 5
        assert allocate_q(1000, 1050, config) == pytest.approx(config.q_moderate)

    def test_q_severe_band(self):
        config = ISLAConfig()
        assert allocate_q(1200, 1000, config) == pytest.approx(1.0 / config.q_severe)
        assert allocate_q(1000, 1200, config) == pytest.approx(config.q_severe)

    def test_theoretical_sums_follow_constraint_2(self):
        sum_s, sum_l = theoretical_leverage_sums(80, 120, q=1.0)
        assert sum_s + sum_l == pytest.approx(1.0)
        assert sum_s / sum_l == pytest.approx(80 / 120)

    def test_theoretical_sums_with_q(self):
        sum_s, sum_l = theoretical_leverage_sums(100, 100, q=0.2)
        assert sum_s + sum_l == pytest.approx(1.0)
        assert sum_s / sum_l == pytest.approx(0.2)

    def test_theoretical_sums_validation(self):
        with pytest.raises(EstimationError):
            theoretical_leverage_sums(0, 10, 1.0)
        with pytest.raises(EstimationError):
            theoretical_leverage_sums(10, 10, 0.0)


class TestRawLeverages:
    def test_definition(self):
        s = np.array([4.0, 5.0])
        l = np.array([8.0])
        total_square = 16.0 + 25.0 + 64.0
        raw_s, raw_l = raw_leverages(s, l)
        assert raw_s == pytest.approx([1 - 16 / total_square, 1 - 25 / total_square])
        assert raw_l == pytest.approx([64 / total_square])

    def test_larger_l_values_get_larger_leverage(self):
        _, raw_l = raw_leverages(np.array([1.0]), np.array([2.0, 3.0, 4.0]))
        assert raw_l[0] < raw_l[1] < raw_l[2]

    def test_smaller_s_values_get_larger_leverage(self):
        raw_s, _ = raw_leverages(np.array([2.0, 3.0, 4.0]), np.array([5.0]))
        assert raw_s[0] > raw_s[1] > raw_s[2]

    def test_all_zero_rejected(self):
        with pytest.raises(EstimationError):
            raw_leverages(np.array([0.0]), np.array([0.0]))


class TestLeverageNormalizer:
    def test_paper_example_1_table_ii(self):
        """The worked example of Section IV-B: S = {4, 5}, L = {8}."""
        normalizer = LeverageNormalizer([4.0, 5.0], [8.0], q=1.0)
        raw_s, raw_l = normalizer.raw()
        assert raw_s == pytest.approx([89 / 105, 80 / 105])
        assert raw_l == pytest.approx([64 / 105])
        fac_s, fac_l = normalizer.normalization_factors()
        assert fac_s == pytest.approx(169 / 70)
        assert fac_l == pytest.approx(64 / 35)
        norm_s, norm_l = normalizer.normalized()
        assert norm_s == pytest.approx([178 / 507, 160 / 507])
        assert norm_l == pytest.approx([1 / 3])

    def test_constraint_1_total_is_one(self, rng):
        s = rng.uniform(50, 90, size=40)
        l = rng.uniform(110, 150, size=60)
        normalizer = LeverageNormalizer(s, l, q=1.0)
        sum_s, sum_l = normalizer.leverage_sums()
        assert sum_s + sum_l == pytest.approx(1.0)

    def test_constraint_2_region_sums_proportional_to_counts(self, rng):
        s = rng.uniform(50, 90, size=30)
        l = rng.uniform(110, 150, size=90)
        sum_s, sum_l = LeverageNormalizer(s, l, q=1.0).leverage_sums()
        assert sum_s / sum_l == pytest.approx(30 / 90)

    def test_q_shifts_region_mass(self, rng):
        s = rng.uniform(50, 90, size=50)
        l = rng.uniform(110, 150, size=50)
        sum_s, sum_l = LeverageNormalizer(s, l, q=0.1).leverage_sums()
        assert sum_s / sum_l == pytest.approx(0.1)
        assert sum_s + sum_l == pytest.approx(1.0)

    def test_empty_region_rejected(self):
        with pytest.raises(EstimationError):
            LeverageNormalizer([], [1.0])
        with pytest.raises(EstimationError):
            LeverageNormalizer([1.0], [])
