"""Unit tests for case classification, step planning and the iteration loop."""

import math

import numpy as np
import pytest

from repro.core.accumulators import RegionMoments
from repro.core.config import ISLAConfig
from repro.core.modulation import (
    IterativeModulator,
    ModulationCase,
    classify_case,
    plan_step,
    theorem1_step_ratio,
)
from repro.core.objective import ObjectiveFunction
from repro.errors import ConvergenceError, EstimationError


class TestClassifyCase:
    def test_balanced_counts_return_case5(self):
        assert classify_case(-0.5, 1000, 1005, 0.01) is ModulationCase.BALANCED

    def test_zero_d0_returns_case5(self):
        assert classify_case(0.0, 1500, 1000, 0.01) is ModulationCase.BALANCED

    def test_consistent_cases(self):
        # sketch too high: |S| > |L| and c below sketch (D0 < 0) -> case 2
        assert classify_case(-0.5, 1300, 1000, 0.01) is ModulationCase.TOWARD_EACH_OTHER_DOWN
        # sketch too low: |S| < |L| and c above sketch (D0 > 0) -> case 3
        assert classify_case(0.5, 1000, 1300, 0.01) is ModulationCase.TOWARD_EACH_OTHER_UP

    def test_contradictory_cases_with_strong_imbalance(self):
        assert (
            classify_case(-0.5, 1000, 1300, 0.01, contradiction_band=0.06)
            is ModulationCase.UNBALANCED_INCREASE
        )
        assert (
            classify_case(0.5, 1300, 1000, 0.01, contradiction_band=0.06)
            is ModulationCase.UNBALANCED_DECREASE
        )

    def test_contradictory_cases_with_weak_imbalance_fall_back_to_sketch(self):
        assert (
            classify_case(-0.5, 1000, 1030, 0.01, contradiction_band=0.06)
            is ModulationCase.BALANCED
        )

    def test_paper_case_numbers(self):
        assert ModulationCase.TOWARD_EACH_OTHER_DOWN.paper_case == 2
        assert ModulationCase.BALANCED.paper_case == 5

    def test_empty_region_rejected(self):
        with pytest.raises(EstimationError):
            classify_case(0.1, 0, 10, 0.01)


class TestPlanStep:
    @pytest.mark.parametrize(
        "case,d",
        [
            (ModulationCase.TOWARD_EACH_OTHER_DOWN, -1.0),
            (ModulationCase.TOWARD_EACH_OTHER_UP, 1.0),
            (ModulationCase.UNBALANCED_INCREASE, -1.0),
            (ModulationCase.UNBALANCED_DECREASE, 1.0),
        ],
    )
    def test_step_achieves_geometric_reduction(self, case, d):
        eta, lam = 0.5, 0.8
        delta_lest, delta_sketch = plan_step(case, d, lam, eta)
        new_d = d + delta_lest - delta_sketch
        assert new_d == pytest.approx(eta * d)

    def test_lambda_ratio_between_moves(self):
        delta_lest, delta_sketch = plan_step(
            ModulationCase.TOWARD_EACH_OTHER_DOWN, -1.0, 0.8, 0.5
        )
        assert abs(delta_lest) == pytest.approx(0.8 * abs(delta_sketch))
        delta_lest, delta_sketch = plan_step(
            ModulationCase.UNBALANCED_INCREASE, -1.0, 0.8, 0.5
        )
        assert abs(delta_sketch) == pytest.approx(0.8 * abs(delta_lest))

    def test_directions(self):
        # Case 2: sketch falls, l-estimator rises.
        delta_lest, delta_sketch = plan_step(
            ModulationCase.TOWARD_EACH_OTHER_DOWN, -1.0, 0.8, 0.5
        )
        assert delta_lest > 0 > delta_sketch
        # Case 3: sketch rises, l-estimator falls.
        delta_lest, delta_sketch = plan_step(
            ModulationCase.TOWARD_EACH_OTHER_UP, 1.0, 0.8, 0.5
        )
        assert delta_sketch > 0 > delta_lest

    def test_balanced_case_is_a_no_op(self):
        assert plan_step(ModulationCase.BALANCED, 5.0, 0.8, 0.5) == (0.0, 0.0)

    def test_invalid_parameters(self):
        with pytest.raises(EstimationError):
            plan_step(ModulationCase.TOWARD_EACH_OTHER_UP, 1.0, 1.5, 0.5)
        with pytest.raises(EstimationError):
            plan_step(ModulationCase.TOWARD_EACH_OTHER_UP, 1.0, 0.5, 0.0)


class TestTheorem1Ratio:
    def test_paper_boundaries_value(self):
        # p1 = 0.5, p2 = 2.0: the ratio is about 0.24.
        assert theorem1_step_ratio(0.5, 2.0) == pytest.approx(0.238, abs=0.01)

    def test_always_within_unit_interval(self):
        for p1, p2 in [(0.1, 0.5), (0.25, 3.0), (1.0, 2.0), (0.5, 1.0)]:
            ratio = theorem1_step_ratio(p1, p2)
            assert 0.0 < ratio < 1.0

    def test_invalid_boundaries(self):
        with pytest.raises(EstimationError):
            theorem1_step_ratio(2.0, 0.5)


class TestIterativeModulator:
    def _objective_and_counts(self, rng, sketch_bias):
        """Build an objective from a normal block with a biased sketch."""
        from repro.core.boundaries import DataBoundaries

        sample = rng.normal(100.0, 20.0, size=30_000)
        sketch0 = 100.0 + sketch_bias
        boundaries = DataBoundaries.from_sketch(sketch0, 20.0)
        s_values, l_values = boundaries.split_sl(sample)
        objective = ObjectiveFunction.from_moments(
            RegionMoments.from_values(s_values), RegionMoments.from_values(l_values)
        )
        return objective, s_values.size, l_values.size, sketch0

    def test_converges_below_threshold(self, rng):
        config = ISLAConfig()
        objective, count_s, count_l, sketch0 = self._objective_and_counts(rng, 0.8)
        outcome = IterativeModulator(config).run(
            objective, sketch0, count_s=count_s, count_l=count_l
        )
        assert outcome.converged
        assert abs(outcome.final_d) <= config.threshold
        assert outcome.l_estimate == pytest.approx(outcome.sketch, abs=2 * config.threshold)

    def test_iteration_count_matches_analytic_bound(self, rng):
        config = ISLAConfig()
        objective, count_s, count_l, sketch0 = self._objective_and_counts(rng, 0.8)
        modulator = IterativeModulator(config)
        outcome = modulator.run(objective, sketch0, count_s=count_s, count_l=count_l)
        assert outcome.iterations <= modulator.expected_iterations(outcome.initial_d) + 1

    def test_estimate_corrects_towards_truth(self, rng):
        """A strongly biased sketch should be pulled towards the true mean 100."""
        config = ISLAConfig()
        objective, count_s, count_l, sketch0 = self._objective_and_counts(rng, 1.0)
        outcome = IterativeModulator(config).run(
            objective, sketch0, count_s=count_s, count_l=count_l
        )
        assert abs(outcome.estimate - 100.0) < abs(sketch0 - 100.0)

    def test_balanced_case_returns_sketch(self):
        objective = ObjectiveFunction(k=1.0, c=5.0)
        outcome = IterativeModulator(ISLAConfig()).run(
            objective, 5.0, case=ModulationCase.BALANCED
        )
        assert outcome.estimate == 5.0
        assert outcome.iterations == 0

    def test_zero_k_still_converges(self):
        config = ISLAConfig()
        objective = ObjectiveFunction(k=0.0, c=10.0)
        outcome = IterativeModulator(config).run(
            objective, 11.0, case=ModulationCase.TOWARD_EACH_OTHER_DOWN
        )
        assert outcome.converged
        assert outcome.alpha == 0.0

    def test_trace_is_recorded_when_requested(self, rng):
        config = ISLAConfig()
        objective, count_s, count_l, sketch0 = self._objective_and_counts(rng, 0.6)
        outcome = IterativeModulator(config, keep_trace=True).run(
            objective, sketch0, count_s=count_s, count_l=count_l
        )
        assert len(outcome.trace) == outcome.iterations
        d_values = [abs(record.d_value) for record in outcome.trace]
        assert all(d_values[i + 1] <= d_values[i] + 1e-12 for i in range(len(d_values) - 1))

    def test_requires_case_or_counts(self):
        objective = ObjectiveFunction(k=1.0, c=5.0)
        with pytest.raises(EstimationError):
            IterativeModulator(ISLAConfig()).run(objective, 4.0)

    def test_non_convergence_raises(self):
        config = ISLAConfig(max_iterations=1, threshold=1e-12)
        objective = ObjectiveFunction(k=1.0, c=10.0)
        with pytest.raises(ConvergenceError):
            IterativeModulator(config).run(
                objective, 0.0, case=ModulationCase.TOWARD_EACH_OTHER_UP
            )
