"""Tests for the query-serving subsystem (worker pool, admission, cache)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    AdmissionRejected,
    EstimationError,
    ServiceClosed,
    UnknownTableError,
)
from repro.query.ast import CacheSignature
from repro.query.engine import AQPEngine
from repro.serve import (
    AdmissionController,
    CacheKey,
    QueryService,
    ResultCache,
    ServeConfig,
)
from repro.serve.cache import achieved_bound
from repro.storage.catalog import Catalog


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------
def make_engine(seed: int = 42, rows: int = 30_000, tables: int = 1) -> AQPEngine:
    engine = AQPEngine(seed=seed)
    rng = np.random.default_rng(seed)
    for index in range(tables):
        engine.register_array(
            f"t{index}", rng.normal(100.0, 20.0, rows), block_count=8
        )
    return engine


def make_key(engine: AQPEngine, statement: str) -> CacheKey:
    plan = engine.plan(statement)
    return CacheKey.from_plan(plan, engine.catalog.version(plan.store.name))


STMT = "SELECT AVG(value) FROM t0 PRECISION {p:g} CONFIDENCE {c:g}"


# --------------------------------------------------------------------------
# catalog: thread safety + versioning
# --------------------------------------------------------------------------
class TestCatalogVersioning:
    def test_register_bumps_version(self, small_store):
        catalog = Catalog()
        assert catalog.version("small") == 0
        assert catalog.register(small_store) == 1
        assert catalog.register(small_store) == 2
        assert catalog.version("small") == 2

    def test_touch_bumps_version(self, small_store):
        catalog = Catalog()
        catalog.register(small_store)
        assert catalog.touch("small") == 2
        assert catalog.version("SMALL") == 2

    def test_touch_unknown_table_raises(self):
        catalog = Catalog()
        with pytest.raises(UnknownTableError):
            catalog.touch("ghost")

    def test_unregister_bumps_version(self, small_store):
        catalog = Catalog()
        catalog.register(small_store)
        catalog.unregister("small")
        assert "small" not in catalog
        assert catalog.version("small") == 2

    def test_listeners_receive_events(self, small_store):
        catalog = Catalog()
        events = []
        catalog.subscribe(lambda *args: events.append(args))
        catalog.register(small_store)
        catalog.touch("small")
        catalog.unregister("small")
        assert events == [
            ("register", "small", 1),
            ("touch", "small", 2),
            ("unregister", "small", 3),
        ]
        catalog.unsubscribe(events.append)  # unknown listener: no-op

    def test_concurrent_register_resolve(self, small_store):
        catalog = Catalog()
        errors = []

        def hammer(index: int) -> None:
            try:
                for _ in range(200):
                    catalog.register(small_store, name=f"tbl{index}")
                    assert catalog.resolve(f"tbl{index}") is small_store
                    catalog.touch(f"tbl{index}")
                    len(catalog), catalog.table_names
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # 200 registers + 200 touches per table
        assert all(catalog.version(f"tbl{i}") == 400 for i in range(8))


# --------------------------------------------------------------------------
# admission controller
# --------------------------------------------------------------------------
class TestAdmission:
    def test_bounded_admission(self):
        controller = AdmissionController(max_queue=2)
        assert controller.try_admit() and controller.try_admit()
        assert not controller.try_admit()
        assert controller.rejected == 1
        controller.release()
        assert controller.try_admit()
        assert controller.admitted == 3

    def test_release_without_admit_raises(self):
        controller = AdmissionController(max_queue=1)
        with pytest.raises(RuntimeError):
            controller.release()


# --------------------------------------------------------------------------
# precision-aware cache semantics
# --------------------------------------------------------------------------
class TestResultCache:
    def _entry_parts(self, engine, precision=0.5, confidence=0.95):
        statement = STMT.format(p=precision, c=confidence)
        key = make_key(engine, statement)
        result = engine.execute(statement)
        return key, result

    def test_hit_miss_precision_boundaries(self):
        engine = make_engine()
        cache = ResultCache(capacity=8)
        key, result = self._entry_parts(engine, precision=0.5)
        assert cache.lookup(key, 0.5, 0.95) is None  # cold miss
        cache.put(key, result, half_width=0.5, confidence=0.95)

        # equal budget: hit; looser precision: hit; tighter: stale miss
        assert cache.lookup(key, 0.5, 0.95) is not None
        assert cache.lookup(key, 1.0, 0.95) is not None
        assert cache.lookup(key, 0.4, 0.95) is None
        # higher required confidence than achieved: stale miss
        assert cache.lookup(key, 0.5, 0.99) is None
        # lower required confidence: hit
        assert cache.lookup(key, 0.5, 0.90) is not None
        assert cache.stats.hits == 3
        assert cache.stats.stale == 2

    def test_put_keeps_tightest_entry(self):
        engine = make_engine()
        key, result = self._entry_parts(engine)
        cache = ResultCache(capacity=8)
        assert cache.put(key, result, half_width=0.5, confidence=0.95)
        # looser answer must not evict the tighter one
        assert not cache.put(key, result, half_width=1.0, confidence=0.95)
        assert cache.lookup(key, 0.5, 0.95) is not None
        # tighter answer replaces
        assert cache.put(key, result, half_width=0.2, confidence=0.95)
        assert cache.lookup(key, 0.25, 0.95) is not None

    def test_ttl_expiry(self):
        engine = make_engine()
        key, result = self._entry_parts(engine)
        now = [0.0]
        cache = ResultCache(capacity=8, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put(key, result, 0.5, 0.95)
        assert cache.lookup(key, 0.5, 0.95) is not None
        now[0] = 11.0
        assert cache.lookup(key, 0.5, 0.95) is None
        assert cache.stats.stale == 1
        assert len(cache) == 0  # expired entries are dropped

    def test_lru_eviction(self):
        engine = make_engine(tables=1)
        cache = ResultCache(capacity=2)
        keys = []
        for precision in (0.5, 0.6, 0.7):
            statement = STMT.format(p=precision, c=0.95)
            # distinct signatures via distinct methods would be cleaner, but
            # precision is not part of the key — use different versions
            keys.append(
                CacheKey(
                    signature=CacheSignature(
                        aggregate="avg", column="value", table="t0",
                        method="ISLA", time_budget_ms=None,
                    ),
                    table_version=len(keys) + 1,
                )
            )
        result = engine.execute(STMT.format(p=0.5, c=0.95))
        cache.put(keys[0], result, 0.5, 0.95)
        cache.put(keys[1], result, 0.5, 0.95)
        assert cache.lookup(keys[0], 0.5, 0.95) is not None  # refresh LRU order
        cache.put(keys[2], result, 0.5, 0.95)  # evicts keys[1]
        assert cache.stats.evictions == 1
        assert cache.lookup(keys[1], 0.5, 0.95) is None
        assert cache.lookup(keys[0], 0.5, 0.95) is not None
        assert cache.lookup(keys[2], 0.5, 0.95) is not None

    def test_invalidate_table(self):
        engine = make_engine(tables=2)
        cache = ResultCache(capacity=8)
        for table in ("t0", "t1"):
            statement = f"SELECT AVG(value) FROM {table} PRECISION 0.5"
            key = make_key(engine, statement)
            cache.put(key, engine.execute(statement), 0.5, 0.95)
        assert cache.invalidate_table("T0") == 1
        assert len(cache) == 1
        assert cache.stats.invalidations == 1

    def test_achieved_bound(self):
        engine = make_engine()
        assert achieved_bound(engine.plan(STMT.format(p=0.5, c=0.95))) == (0.5, 0.95)
        exact = engine.plan("SELECT AVG(value) FROM t0 METHOD EXACT")
        assert achieved_bound(exact) == (0.0, 1.0)
        timed = engine.plan("SELECT AVG(value) FROM t0 PRECISION 0.5 TIME 5000")
        assert achieved_bound(timed) is None


# --------------------------------------------------------------------------
# service: end-to-end serving semantics
# --------------------------------------------------------------------------
class TestQueryService:
    def test_submit_and_result(self):
        engine = make_engine()
        with engine.serve(workers=2, seed=1) as service:
            ticket = service.submit(STMT.format(p=0.5, c=0.95))
            result = ticket.result()
        assert abs(result.value - 100.0) < 2.0
        assert ticket.done()

    def test_repeated_workload_cache_hits_and_bounds(self):
        """Acceptance: >=50% hits, every served answer within its bound."""
        engine = make_engine(seed=7, rows=20_000)
        truth = engine.catalog.resolve("t0").exact_mean()
        statements = [STMT.format(p=p, c=0.95) for p in (0.6, 0.8, 1.0)]
        with engine.serve(workers=4, seed=3) as service:
            # warm the cache serially (deterministic: no racing duplicates)
            for statement in statements:
                assert service.submit(statement).outcome().ok
            outcomes = service.execute_many(statements * 4)
        assert all(outcome.ok for outcome in outcomes)
        assert all(outcome.cache_hit for outcome in outcomes)
        hits = sum(1 for outcome in outcomes if outcome.cache_hit)
        assert hits / len(outcomes) >= 0.5
        # every served answer satisfies its requested precision bound,
        # verified against the exact ground truth
        for outcome, statement in zip(outcomes, statements * 4):
            requested = float(statement.split("PRECISION")[1].split()[0])
            assert abs(outcome.result.value - truth) <= requested
            assert outcome.result.details.get("served_from_cache") is True

    def test_tighter_request_misses_cache(self):
        engine = make_engine()
        with engine.serve(workers=1, seed=5) as service:
            first = service.submit(STMT.format(p=1.0, c=0.95)).outcome()
            looser = service.submit(STMT.format(p=2.0, c=0.95)).outcome()
            tighter = service.submit(STMT.format(p=0.5, c=0.95)).outcome()
        assert not first.cache_hit
        assert looser.cache_hit
        assert not tighter.cache_hit
        assert service.cache.stats.stale >= 1

    def test_invalidation_on_reregister(self):
        engine = make_engine(seed=11)
        rng = np.random.default_rng(99)
        with engine.serve(workers=1, seed=5) as service:
            assert not service.submit(STMT.format(p=0.5, c=0.95)).outcome().cache_hit
            assert service.submit(STMT.format(p=0.5, c=0.95)).outcome().cache_hit
            # re-registering the table drops cached answers for it
            engine.register_array("t0", rng.normal(50.0, 5.0, 10_000), block_count=4)
            outcome = service.submit(STMT.format(p=0.5, c=0.95)).outcome()
            assert not outcome.cache_hit
            assert abs(outcome.result.value - 50.0) < 1.0

    def test_invalidation_on_online_append(self):
        engine = make_engine(seed=13, rows=10_000)
        with engine.serve(workers=1, seed=5) as service:
            assert not service.submit(STMT.format(p=0.5, c=0.95)).outcome().cache_hit
            assert service.submit(STMT.format(p=0.5, c=0.95)).outcome().cache_hit
            version = engine.append_array("t0", np.full(5_000, 200.0))
            assert version == 2
            outcome = service.submit(STMT.format(p=1.0, c=0.95)).outcome()
            assert not outcome.cache_hit  # append invalidated the cache
            # the fresh answer sees the appended rows (pre-append mean ~100;
            # the appended constant-200 block drags the estimate well above)
            assert outcome.result.value > 110.0

    def test_queue_full_load_shedding(self):
        engine = make_engine(rows=5_000)
        release = threading.Event()
        original = engine.execute_plan

        def slow_execute(plan, seed=None):
            release.wait(timeout=10.0)
            return original(plan, seed=seed)

        engine.execute_plan = slow_execute  # type: ignore[method-assign]
        service = QueryService(engine, ServeConfig(workers=1, max_queue=1, seed=1))
        try:
            blocker = service.submit(STMT.format(p=0.5, c=0.95))
            time.sleep(0.05)  # let the worker pick it up (queue drains)
            queued = service.submit(STMT.format(p=0.6, c=0.95))
            shed = service.submit(STMT.format(p=0.7, c=0.95))
            outcome = shed.outcome(timeout=1.0)
            assert outcome.status == "rejected"
            assert outcome.rejection.reason == "queue_full"
            with pytest.raises(AdmissionRejected) as excinfo:
                outcome.unwrap()
            assert excinfo.value.reason == "queue_full"
            release.set()
            assert blocker.outcome(timeout=10.0).ok
            assert queued.outcome(timeout=10.0).ok
        finally:
            release.set()
            service.close()
        assert service.stats()["rejected_queue_full"] == 1

    def test_deadline_shed_at_dequeue(self):
        engine = make_engine(rows=5_000)
        release = threading.Event()
        original = engine.execute_plan

        def slow_execute(plan, seed=None):
            release.wait(timeout=10.0)
            return original(plan, seed=seed)

        engine.execute_plan = slow_execute  # type: ignore[method-assign]
        service = QueryService(engine, ServeConfig(workers=1, max_queue=8, seed=1))
        try:
            blocker = service.submit(STMT.format(p=0.5, c=0.95))
            time.sleep(0.05)
            doomed = service.submit(STMT.format(p=0.6, c=0.95), deadline_ms=10.0)
            time.sleep(0.1)  # deadline passes while queued behind the blocker
            release.set()
            outcome = doomed.outcome(timeout=10.0)
            assert outcome.status == "rejected"
            assert outcome.rejection.reason == "deadline"
            assert blocker.outcome(timeout=10.0).ok
        finally:
            release.set()
            service.close()
        assert service.stats()["shed_deadline"] == 1

    def test_retry_with_backoff_on_transient_failure(self):
        engine = make_engine(rows=5_000)
        attempts = []
        original = engine.execute_plan

        def flaky_execute(plan, seed=None):
            attempts.append(seed)
            if len(attempts) < 3:
                raise EstimationError("transient wobble")
            return original(plan, seed=seed)

        engine.execute_plan = flaky_execute  # type: ignore[method-assign]
        service = QueryService(
            engine,
            ServeConfig(workers=1, max_retries=2, retry_backoff_seconds=0.001, seed=1),
        )
        try:
            outcome = service.submit(STMT.format(p=0.5, c=0.95)).outcome(timeout=10.0)
        finally:
            service.close()
        assert outcome.ok
        assert outcome.attempts == 3
        # each retry used a fresh child seed
        assert len({id(seed) for seed in attempts}) == 3
        assert service.stats()["retries"] == 2

    def test_retries_exhausted_is_failed_outcome(self):
        engine = make_engine(rows=5_000)

        def always_fails(plan, seed=None):
            raise EstimationError("permanent wobble")

        engine.execute_plan = always_fails  # type: ignore[method-assign]
        service = QueryService(
            engine,
            ServeConfig(workers=1, max_retries=1, retry_backoff_seconds=0.0, seed=1),
        )
        try:
            outcome = service.submit(STMT.format(p=0.5, c=0.95)).outcome(timeout=10.0)
        finally:
            service.close()
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        with pytest.raises(EstimationError):
            outcome.unwrap()

    def test_retry_never_outlives_deadline(self):
        # A transient failure storm with aggressive backoff must not keep
        # retrying past the query's deadline: the service sheds instead of
        # answering late.
        engine = make_engine(rows=5_000)

        def slow_transient_failure(plan, seed=None):
            time.sleep(0.02)
            raise EstimationError("transient wobble")

        engine.execute_plan = slow_transient_failure  # type: ignore[method-assign]
        service = QueryService(
            engine,
            ServeConfig(
                workers=1,
                max_retries=50,
                retry_backoff_seconds=0.05,  # 50ms, 100ms, 200ms, ... would overrun
                seed=1,
            ),
        )
        deadline_ms = 120.0
        try:
            start = time.monotonic()
            outcome = service.submit(
                STMT.format(p=0.5, c=0.95), deadline_ms=deadline_ms
            ).outcome(timeout=10.0)
            elapsed = time.monotonic() - start
            stats = service.stats()
        finally:
            service.close()
        assert outcome.status == "rejected"
        assert outcome.rejection is not None
        assert outcome.rejection.reason == "deadline"
        assert outcome.attempts >= 1
        # Resolved near the deadline, not after the full retry schedule
        # (50 retries x 20ms failures + exponential backoff >> 1s).
        assert elapsed < 1.0
        assert stats["shed_deadline"] >= 1

    def test_retry_within_deadline_still_succeeds(self):
        # The deadline guard must not over-shed: with room to spare, the
        # retry path behaves exactly as before.
        engine = make_engine(rows=5_000)
        attempts = []
        original = engine.execute_plan

        def flaky_execute(plan, seed=None):
            attempts.append(seed)
            if len(attempts) < 3:
                raise EstimationError("transient wobble")
            return original(plan, seed=seed)

        engine.execute_plan = flaky_execute  # type: ignore[method-assign]
        service = QueryService(
            engine,
            ServeConfig(workers=1, max_retries=5, retry_backoff_seconds=0.001, seed=1),
        )
        try:
            outcome = service.submit(
                STMT.format(p=0.5, c=0.95), deadline_ms=5_000.0
            ).outcome(timeout=10.0)
        finally:
            service.close()
        assert outcome.ok
        assert outcome.attempts == 3

    def test_plan_error_is_failed_outcome(self):
        engine = make_engine()
        with engine.serve(workers=1) as service:
            outcome = service.submit("SELECT AVG(value) FROM ghost").outcome()
        assert outcome.status == "failed"
        with pytest.raises(UnknownTableError):
            outcome.unwrap()

    def test_submit_after_close_raises(self):
        engine = make_engine()
        service = engine.serve(workers=1)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(STMT.format(p=0.5, c=0.95))

    def test_reproducible_across_worker_counts(self):
        """Child seeds follow submission order, not worker interleaving."""
        statements = [STMT.format(p=p, c=0.95) for p in (0.5, 0.6, 0.7, 0.8)]

        def run(workers: int):
            engine = make_engine(seed=21, rows=10_000)
            config = ServeConfig(workers=workers, cache_enabled=False, seed=17)
            with QueryService(engine, config) as service:
                return [o.result.value for o in service.execute_many(statements)]

        assert run(1) == run(4)

    def test_multithreaded_stress_no_lost_or_duplicated_results(self):
        """Many submitters, few workers: every ticket resolves exactly once."""
        engine = make_engine(seed=31, rows=5_000, tables=3)
        service = QueryService(
            engine, ServeConfig(workers=4, max_queue=1024, seed=9)
        )
        per_thread = 25
        collected: dict = {}
        errors = []

        def submitter(thread_id: int) -> None:
            try:
                tickets = []
                for index in range(per_thread):
                    table = f"t{(thread_id + index) % 3}"
                    precision = 0.5 + 0.1 * (index % 5)
                    tickets.append(service.submit(
                        f"SELECT AVG(value) FROM {table} PRECISION {precision:g}"
                    ))
                collected[thread_id] = [t.outcome(timeout=60.0) for t in tickets]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=submitter, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.close()

        assert not errors
        outcomes = [outcome for batch in collected.values() for outcome in batch]
        assert len(outcomes) == 8 * per_thread  # nothing lost
        assert all(outcome.ok for outcome in outcomes)
        # nothing duplicated: the service accounted for every single query
        stats = service.stats()
        assert stats["submitted"] == 8 * per_thread
        assert stats["completed"] == 8 * per_thread
        assert stats["failed"] == 0
        # all answers are sane means no cross-table mixups either
        for outcome in outcomes:
            assert 90.0 < outcome.result.value < 110.0

    def test_execute_plan_seed_override_is_reproducible(self):
        engine = make_engine(seed=1, rows=10_000)
        plan = engine.plan(STMT.format(p=0.5, c=0.95))
        seq = np.random.SeedSequence(5)
        first = engine.execute_plan(plan, seed=seq)
        second = engine.execute_plan(plan, seed=np.random.SeedSequence(5))
        assert first.value == second.value
        # distinct children give distinct streams
        children = np.random.SeedSequence(5).spawn(2)
        assert engine.execute_plan(plan, seed=children[0]).value != \
            engine.execute_plan(plan, seed=children[1]).value
