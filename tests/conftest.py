"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ISLAConfig
from repro.storage.blockstore import BlockStore
from repro.workloads.synthetic import NormalWorkload


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_config() -> ISLAConfig:
    """The paper's default configuration."""
    return ISLAConfig()


@pytest.fixture(scope="session")
def normal_values() -> np.ndarray:
    """A reasonably large N(100, 20^2) column shared across tests."""
    return np.random.default_rng(7).normal(100.0, 20.0, size=200_000)


@pytest.fixture(scope="session")
def normal_store(normal_values: np.ndarray) -> BlockStore:
    """The shared column partitioned into the paper's default 10 blocks."""
    return BlockStore.from_array("normal", normal_values, block_count=10)


@pytest.fixture
def small_store() -> BlockStore:
    """A small 4-block store for cheap structural tests."""
    workload = NormalWorkload(8_000, mean=50.0, std=5.0, seed=3)
    return workload.generate_store("small", block_count=4)
