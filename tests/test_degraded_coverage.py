"""Statistical validity of degraded-mode answers.

The acceptance contract of degraded execution: under an injected
partition-failure rate up to 0.25, an answer re-estimated from the
surviving partitions with its widened confidence interval must still cover
the truth at the nominal confidence.  This holds because partitions are
lost independently of the data they hold (the fault draw hashes the block
id, not the values — missing-at-random), so the survivor-weighted estimate
stays unbiased, and the interval widens by ``sqrt(planned / surviving)``
exactly as Definition 1 prescribes for the smaller effective sample.

Each trial uses its own fresh injector (hit accounting reset) and its own
aggregation seed; the fault plan's *seed varies per trial* too, so the set
of lost partitions varies across trials instead of pinning the same blocks
every time.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import ISLAConfig
from repro.faults import FaultInjector, FaultPlan, FaultSpec, fault_scope
from repro.parallel import PartitionParallelAggregator, ScanPool
from repro.sampling import UniformAggregator
from repro.storage.blockstore import BlockStore

TRIALS = 200
FAILURE_RATE = 0.25
CONFIDENCE = 0.95


def _allowed(confidence: float, trials: int) -> float:
    return confidence - 4.0 * math.sqrt(confidence * (1.0 - confidence) / trials)


@pytest.fixture(scope="module")
def pool():
    with ScanPool(max_workers=4) as shared:
        yield shared


@pytest.fixture(scope="module")
def store() -> BlockStore:
    values = np.random.default_rng(19).normal(75.0, 15.0, size=8_000)
    return BlockStore.from_array("degraded-cov", values, block_count=8)


def _plan(trial: int) -> FaultPlan:
    return FaultPlan(
        seed=trial,
        specs=(FaultSpec(site="scan.partition", rate=FAILURE_RATE),),
    )


class TestDegradedCoverage:
    def test_isla_degraded_interval_keeps_nominal_coverage(self, pool, store):
        truth = store.exact_mean()
        config = ISLAConfig(
            precision=0.8, confidence=CONFIDENCE, pilot_sample_size=300
        )

        covered = 0
        degraded_trials = 0
        for trial in range(TRIALS):
            with fault_scope(FaultInjector(_plan(trial))):
                try:
                    result = PartitionParallelAggregator(
                        config, seed=trial, pool=pool, parallelism=4
                    ).aggregate_avg(store)
                except Exception:
                    # all 8 partitions lost (p = 0.25^8); skip, don't count
                    continue
            degraded_trials += int(result.degraded)
            if result.interval.contains(truth):
                covered += 1

        # at rate 0.25 over 8 blocks, ~90% of trials lose >= 1 partition
        assert degraded_trials >= TRIALS // 2
        assert covered / TRIALS >= _allowed(CONFIDENCE, TRIALS)

    def test_widened_interval_is_wider_than_requested(self, pool, store):
        config = ISLAConfig(
            precision=0.8, confidence=CONFIDENCE, pilot_sample_size=300
        )
        plan = FaultPlan(
            seed=1, specs=(FaultSpec(site="scan.partition", keys=(0, 1, 2)),)
        )
        with fault_scope(FaultInjector(plan)):
            result = PartitionParallelAggregator(
                config, seed=7, pool=pool, parallelism=4
            ).aggregate_avg(store)
        assert result.degraded
        # 5 of 8 partitions survive: radius grows by ~sqrt(8/5)
        assert result.interval.radius == pytest.approx(
            config.precision * math.sqrt(8.0 / 5.0), rel=0.05
        )
        assert result.interval.confidence == CONFIDENCE

    def test_baseline_degraded_estimates_stay_unbiased(self, pool, store):
        truth = store.exact_mean()
        precision = 0.8

        errors = []
        for trial in range(60):
            with fault_scope(FaultInjector(_plan(trial))):
                try:
                    estimate = UniformAggregator().aggregate(
                        store,
                        precision=precision,
                        confidence=CONFIDENCE,
                        parallelism=4,
                        pool=pool,
                        rng=np.random.default_rng(trial),
                    )
                except Exception:
                    continue
            errors.append(estimate.value - truth)

        assert len(errors) >= 50
        # unbiasedness: the mean signed error is far below the precision
        assert abs(float(np.mean(errors))) < precision / 2.0
