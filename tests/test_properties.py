"""Property-based tests (hypothesis) for the core invariants.

These cover the invariants the paper relies on:

* leverage normalisation always satisfies Constraints 1 and 2;
* the re-weighted probabilities of Eq. 2 always sum to one;
* Theorem 3's closed form agrees with the explicit per-sample computation
  for arbitrary S/L samples, alpha and q;
* the objective value halves per iteration and the iteration count obeys the
  analytic bound;
* region accumulators are order- and batching-insensitive;
* the summarization step is a convex combination of the partial answers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.accumulators import RegionMoments
from repro.core.config import ISLAConfig
from repro.core.leverage import LeverageNormalizer, theoretical_leverage_sums
from repro.core.modulation import (
    IterativeModulator,
    ModulationCase,
    plan_step,
)
from repro.core.objective import ObjectiveFunction
from repro.core.probability import leverage_based_average, reweighted_probabilities
from repro.core.summarization import combine_partial_means

#: strategy for a plausible S-region sample (positive, bounded values)
s_values_strategy = st.lists(
    st.floats(min_value=1.0, max_value=99.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)
#: strategy for a plausible L-region sample
l_values_strategy = st.lists(
    st.floats(min_value=101.0, max_value=400.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)
q_strategy = st.floats(min_value=0.05, max_value=20.0, allow_nan=False)
alpha_strategy = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)


@given(s=s_values_strategy, l=l_values_strategy, q=q_strategy)
@settings(max_examples=60, deadline=None)
def test_leverage_constraints_hold_for_any_sample(s, l, q):
    normalizer = LeverageNormalizer(np.array(s), np.array(l), q=q)
    sum_s, sum_l = normalizer.leverage_sums()
    target_s, target_l = theoretical_leverage_sums(len(s), len(l), q)
    assert sum_s + sum_l == pytest.approx(1.0, abs=1e-9)
    assert sum_s == pytest.approx(target_s, abs=1e-9)
    assert sum_l == pytest.approx(target_l, abs=1e-9)


@given(s=s_values_strategy, l=l_values_strategy, alpha=alpha_strategy)
@settings(max_examples=60, deadline=None)
def test_probabilities_always_sum_to_one(s, l, alpha):
    normalizer = LeverageNormalizer(np.array(s), np.array(l))
    norm_s, norm_l = normalizer.normalized()
    probabilities = reweighted_probabilities(np.concatenate([norm_s, norm_l]), alpha)
    assert probabilities.sum() == pytest.approx(1.0, abs=1e-9)


@given(s=s_values_strategy, l=l_values_strategy, alpha=alpha_strategy, q=q_strategy)
@settings(max_examples=60, deadline=None)
def test_theorem3_matches_explicit_computation(s, l, alpha, q):
    param_s = RegionMoments.from_values(s)
    param_l = RegionMoments.from_values(l)
    objective = ObjectiveFunction.from_moments(param_s, param_l, q=q)
    explicit, _, _ = leverage_based_average(np.array(s), np.array(l), alpha=alpha, q=q)
    assert objective.l_estimator(alpha) == pytest.approx(explicit, rel=1e-7, abs=1e-7)


@given(
    case=st.sampled_from([
        ModulationCase.TOWARD_EACH_OTHER_DOWN,
        ModulationCase.TOWARD_EACH_OTHER_UP,
        ModulationCase.UNBALANCED_INCREASE,
        ModulationCase.UNBALANCED_DECREASE,
    ]),
    d=st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
    lam=st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
    eta=st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_plan_step_always_achieves_the_geometric_target(case, d, lam, eta):
    # D must carry the sign the case expects.
    signed_d = -d if case in (ModulationCase.TOWARD_EACH_OTHER_DOWN,
                              ModulationCase.UNBALANCED_INCREASE) else d
    delta_lest, delta_sketch = plan_step(case, signed_d, lam, eta)
    assert signed_d + delta_lest - delta_sketch == pytest.approx(eta * signed_d, rel=1e-9)


@given(
    k=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    c=st.floats(min_value=50.0, max_value=150.0, allow_nan=False),
    sketch0=st.floats(min_value=50.0, max_value=150.0, allow_nan=False),
    counts=st.tuples(st.integers(min_value=10, max_value=5_000),
                     st.integers(min_value=10, max_value=5_000)),
)
@settings(max_examples=60, deadline=None)
def test_iteration_converges_and_obeys_the_bound(k, c, sketch0, counts):
    assume(abs(c - sketch0) > 1e-6)
    config = ISLAConfig()
    objective = ObjectiveFunction(k=k, c=c)
    modulator = IterativeModulator(config)
    outcome = modulator.run(objective, sketch0, count_s=counts[0], count_l=counts[1])
    assert outcome.converged
    if outcome.case is not ModulationCase.BALANCED:
        assert abs(outcome.final_d) <= config.threshold
        assert outcome.iterations <= modulator.expected_iterations(c - sketch0) + 1


@given(
    values=st.lists(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
        min_size=1, max_size=200,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=50, deadline=None)
def test_region_moments_are_order_and_batching_insensitive(values, seed):
    array = np.asarray(values, dtype=float)
    permuted = np.random.default_rng(seed).permutation(array)
    split = np.random.default_rng(seed).integers(0, array.size + 1)
    direct = RegionMoments.from_values(array)
    shuffled = RegionMoments.from_values(permuted)
    merged = RegionMoments.from_values(array[:split])
    merged.merge(RegionMoments.from_values(array[split:]))
    for a, b in ((direct, shuffled), (direct, merged)):
        assert a.count == b.count
        assert a.total == pytest.approx(b.total, rel=1e-9, abs=1e-6)
        assert a.square_sum == pytest.approx(b.square_sum, rel=1e-9, abs=1e-6)
        assert a.cube_sum == pytest.approx(b.cube_sum, rel=1e-7, abs=1e-4)


@given(
    estimates=st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                       min_size=1, max_size=20),
    sizes=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_summarization_is_a_convex_combination(estimates, sizes):
    length = min(len(estimates), len(sizes))
    estimates, sizes = estimates[:length], sizes[:length]
    combined = combine_partial_means(estimates, sizes)
    assert min(estimates) - 1e-9 <= combined <= max(estimates) + 1e-9
