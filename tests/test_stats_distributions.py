"""Unit tests for the descriptive distribution summaries."""

import numpy as np
import pytest

from repro.errors import EmptyDataError
from repro.stats.distributions import summarize


class TestSummarize:
    def test_normal_sample_summary(self, rng):
        values = rng.normal(100.0, 20.0, size=100_000)
        summary = summarize(values)
        assert summary.count == 100_000
        assert summary.mean == pytest.approx(100.0, abs=0.5)
        assert summary.std == pytest.approx(20.0, rel=0.02)
        assert abs(summary.skewness) < 0.05
        assert abs(summary.kurtosis) < 0.1
        assert summary.p25 < summary.median < summary.p75
        assert not summary.is_heavily_skewed()

    def test_exponential_sample_is_skewed(self, rng):
        values = rng.exponential(10.0, size=50_000)
        summary = summarize(values)
        assert summary.skewness == pytest.approx(2.0, abs=0.3)
        assert summary.is_heavily_skewed()

    def test_constant_sample(self):
        summary = summarize(np.full(10, 7.0))
        assert summary.std == 0.0
        assert summary.skewness == 0.0
        assert summary.coefficient_of_variation == 0.0

    def test_zero_mean_has_infinite_cv(self):
        summary = summarize([-1.0, 1.0])
        assert summary.coefficient_of_variation == float("inf")

    def test_iqr(self):
        summary = summarize(np.arange(101, dtype=float))
        assert summary.iqr == pytest.approx(50.0)

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            summarize([])
