"""The fault-injection framework and degraded-mode execution."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import faults
from repro.core.config import ISLAConfig
from repro.errors import ConfigurationError, InjectedFault, PartialResultError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, fault_scope
from repro.parallel import (
    PartitionParallelAggregator,
    ScanPool,
    degraded_radius,
)
from repro.query.engine import AQPEngine
from repro.sampling import UniformAggregator
from repro.serve import CircuitBreaker, ServeConfig
from repro.storage.blockstore import BlockStore


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    """Every test starts and ends with fault injection off."""
    faults.clear()
    yield
    faults.clear()


def _store(name: str = "chaos", rows: int = 40_000, blocks: int = 8) -> BlockStore:
    values = np.random.default_rng(11).normal(100.0, 15.0, size=rows)
    return BlockStore.from_array(name, values, block_count=blocks)


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            FaultSpec(site="scan.nope")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="rate"):
            FaultSpec(site="scan.partition", rate=1.5)

    def test_roundtrips_through_json(self):
        plan = FaultPlan(
            seed=9,
            specs=(
                FaultSpec(site="scan.partition", rate=0.25, tables=("T",)),
                FaultSpec(site="scan.straggler", delay_ms=5.0, once_per_key=True),
            ),
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.sites == ("scan.partition", "scan.straggler")

    def test_from_env_inline_json(self, monkeypatch):
        plan = FaultPlan(seed=3, specs=(FaultSpec(site="wal.torn_frame", rate=0.5),))
        monkeypatch.setenv(faults.plan.ENV_FAULTS, plan.to_json())
        assert FaultPlan.from_env() == plan

    def test_from_env_file_path(self, monkeypatch, tmp_path):
        plan = FaultPlan(seed=4, specs=(FaultSpec(site="block.bitflip", rate=0.1),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        monkeypatch.setenv(faults.plan.ENV_FAULTS, str(path))
        assert FaultPlan.from_env() == plan

    def test_from_env_malformed_raises(self, monkeypatch):
        monkeypatch.setenv(faults.plan.ENV_FAULTS, "{not json")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_env()

    def test_from_env_missing_file_raises(self, monkeypatch):
        monkeypatch.setenv(faults.plan.ENV_FAULTS, "/no/such/plan.json")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_env()

    def test_env_activates_injector(self, monkeypatch):
        plan = FaultPlan(seed=1, specs=(FaultSpec(site="scan.partition"),))
        monkeypatch.setenv(faults.plan.ENV_FAULTS, plan.to_json())
        faults.reset_env_cache()
        injector = faults.active()
        assert injector is not None
        assert injector.plan == plan


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=42, specs=(FaultSpec(site="scan.partition", rate=0.3),))
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        keys = range(200)
        assert [first.would_fire("scan.partition", "t", k) for k in keys] == [
            second.would_fire("scan.partition", "t", k) for k in keys
        ]

    def test_rate_controls_fire_fraction(self):
        plan = FaultPlan(seed=5, specs=(FaultSpec(site="scan.partition", rate=0.25),))
        injector = FaultInjector(plan)
        fired = sum(
            injector.would_fire("scan.partition", "t", key) for key in range(2000)
        )
        assert 0.18 < fired / 2000 < 0.32

    def test_spec_scoping_by_table_and_key(self):
        plan = FaultPlan(
            seed=0,
            specs=(FaultSpec(site="scan.partition", tables=("a",), keys=(1, 2)),),
        )
        injector = FaultInjector(plan)
        assert injector.would_fire("scan.partition", "A", 1)
        assert not injector.would_fire("scan.partition", "b", 1)
        assert not injector.would_fire("scan.partition", "a", 3)

    def test_once_per_key_fires_once(self):
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(site="scan.partition", once_per_key=True),)
        )
        injector = FaultInjector(plan)
        assert injector.draw("scan.partition", "t", 7) is not None
        assert injector.draw("scan.partition", "t", 7) is None
        assert injector.draw("scan.partition", "t", 8) is not None

    def test_max_hits_caps_total_fires(self):
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(site="scan.partition", max_hits=3),)
        )
        injector = FaultInjector(plan)
        fired = sum(
            injector.draw("scan.partition", "t", key) is not None for key in range(10)
        )
        assert fired == 3
        assert injector.stats() == {"scan.partition": 3}

    def test_partition_scan_raises_injected_fault(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec(site="scan.partition"),))
        injector = FaultInjector(plan)
        with pytest.raises(InjectedFault) as excinfo:
            injector.partition_scan("t", 0)
        assert excinfo.value.site == "scan.partition"

    def test_straggler_sleeps_for_delay(self):
        slept = []
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(site="scan.straggler", delay_ms=25.0),)
        )
        injector = FaultInjector(plan, sleep=slept.append)
        injector.partition_scan("t", 0)
        assert slept == [0.025]

    def test_fault_scope_restores_previous_state(self):
        assert faults.active() is None
        plan = FaultPlan(seed=0, specs=(FaultSpec(site="scan.partition"),))
        with fault_scope(plan) as injector:
            assert faults.active() is injector
        assert faults.active() is None


# ---------------------------------------------------------------------------
# degraded scans
# ---------------------------------------------------------------------------


class TestDegradedScan:
    def test_partial_scan_captures_failures(self):
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(site="scan.partition", keys=(2, 5)),)
        )
        with ScanPool(max_workers=4) as pool, fault_scope(plan):
            scan = pool.scan_partial(
                lambda x: x * 10,
                list(range(8)),
                parallelism=4,
                table="t",
                keys=list(range(8)),
            )
        assert not scan.ok
        assert scan.failed_keys == [2, 5]
        assert all(failure.injected for failure in scan.failures)
        assert scan.completed() == [0, 10, 30, 40, 60, 70]

    def test_failures_identical_at_any_parallelism(self):
        plan = FaultPlan(
            seed=21, specs=(FaultSpec(site="scan.partition", rate=0.4),)
        )
        outcomes = []
        for parallelism in (1, 2, 4):
            with ScanPool(max_workers=4) as pool, fault_scope(plan):
                scan = pool.scan_partial(
                    lambda x: x,
                    list(range(12)),
                    parallelism=parallelism,
                    table="t",
                    keys=list(range(12)),
                )
            outcomes.append((scan.failed_keys, scan.completed()))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_non_injected_exceptions_are_captured_too(self):
        def explode(x):
            if x == 3:
                raise ValueError("boom")
            return x

        with ScanPool(max_workers=2) as pool:
            scan = pool.scan_partial(explode, list(range(6)), parallelism=2)
        assert scan.failed_indices == [3]
        assert not scan.failures[0].injected
        assert isinstance(scan.failures[0].error, ValueError)

    def test_clean_scan_matches_map_partitions(self):
        items = list(range(16))
        with ScanPool(max_workers=4) as pool:
            mapped = pool.map_partitions(lambda x: x * x, items, parallelism=4)
            scan = pool.scan_partial(lambda x: x * x, items, parallelism=4)
        assert scan.ok
        assert scan.results == mapped


class TestStragglerSpeculation:
    def test_speculation_rescues_transient_straggler(self):
        # once_per_key: the first attempt straggles, the speculative
        # duplicate does not — the scan finishes fast with full results
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(
                    site="scan.straggler",
                    keys=(1,),
                    delay_ms=2_000.0,
                    once_per_key=True,
                ),
            ),
        )
        with ScanPool(max_workers=4) as pool, fault_scope(plan):
            scan = pool.scan_partial(
                lambda x: x + 1,
                list(range(4)),
                parallelism=4,
                table="t",
                keys=list(range(4)),
                straggler_timeout=0.05,
            )
        assert scan.ok
        assert scan.speculated >= 1
        assert scan.results == [1, 2, 3, 4]

    def test_no_speculation_before_deadline(self):
        with ScanPool(max_workers=4) as pool:
            scan = pool.scan_partial(
                lambda x: x,
                list(range(4)),
                parallelism=4,
                straggler_timeout=30.0,
            )
        assert scan.ok
        assert scan.speculated == 0


# ---------------------------------------------------------------------------
# degraded aggregation: re-weighting + widened CIs
# ---------------------------------------------------------------------------


class TestDegradedAggregation:
    def test_degraded_radius_widens_by_lost_fraction(self):
        assert degraded_radius(0.5, 1000, 1000) == pytest.approx(0.5)
        assert degraded_radius(0.5, 1000, 250) == pytest.approx(1.0)
        with pytest.raises(PartialResultError):
            degraded_radius(0.5, 1000, 0)

    def test_isla_survives_partition_failures(self):
        store = _store()
        truth = store.exact_mean()
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(site="scan.partition", keys=(1, 6)),)
        )
        config = ISLAConfig(precision=0.5, parallelism=4)
        with fault_scope(plan):
            result = PartitionParallelAggregator(config, seed=77).aggregate_avg(store)
        assert result.degraded
        assert result.failed_partitions == (1, 6)
        assert result.sample_fraction == pytest.approx(6 / 8)
        # the CI widened to pay for the lost samples, same confidence
        assert result.interval.radius > config.precision
        assert result.interval.confidence == config.confidence
        assert abs(result.value - truth) < 2.0

    def test_isla_degraded_answer_is_deterministic(self):
        store = _store()
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(site="scan.partition", rate=0.3),)
        )
        config = ISLAConfig(precision=0.5, parallelism=4)
        answers = []
        for _ in range(2):
            with fault_scope(FaultInjector(plan)):
                result = PartitionParallelAggregator(config, seed=5).aggregate_avg(
                    store
                )
            answers.append((result.value, result.failed_partitions))
        assert answers[0] == answers[1]

    def test_isla_all_partitions_failed_raises_typed_error(self):
        store = _store()
        plan = FaultPlan(seed=0, specs=(FaultSpec(site="scan.partition"),))
        config = ISLAConfig(precision=0.5, parallelism=4)
        with fault_scope(plan):
            with pytest.raises(PartialResultError):
                PartitionParallelAggregator(config, seed=1).aggregate_avg(store)

    def test_baseline_survives_partition_failures(self):
        store = _store()
        truth = store.exact_mean()
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(site="scan.partition", keys=(0, 3)),)
        )
        with fault_scope(plan):
            estimate = UniformAggregator(seed=9).aggregate(
                store, precision=0.5, confidence=0.95, parallelism=4
            )
        assert estimate.details["degraded"] is True
        assert estimate.details["failed_partitions"] == [0, 3]
        assert estimate.details["sample_fraction"] == pytest.approx(6 / 8)
        assert abs(estimate.value - truth) < 2.0

    def test_engine_tags_degraded_results(self):
        store = _store("sensor")
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(site="scan.partition", keys=(2,)),)
        )
        engine = AQPEngine(seed=13, parallelism=4)
        engine.register_store(store)
        with fault_scope(plan):
            result = engine.execute(
                "SELECT AVG(value) FROM sensor PRECISION 0.5"
            )
        assert result.degraded
        assert result.failed_partitions == (2,)
        assert 0.0 < result.sample_fraction < 1.0
        assert result.details["degraded"] is True

    def test_no_faults_means_no_degradation(self):
        store = _store("clean")
        engine = AQPEngine(seed=13, parallelism=4)
        engine.register_store(store)
        result = engine.execute("SELECT AVG(value) FROM clean PRECISION 0.5")
        assert not result.degraded
        assert result.failed_partitions == ()
        assert result.sample_fraction == 1.0


# ---------------------------------------------------------------------------
# the circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        defaults = dict(
            failure_threshold=0.5,
            window=8,
            min_requests=4,
            cooldown_seconds=10.0,
            half_open_probes=2,
            clock=clock,
        )
        defaults.update(kwargs)
        return CircuitBreaker(**defaults)

    def test_trips_after_failure_rate_crossed(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(4):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_below_min_requests_never_trips(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "closed"

    def test_cooldown_half_open_then_closes_on_probe_success(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == "open"
        now[0] = 11.0
        assert breaker.state == "half_open"
        assert breaker.allow() and breaker.allow()  # two probes
        assert not breaker.allow()  # probes exhausted
        breaker.record_success()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(4):
            breaker.record_failure()
        now[0] = 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_successes_keep_circuit_closed(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(50):
            assert breaker.allow()
            breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.stats()["trips"] == 0


# ---------------------------------------------------------------------------
# serving under chaos
# ---------------------------------------------------------------------------


class TestServiceDegradedMode:
    def _engine(self, name: str = "served") -> AQPEngine:
        engine = AQPEngine(seed=3, parallelism=2)
        engine.register_store(_store(name))
        return engine

    def test_degraded_answers_are_not_cached(self):
        engine = self._engine()
        plan = FaultPlan(
            seed=0,
            specs=(FaultSpec(site="scan.partition", keys=(4,)),),
        )
        config = ServeConfig(workers=2, breaker_enabled=False)
        with fault_scope(plan):
            with engine.serve(config=config) as service:
                statement = "SELECT AVG(value) FROM served PRECISION 0.5"
                first = service.submit(statement).outcome()
                second = service.submit(statement).outcome()
        assert first.ok and first.result.degraded
        assert second.ok and second.result.degraded
        # neither answer came from the cache: degraded results never enter it
        assert not first.cache_hit and not second.cache_hit
        stats = service.stats()
        assert stats["degraded"] == 2

    def test_breaker_opens_on_persistent_failure(self):
        engine = self._engine("flaky")
        # every partition fails -> every execution raises PartialResultError
        plan = FaultPlan(seed=0, specs=(FaultSpec(site="scan.partition"),))
        config = ServeConfig(
            workers=1,
            breaker_failure_threshold=0.5,
            breaker_window=8,
            breaker_min_requests=3,
            breaker_cooldown_seconds=60.0,
        )
        statement = "SELECT AVG(value) FROM flaky PRECISION 0.5"
        with fault_scope(plan):
            with engine.serve(config=config) as service:
                outcomes = [service.submit(statement).outcome() for _ in range(8)]
                health = service.health()
                stats = service.stats()
        statuses = [outcome.status for outcome in outcomes]
        assert "failed" in statuses
        assert "rejected" in statuses
        rejections = [
            outcome.rejection.reason
            for outcome in outcomes
            if outcome.status == "rejected"
        ]
        assert set(rejections) == {"circuit_open"}
        assert health["status"] == "degraded"
        assert health["tripped_tables"] == ["flaky"]
        assert stats["rejected"]["circuit_open"] == len(rejections)

    def test_stats_snapshot_has_typed_rejection_reasons(self):
        engine = self._engine("quiet")
        with engine.serve(config=ServeConfig(workers=1)) as service:
            service.submit("SELECT AVG(value) FROM quiet PRECISION 0.5").outcome()
            stats = service.stats()
        assert stats["rejected"] == {
            "queue_full": 0,
            "deadline": 0,
            "circuit_open": 0,
        }
        # legacy flat keys stay present for existing dashboards
        assert stats["rejected_queue_full"] == 0
        assert stats["shed_deadline"] == 0

    def test_health_ok_when_idle(self):
        engine = self._engine("idle")
        with engine.serve(config=ServeConfig(workers=1)) as service:
            health = service.health()
            assert health["status"] == "ok"
            assert health["workers_alive"] == 1
        assert service.health()["status"] == "closed"
