"""Unit tests for text-file block I/O and the catalog."""

import numpy as np
import pytest

from repro.errors import StorageError, UnknownTableError
from repro.storage.blockstore import BlockStore
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.storage.textio import (
    iter_block_file,
    read_blocks_from_directory,
    write_blocks_to_directory,
)


class TestTextIO:
    def test_round_trip(self, tmp_path, rng):
        values = rng.normal(10.0, 2.0, size=997)
        store = BlockStore.from_array("t", values, block_count=4)
        paths = write_blocks_to_directory(store, tmp_path)
        assert len(paths) == 4
        loaded = read_blocks_from_directory(tmp_path, name="loaded")
        assert loaded.block_count == 4
        assert loaded.total_rows == 997
        assert loaded.exact_mean() == pytest.approx(store.exact_mean(), rel=1e-12)

    def test_iter_block_file_skips_blank_lines(self, tmp_path):
        path = tmp_path / "block_0000.txt"
        path.write_text("1.5\n\n2.5\n")
        assert list(iter_block_file(path)) == [1.5, 2.5]

    def test_invalid_value_raises(self, tmp_path):
        path = tmp_path / "block_0000.txt"
        path.write_text("not-a-number\n")
        with pytest.raises(StorageError):
            list(iter_block_file(path))

    def test_missing_directory(self, tmp_path):
        with pytest.raises(StorageError):
            read_blocks_from_directory(tmp_path / "does-not-exist")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(StorageError):
            read_blocks_from_directory(tmp_path)

    def test_multi_column_round_trip_bit_identical(self, tmp_path, rng):
        table = Table.from_mapping(
            "t",
            {
                "price": rng.normal(10.0, 2.0, size=523),
                "qty": rng.integers(0, 50, size=523).astype(float),
            },
        )
        store = BlockStore.from_table(table, block_count=3, default_column="qty")
        paths = write_blocks_to_directory(store, tmp_path)
        # one tagged file per (block, column)
        assert len(paths) == 6
        assert sorted(p.name for p in paths)[0] == "block_0000.price.txt"

        loaded = read_blocks_from_directory(tmp_path, name="loaded", column="qty")
        assert loaded.default_column == "qty"
        assert set(loaded.column_names) == {"price", "qty"}
        for original, restored in zip(store.blocks, loaded.blocks):
            for column in ("price", "qty"):
                assert np.array_equal(
                    restored.column(column), original.column(column)
                ), f"column {column!r} of block {original.block_id} not bit-identical"

    def test_single_column_round_trip_keeps_legacy_filenames(self, tmp_path, rng):
        store = BlockStore.from_array("t", rng.normal(0, 1, 100), block_count=2)
        paths = write_blocks_to_directory(store, tmp_path)
        assert sorted(p.name for p in paths) == ["block_0000.txt", "block_0001.txt"]
        loaded = read_blocks_from_directory(tmp_path)
        for original, restored in zip(store.blocks, loaded.blocks):
            assert np.array_equal(restored.column("value"), original.column("value"))

    def test_inconsistent_column_sets_rejected(self, tmp_path, rng):
        table = Table.from_mapping(
            "t", {"a": rng.normal(0, 1, 60), "b": rng.normal(0, 1, 60)}
        )
        store = BlockStore.from_table(table, block_count=2)
        write_blocks_to_directory(store, tmp_path)
        (tmp_path / "block_0001.b.txt").unlink()
        with pytest.raises(StorageError):
            read_blocks_from_directory(tmp_path)


class TestCatalog:
    def test_register_and_resolve_case_insensitive(self, small_store):
        catalog = Catalog()
        catalog.register(small_store)
        assert "small" in catalog
        assert catalog.resolve("SMALL") is small_store

    def test_register_under_alias(self, small_store):
        catalog = Catalog()
        catalog.register(small_store, name="alias")
        assert catalog.resolve("alias") is small_store

    def test_unknown_table(self):
        catalog = Catalog()
        with pytest.raises(UnknownTableError):
            catalog.resolve("ghost")

    def test_unregister_is_idempotent(self, small_store):
        catalog = Catalog()
        catalog.register(small_store)
        catalog.unregister("small")
        catalog.unregister("small")
        assert len(catalog) == 0

    def test_table_names_sorted(self, small_store, normal_store):
        catalog = Catalog()
        catalog.register(normal_store)
        catalog.register(small_store)
        assert catalog.table_names == ("normal", "small")

    def test_empty_name_rejected(self):
        catalog = Catalog()
        unnamed = BlockStore(name="")
        with pytest.raises(StorageError):
            catalog.register(unnamed)
