"""Unit tests for the partitioning strategies."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.partitioner import (
    even_partition,
    explicit_partition,
    hash_partition,
    sorted_partition,
)


class TestEvenPartition:
    def test_preserves_all_rows_in_order(self):
        values = np.arange(95.0)
        blocks = even_partition(values, 10)
        assert sum(block.size for block in blocks) == 95
        reassembled = np.concatenate([block.column("value") for block in blocks])
        assert np.array_equal(reassembled, values)

    def test_block_ids_sequential(self):
        blocks = even_partition(np.arange(10.0), 3)
        assert [b.block_id for b in blocks] == [0, 1, 2]

    def test_rejects_more_blocks_than_rows(self):
        with pytest.raises(StorageError):
            even_partition(np.arange(3.0), 5)

    def test_rejects_empty_input(self):
        with pytest.raises(StorageError):
            even_partition(np.empty(0), 2)


class TestHashPartition:
    def test_preserves_multiset(self):
        values = np.arange(500.0)
        blocks = hash_partition(values, 7, seed=1)
        reassembled = np.sort(np.concatenate([b.column("value") for b in blocks]))
        assert np.array_equal(reassembled, values)

    def test_blocks_are_mixed_even_for_sorted_input(self):
        values = np.arange(10_000.0)
        blocks = hash_partition(values, 4, seed=0)
        # Each block should span nearly the whole value range.
        for block in blocks:
            column = block.column("value")
            assert column.min() < 1_000
            assert column.max() > 9_000

    def test_deterministic_for_seed(self):
        values = np.arange(100.0)
        first = hash_partition(values, 4, seed=9)
        second = hash_partition(values, 4, seed=9)
        for a, b in zip(first, second):
            assert np.array_equal(a.column("value"), b.column("value"))


class TestSortedPartition:
    def test_blocks_cover_disjoint_ranges(self):
        values = np.random.default_rng(0).uniform(0, 1, size=1_000)
        blocks = sorted_partition(values, 4)
        maxima = [block.column("value").max() for block in blocks]
        minima = [block.column("value").min() for block in blocks]
        for i in range(3):
            assert maxima[i] <= minima[i + 1]


class TestExplicitPartition:
    def test_each_chunk_becomes_a_block(self):
        blocks = explicit_partition([[1.0], [2.0, 3.0], [4.0, 5.0, 6.0]])
        assert [block.size for block in blocks] == [1, 2, 3]

    def test_rejects_no_chunks(self):
        with pytest.raises(StorageError):
            explicit_partition([])
