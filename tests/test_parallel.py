"""Determinism regression suite for the partition-parallel backend.

The contract under test (:mod:`repro.parallel.seeding`): for a fixed seed,
estimates, CI bounds and sample sizes are **bit-identical** — not merely
close — at parallelism 1, 2 and 4, for every aggregate type and every
sampler.  Worker threads may only change *when* a partition runs, never
*which random stream* it consumes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ISLAConfig
from repro.errors import ConfigurationError
from repro.parallel import (
    PartitionParallelAggregator,
    ScanPool,
    as_seed_sequence,
    parallel_baseline_aggregate,
    parallel_exact_mean,
    partition_generators,
    reset_shared_scan_pool,
    spawn_scan_seeds,
)
from repro.parallel.bench import build_bench_store, run_benchmark
from repro.query.engine import AQPEngine
from repro.sampling import (
    BiLevelAggregator,
    BlockLevelAggregator,
    ErrorBoundedStratifiedAggregator,
    MeasureBiasedBoundaryAggregator,
    MeasureBiasedValueAggregator,
    SlevAggregator,
    StratifiedAggregator,
    UniformAggregator,
)

PARALLELISM_LEVELS = (1, 2, 4)

#: every sampler of the comparison suite, as zero-argument factories
SAMPLERS = {
    "uniform": UniformAggregator,
    "stratified": StratifiedAggregator,
    "stratified-neyman": lambda: StratifiedAggregator(allocation="neyman"),
    "measure-biased": MeasureBiasedValueAggregator,
    "measure-biased-boundary": MeasureBiasedBoundaryAggregator,
    "slev": SlevAggregator,
    "bilevel": BiLevelAggregator,
    "error-bounded": ErrorBoundedStratifiedAggregator,
    "block-level": BlockLevelAggregator,
}


@pytest.fixture(scope="module")
def drift_store():
    """A multi-block table whose blocks have different means (non-i.i.d.)."""
    return build_bench_store(12_000, 8, seed=3, name="drift")


@pytest.fixture(scope="module")
def pool():
    with ScanPool(max_workers=4) as shared:
        yield shared


class TestSeedContract:
    def test_spawn_is_independent_of_worker_count(self):
        # The spawn takes no pool/worker information at all: same inputs,
        # same children, regardless of how the scan will be scheduled.
        first = spawn_scan_seeds(123, 8)
        second = spawn_scan_seeds(123, 8)
        assert first[0].entropy == second[0].entropy
        for left, right in zip(first[1], second[1]):
            assert left.spawn_key == right.spawn_key

    def test_generator_roots_at_its_seed_sequence(self):
        generator = np.random.default_rng(99)
        assert as_seed_sequence(generator).entropy == 99

    def test_seed_sequence_root_never_mutated(self):
        # Rooting many scans at the same SeedSequence must not advance its
        # spawn counter — every scan sees the same partition seeds.
        child = np.random.SeedSequence(5).spawn(1)[0]
        first = spawn_scan_seeds(child, 4)
        second = spawn_scan_seeds(child, 4)
        assert child.n_children_spawned == 0
        assert [s.spawn_key for s in first[1]] == [s.spawn_key for s in second[1]]
        root = as_seed_sequence(child)
        assert (root.entropy, root.spawn_key) == (child.entropy, child.spawn_key)

    def test_partition_generators_bundle_size(self):
        _, seeds = spawn_scan_seeds(0, 4)
        bundles = partition_generators(seeds, streams_per_partition=2)
        assert len(bundles) == 4
        assert all(len(bundle) == 2 for bundle in bundles)

    def test_negative_partition_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_scan_seeds(0, -1)


class TestDefaultParallelism:
    def test_env_override_respected(self, monkeypatch):
        from repro.parallel.pool import ENV_PARALLELISM, default_parallelism

        monkeypatch.setenv(ENV_PARALLELISM, "3")
        assert default_parallelism() == 3

    def test_env_override_clamped_to_one(self, monkeypatch):
        from repro.parallel.pool import ENV_PARALLELISM, default_parallelism

        monkeypatch.setenv(ENV_PARALLELISM, "-2")
        assert default_parallelism() == 1

    def test_malformed_env_warns_and_falls_back(self, monkeypatch):
        from repro.parallel.pool import ENV_PARALLELISM, default_parallelism

        monkeypatch.setenv(ENV_PARALLELISM, "four")
        with pytest.warns(RuntimeWarning, match="four"):
            resolved = default_parallelism()
        assert resolved >= 1  # CPU-count fallback, not the typo

    def test_unset_env_is_silent(self, monkeypatch, recwarn):
        from repro.parallel.pool import ENV_PARALLELISM, default_parallelism

        monkeypatch.delenv(ENV_PARALLELISM, raising=False)
        assert default_parallelism() >= 1
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]


class TestScanPool:
    def test_results_keep_partition_order(self):
        with ScanPool(max_workers=4) as pool:
            for parallelism in (1, 2, 3, 4, 9):
                out = pool.map_partitions(lambda x: x * x, list(range(13)), parallelism)
                assert out == [x * x for x in range(13)]

    def test_parallelism_one_runs_inline(self):
        pool = ScanPool(max_workers=4)
        pool.map_partitions(lambda x: x, [1, 2, 3], 1)
        assert pool._executor is None  # never spun up
        pool.close()

    def test_shared_pool_reset(self):
        from repro.parallel import shared_scan_pool

        reset_shared_scan_pool()
        first = shared_scan_pool()
        assert shared_scan_pool() is first
        reset_shared_scan_pool()
        assert shared_scan_pool() is not first


class TestISLADeterminism:
    @pytest.mark.parametrize("aggregate", ["avg", "sum"])
    def test_bit_identical_across_parallelism(self, drift_store, pool, aggregate):
        config = ISLAConfig(precision=0.5)
        answers = set()
        for parallelism in PARALLELISM_LEVELS:
            aggregator = PartitionParallelAggregator(
                config, seed=11, pool=pool, parallelism=parallelism
            )
            if aggregate == "avg":
                result = aggregator.aggregate_avg(drift_store)
            else:
                result = aggregator.aggregate_sum(drift_store)
            answers.add(
                (result.value, result.interval.low, result.interval.high,
                 result.sample_size)
            )
        assert len(answers) == 1

    def test_accuracy_against_truth(self, drift_store, pool):
        config = ISLAConfig(precision=0.5)
        truth = drift_store.exact_mean()
        result = PartitionParallelAggregator(
            config, seed=11, pool=pool, parallelism=4
        ).aggregate_avg(drift_store)
        assert abs(result.value - truth) <= 2 * config.precision

    def test_seed_sequence_root_accepted(self, drift_store, pool):
        # The serving layer hands per-query SeedSequence children down as
        # scan roots; the two layers must compose deterministically.
        child = np.random.SeedSequence(7).spawn(3)[1]
        values = {
            PartitionParallelAggregator(
                ISLAConfig(precision=0.5), seed=child, pool=pool, parallelism=p
            ).aggregate_avg(drift_store).value
            for p in PARALLELISM_LEVELS
        }
        assert len(values) == 1


class TestBaselineDeterminism:
    @pytest.mark.parametrize("name", sorted(SAMPLERS))
    def test_bit_identical_across_parallelism(self, drift_store, pool, name):
        answers = set()
        for parallelism in PARALLELISM_LEVELS:
            estimate = parallel_baseline_aggregate(
                SAMPLERS[name](), drift_store, rate=0.05,
                seed=5, pool=pool, parallelism=parallelism,
            )
            answers.add((estimate.value, estimate.sample_size))
        assert len(answers) == 1

    @pytest.mark.parametrize("name", sorted(SAMPLERS))
    def test_estimates_land_near_truth(self, drift_store, pool, name):
        truth = drift_store.exact_mean()
        estimate = parallel_baseline_aggregate(
            SAMPLERS[name](), drift_store, rate=0.1,
            seed=5, pool=pool, parallelism=4,
        )
        # MV is intentionally biased to (mu^2 + sigma^2) / mu; every other
        # sampler should land within a loose tolerance of the truth.
        tolerance = 8.0 if name == "measure-biased" else 4.0
        assert abs(estimate.value - truth) <= tolerance

    def test_details_carry_parallelism(self, drift_store, pool):
        estimate = parallel_baseline_aggregate(
            UniformAggregator(), drift_store, rate=0.05,
            seed=5, pool=pool, parallelism=2,
        )
        assert estimate.details["parallelism"] == 2
        assert estimate.details["partitions"] == drift_store.block_count

    def test_precision_target_resolves_deterministically(self, drift_store, pool):
        values = {
            parallel_baseline_aggregate(
                UniformAggregator(), drift_store, precision=1.0,
                seed=5, pool=pool, parallelism=p,
            ).value
            for p in PARALLELISM_LEVELS
        }
        assert len(values) == 1

    def test_aggregate_entry_point_delegates(self, drift_store, pool):
        # BaselineAggregator.aggregate(parallelism=...) must route through
        # the same kernels as the direct call.
        direct = parallel_baseline_aggregate(
            UniformAggregator(seed=5), drift_store, rate=0.05,
            pool=pool, parallelism=2,
        )
        via_api = UniformAggregator(seed=5).aggregate(
            drift_store, rate=0.05, pool=pool, parallelism=2
        )
        assert via_api.value == direct.value
        assert via_api.sample_size == direct.sample_size

    def test_degenerate_rate_raises_same_error_as_serial(self, drift_store, pool):
        # A rate so small every block's share rounds to zero: the serial
        # scan dies in BlockStore.uniform_sample with EmptyDataError, and
        # the parallel kernel must surface the same exception branch.
        from repro.errors import EmptyDataError

        with pytest.raises(EmptyDataError):
            UniformAggregator(seed=5).aggregate(drift_store, rate=1e-7)
        with pytest.raises(EmptyDataError):
            UniformAggregator(seed=5).aggregate(
                drift_store, rate=1e-7, pool=pool, parallelism=2
            )


class TestExactParallel:
    def test_matches_serial_exact(self, drift_store, pool):
        mean, rows = parallel_exact_mean(
            drift_store, pool=pool, parallelism=4
        )
        assert rows == drift_store.total_rows
        assert mean == pytest.approx(drift_store.exact_mean(), rel=1e-12)


class TestEngineIntegration:
    def _engine(self, parallelism):
        engine = AQPEngine(seed=21, parallelism=parallelism)
        values = np.random.default_rng(1).normal(100.0, 20.0, size=16_000)
        engine.register_array("readings", values, block_count=8)
        return engine

    @pytest.mark.parametrize(
        "statement",
        [
            "SELECT AVG(value) FROM readings PRECISION 0.5",
            "SELECT SUM(value) FROM readings PRECISION 0.5",
            "SELECT AVG(value) FROM readings PRECISION 1.0 METHOD US",
            "SELECT AVG(value) FROM readings PRECISION 1.0 METHOD STS",
            "SELECT AVG(value) FROM readings METHOD EXACT",
        ],
    )
    def test_engine_answers_identical_across_parallelism(self, statement):
        reset_shared_scan_pool()
        try:
            answers = {
                self._engine(parallelism).execute(statement).value
                for parallelism in PARALLELISM_LEVELS
            }
            assert len(answers) == 1
        finally:
            reset_shared_scan_pool()

    def test_parallel_matches_legacy_serial_isla_distribution(self):
        # parallelism=None keeps the legacy serial path; the partition
        # backend must stay within the same statistical guarantee.
        serial = self._engine(None).execute(
            "SELECT AVG(value) FROM readings PRECISION 0.5"
        )
        parallel = self._engine(2).execute(
            "SELECT AVG(value) FROM readings PRECISION 0.5"
        )
        assert abs(serial.value - parallel.value) <= 2 * 0.5
        assert parallel.details["parallelism"] == 2
        assert "parallelism" not in serial.details

    def test_config_rejects_non_positive_parallelism(self):
        with pytest.raises(ConfigurationError):
            ISLAConfig(parallelism=0)


class TestBenchHarness:
    def test_smoke_benchmark_is_deterministic(self):
        report = run_benchmark(rows=6_000, blocks=4, seed=9, repeats=1)
        assert report.deterministic
        assert report.passed() or report.speedup_expected
