"""Unit tests for the streaming moment accumulators."""

import numpy as np
import pytest

from repro.stats.moments import RunningMoments, StreamingMoments


class TestRunningMoments:
    def test_matches_numpy_mean_and_variance(self, rng):
        values = rng.normal(5.0, 2.0, size=5_000)
        moments = RunningMoments()
        for value in values[:100]:
            moments.update(float(value))
        moments.update_many(values[100:])
        assert moments.count == values.size
        assert moments.mean == pytest.approx(values.mean(), rel=1e-9)
        assert moments.variance == pytest.approx(values.var(), rel=1e-9)
        assert moments.std == pytest.approx(values.std(), rel=1e-9)
        assert moments.minimum == values.min()
        assert moments.maximum == values.max()

    def test_merge_equals_single_pass(self, rng):
        left = rng.uniform(0, 10, size=1_000)
        right = rng.uniform(5, 25, size=2_000)
        merged = RunningMoments.from_values(left)
        merged.merge(RunningMoments.from_values(right))
        combined = np.concatenate([left, right])
        assert merged.count == combined.size
        assert merged.mean == pytest.approx(combined.mean(), rel=1e-9)
        assert merged.variance == pytest.approx(combined.var(), rel=1e-9)

    def test_merge_into_empty(self):
        target = RunningMoments()
        target.merge(RunningMoments.from_values([1.0, 2.0, 3.0]))
        assert target.count == 3
        assert target.mean == pytest.approx(2.0)

    def test_empty_defaults(self):
        moments = RunningMoments()
        assert moments.count == 0
        assert moments.variance == 0.0
        assert moments.sample_variance == 0.0

    def test_sample_variance_uses_n_minus_one(self):
        moments = RunningMoments.from_values([1.0, 3.0])
        assert moments.sample_variance == pytest.approx(2.0)
        assert moments.variance == pytest.approx(1.0)


class TestStreamingMoments:
    def test_power_sums_match_numpy(self, rng):
        values = rng.normal(0.0, 3.0, size=2_000)
        moments = StreamingMoments.from_values(values)
        assert moments.count == values.size
        assert moments.total == pytest.approx(values.sum())
        assert moments.square_sum == pytest.approx((values ** 2).sum())
        assert moments.cube_sum == pytest.approx((values ** 3).sum())
        assert moments.mean == pytest.approx(values.mean())
        assert moments.variance == pytest.approx(values.var(), rel=1e-6)

    def test_single_updates_equal_batch(self, rng):
        values = rng.uniform(-5, 5, size=500)
        one_by_one = StreamingMoments()
        for value in values:
            one_by_one.update(float(value))
        batch = StreamingMoments.from_values(values)
        assert one_by_one.count == batch.count
        assert one_by_one.total == pytest.approx(batch.total)
        assert one_by_one.square_sum == pytest.approx(batch.square_sum)
        assert one_by_one.cube_sum == pytest.approx(batch.cube_sum)

    def test_merge_is_additive(self, rng):
        a = StreamingMoments.from_values(rng.uniform(0, 1, size=300))
        b = StreamingMoments.from_values(rng.uniform(0, 1, size=700))
        merged = a.copy()
        merged.merge(b)
        assert merged.count == 1_000
        assert merged.total == pytest.approx(a.total + b.total)
        assert merged.cube_sum == pytest.approx(a.cube_sum + b.cube_sum)

    def test_empty_mean_is_zero(self):
        assert StreamingMoments().mean == 0.0

    def test_copy_is_independent(self):
        original = StreamingMoments.from_values([1.0, 2.0])
        clone = original.copy()
        clone.update(10.0)
        assert original.count == 2
        assert clone.count == 3
