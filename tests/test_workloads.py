"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.base import GeneratedData
from repro.workloads.census import SalaryGenerator
from repro.workloads.noniid import NonIIDWorkload, PAPER_NONIID_PARAMS
from repro.workloads.registry import WORKLOADS, get_workload, register_workload
from repro.workloads.synthetic import (
    ExponentialWorkload,
    LogNormalWorkload,
    MixtureWorkload,
    NormalWorkload,
    ParetoWorkload,
    UniformWorkload,
)
from repro.workloads.tlc import TripDistanceGenerator
from repro.workloads.tpch import LineitemGenerator


class TestSyntheticWorkloads:
    @pytest.mark.parametrize(
        "workload",
        [
            NormalWorkload(50_000, mean=100, std=20, seed=0),
            ExponentialWorkload(50_000, rate=0.1, seed=0),
            UniformWorkload(50_000, low=1, high=199, seed=0),
            LogNormalWorkload(50_000, mu=2.0, sigma=0.5, seed=0),
            ParetoWorkload(50_000, shape=4.0, scale=10.0, seed=0),
        ],
    )
    def test_empirical_moments_match_analytic(self, workload):
        data = workload.generate()
        assert data.size == 50_000
        assert data.values.mean() == pytest.approx(workload.expected_mean(), rel=0.05)
        assert data.values.std() == pytest.approx(workload.expected_std(), rel=0.10)

    def test_same_seed_is_reproducible(self):
        first = NormalWorkload(1_000, seed=5).generate()
        second = NormalWorkload(1_000, seed=5).generate()
        assert np.array_equal(first.values, second.values)

    def test_seed_override_changes_data(self):
        workload = NormalWorkload(1_000, seed=5)
        assert not np.array_equal(workload.generate().values,
                                  workload.generate(seed=6).values)

    def test_generate_store_partitions(self):
        store = NormalWorkload(10_000, seed=1).generate_store("t", block_count=5)
        assert store.block_count == 5
        assert store.total_rows == 10_000

    def test_mixture_mean_and_std(self):
        mixture = MixtureWorkload(
            100_000,
            components=[NormalWorkload(1, mean=0, std=1), NormalWorkload(1, mean=10, std=2)],
            weights=[0.5, 0.5],
            seed=2,
        )
        data = mixture.generate()
        assert data.values.mean() == pytest.approx(5.0, abs=0.1)
        assert data.values.std() == pytest.approx(mixture.expected_std(), rel=0.05)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            NormalWorkload(0)
        with pytest.raises(ConfigurationError):
            ExponentialWorkload(10, rate=0.0)
        with pytest.raises(ConfigurationError):
            UniformWorkload(10, low=5, high=5)
        with pytest.raises(ConfigurationError):
            ParetoWorkload(10, shape=1.5)
        with pytest.raises(ConfigurationError):
            MixtureWorkload(10, components=[])


class TestNonIIDWorkload:
    def test_paper_blocks_structure(self):
        workload = NonIIDWorkload.paper_blocks(rows_per_block=1_000)
        assert len(workload.specs) == len(PAPER_NONIID_PARAMS) == 5
        assert workload.total_rows == 5_000
        assert workload.true_mean() == pytest.approx(100.0)

    def test_generated_blocks_follow_their_distributions(self):
        workload = NonIIDWorkload.paper_blocks(rows_per_block=20_000)
        store = workload.generate_store(seed=3)
        for block, (mean, std) in zip(store.blocks, PAPER_NONIID_PARAMS):
            values = block.column("value")
            assert values.mean() == pytest.approx(mean, rel=0.03)
            assert values.std() == pytest.approx(std, rel=0.05)


class TestSimulatedRealData:
    def test_lineitem_columns_and_ranges(self):
        table = LineitemGenerator(5_000, seed=1).generate_table()
        quantity = table.column("l_quantity")
        assert quantity.min() >= 1 and quantity.max() <= 50
        assert table.column("l_discount").max() <= 0.10 + 1e-12
        assert table.column("l_extendedprice").min() > 0
        assert quantity.mean() == pytest.approx(
            LineitemGenerator.expected_quantity_mean(), rel=0.05
        )

    def test_salary_generator_shape(self):
        data = SalaryGenerator(rows=50_000, seed=1).generate()
        assert isinstance(data, GeneratedData)
        assert data.size == 50_000
        zeros = float((data.values == 0).mean())
        assert 0.4 < zeros < 0.7
        assert data.values.min() >= 0.0
        # Right-skew: mean well above the median.
        assert data.values.mean() > np.median(data.values)

    def test_trip_distance_generator_shape(self):
        data = TripDistanceGenerator(rows=50_000, seed=1).generate()
        assert data.size == 50_000
        assert data.values.min() >= 0.0
        # Scaled by 1000 and right-skewed.
        assert data.values.mean() > np.median(data.values)
        assert data.values.max() > 50_000


class TestRegistry:
    def test_known_workloads_instantiate(self):
        for name in WORKLOADS:
            workload = get_workload(name, size=1_000, seed=0)
            assert workload.generate().size == 1_000

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_workload("no-such-workload", size=10)

    def test_register_new_workload(self):
        register_workload("tiny-normal", lambda size, seed: NormalWorkload(size, seed=seed))
        assert get_workload("tiny-normal", size=10, seed=1).generate().size == 10
        WORKLOADS.pop("tiny-normal")
