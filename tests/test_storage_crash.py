"""Crash-injection tests for the durable block store.

Two layers of crash simulation:

* a **real kill** — a child process appends through the WAL in a loop and
  is SIGKILL'd mid-flight; the parent reopens the directory and checks the
  recovered state is the last consistent one, with query answers
  bit-identical to a never-crashed store at the same version;
* a **deterministic sweep** — the WAL is truncated at every byte offset of
  its final record (every possible torn-write point), and recovery must
  always land on exactly the fully-logged prefix.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.query.engine import AQPEngine
from repro.storage.blockstore import BlockStore
from repro.storage.persist import DurableBlockStore, save_store
from repro.storage.wal import replay_wal

STMT = "SELECT AVG(value) FROM t PRECISION 0.5 CONFIDENCE 0.95"
BASE_ROWS = 10_000
BASE_BLOCKS = 5
BATCH_ROWS = 257


def _base_values() -> np.ndarray:
    return np.random.default_rng(99).normal(100.0, 20.0, BASE_ROWS)


def _batch(index: int) -> np.ndarray:
    # deterministic per-append payload so the parent can reconstruct the
    # control store from the recovered append count alone
    return np.full(BATCH_ROWS, 1000.0 + index)


def _control_engine(append_count: int, seed: int = 7) -> AQPEngine:
    engine = AQPEngine(seed=seed)
    engine.register_array("t", _base_values(), block_count=BASE_BLOCKS)
    for index in range(append_count):
        engine.append_array("t", _batch(index))
    return engine


_CHILD_SCRIPT = """
import sys
import numpy as np
from repro.storage.persist import DurableBlockStore

durable = DurableBlockStore.open(sys.argv[1], mmap=True)
index = 0
while True:
    batch = np.full({batch_rows}, 1000.0 + index)
    durable.append_block(batch)
    print(index, flush=True)
    index += 1
"""


class TestKillMidAppend:
    def test_sigkill_recovers_to_last_consistent_state(self, tmp_path):
        store_dir = tmp_path / "t"
        base = BlockStore.from_array("t", _base_values(), block_count=BASE_BLOCKS)
        save_store(base, store_dir, table_version=1)

        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(src), env.get("PYTHONPATH")])
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD_SCRIPT.format(batch_rows=BATCH_ROWS),
             str(store_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        # let it append for a while, then kill it dead mid-flight
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if (store_dir / "wal.log").exists() and (
                store_dir / "wal.log"
            ).stat().st_size > 0:
                break
            time.sleep(0.01)
        time.sleep(0.3)
        child.send_signal(signal.SIGKILL)
        stdout, stderr = child.communicate(timeout=10)
        assert child.returncode == -signal.SIGKILL, stderr.decode()
        acknowledged = len(stdout.decode().split())

        # ------------------------------------------------------- recovery
        with AQPEngine(seed=7) as recovered_engine:
            recovered_engine.open(store_dir)
            durable = recovered_engine._durable["t"]
            replayed = durable.recovered_appends
            # every acknowledged append was fsync'd before the print, so it
            # must survive; at most the one in-flight append may be lost
            assert replayed >= acknowledged
            assert replayed <= acknowledged + 1
            store = recovered_engine.catalog.resolve("t")
            assert store.total_rows == BASE_ROWS + replayed * BATCH_ROWS
            for index in range(replayed):
                block = store.blocks[BASE_BLOCKS + index]
                assert np.array_equal(block.column("value"), _batch(index))

            # bit-identical to a process that never crashed, same version
            recovered_result = recovered_engine.execute(STMT)
            control = _control_engine(replayed)
            control_result = control.execute(STMT)
            assert recovered_result.value == control_result.value
            assert recovered_result.sample_size == control_result.sample_size
            assert recovered_engine.catalog.version("t") == control.catalog.version("t")

    def test_recovered_store_keeps_accepting_appends(self, tmp_path):
        store_dir = tmp_path / "t"
        base = BlockStore.from_array("t", _base_values(), block_count=BASE_BLOCKS)
        durable = DurableBlockStore.create(base, store_dir)
        durable.append_block(_batch(0))
        durable.close()
        # torn tail from a crash mid-append
        with open(store_dir / "wal.log", "ab") as handle:
            handle.write(b"RWL1\x10\x00\x00\x00 torn")

        recovered = DurableBlockStore.open(store_dir)
        assert recovered.recovered_appends == 1
        assert recovered.recovered_torn_bytes > 0
        recovered.append_block(_batch(1))
        recovered.close()
        # the log now holds both intact appends and no torn garbage
        records, torn = replay_wal(store_dir / "wal.log")
        assert [r.block_id for r in records] == [BASE_BLOCKS, BASE_BLOCKS + 1]
        assert torn == 0


class TestTornTailSweep:
    @pytest.fixture(scope="class")
    def logged_directory(self, tmp_path_factory):
        """A store with two WAL appends (no checkpoint) and the log bytes."""
        root = tmp_path_factory.mktemp("torn-sweep")
        store_dir = root / "t"
        base = BlockStore.from_array("t", _base_values(), block_count=BASE_BLOCKS)
        durable = DurableBlockStore.create(base, store_dir)
        durable.append_block(_batch(0))
        first_record_end = (store_dir / "wal.log").stat().st_size
        durable.append_block(_batch(1))
        durable.close()
        return store_dir, first_record_end, (store_dir / "wal.log").read_bytes()

    def test_every_cut_point_recovers_consistently(self, logged_directory):
        store_dir, first_record_end, full_log = logged_directory
        wal_path = store_dir / "wal.log"
        # sample every region of the second record: magic, length, header,
        # payload and CRC, plus the exact record boundary
        cuts = sorted(
            {
                first_record_end,
                first_record_end + 2,        # inside magic
                first_record_end + 6,        # inside the length word
                first_record_end + 20,       # inside the JSON header
                first_record_end + 120,      # inside the payload
                len(full_log) - 2,           # inside the CRC
            }
        )
        for cut in cuts:
            wal_path.write_bytes(full_log[:cut])
            with AQPEngine(seed=7) as engine:
                engine.open(store_dir)
                durable = engine._durable["t"]
                assert durable.recovered_appends == 1, f"cut at {cut}"
                assert durable.recovered_torn_bytes == cut - first_record_end
                result = engine.execute(STMT)
            control = _control_engine(1)
            control_result = control.execute(STMT)
            assert result.value == control_result.value, f"cut at {cut}"
            assert engine.catalog.version("t") == control.catalog.version("t")
            # recovery truncated the torn tail away
            assert wal_path.stat().st_size == first_record_end

    def test_intact_log_replays_fully(self, logged_directory):
        store_dir, _, full_log = logged_directory
        (store_dir / "wal.log").write_bytes(full_log)
        with AQPEngine(seed=7) as engine:
            engine.open(store_dir)
            assert engine._durable["t"].recovered_appends == 2
            result = engine.execute(STMT)
        control = _control_engine(2)
        assert result.value == control.execute(STMT).value


class TestWalEdgeCases:
    """Log shapes a crash can leave behind that a naive replay mishandles."""

    def _fresh_store(self, tmp_path):
        store_dir = tmp_path / "t"
        base = BlockStore.from_array("t", _base_values(), block_count=BASE_BLOCKS)
        durable = DurableBlockStore.create(base, store_dir)
        return store_dir, durable

    def test_duplicate_final_frame_applies_once(self, tmp_path):
        # A writer that fsync'd a frame, crashed before acking, and was
        # restarted by a naive supervisor re-appends the same payload: the
        # log then holds the frame twice.  Replay is idempotent on block
        # ids — the duplicate delivery is skipped, not double-applied, so
        # the recovered row count and version match a single append.
        store_dir, durable = self._fresh_store(tmp_path)
        durable.append_block(_batch(0))
        durable.close()
        wal_path = store_dir / "wal.log"
        frame = wal_path.read_bytes()
        wal_path.write_bytes(frame + frame)

        records, torn = replay_wal(wal_path)
        assert torn == 0
        assert len(records) == 2  # both frames decode...
        assert records[0].block_id == records[1].block_id
        recovered = DurableBlockStore.open(store_dir)
        assert recovered.recovered_appends == 1  # ...but only one applies
        assert recovered.store.total_rows == BASE_ROWS + BATCH_ROWS
        assert recovered.table_version == 2
        recovered.close()

    def test_zero_length_log_recovers_cleanly(self, tmp_path):
        # a crash after creating the log file but before the first frame
        store_dir, durable = self._fresh_store(tmp_path)
        durable.close()
        (store_dir / "wal.log").write_bytes(b"")
        recovered = DurableBlockStore.open(store_dir)
        assert recovered.recovered_appends == 0
        assert recovered.recovered_torn_bytes == 0
        assert recovered.store.total_rows == BASE_ROWS
        recovered.close()

    def test_crc_valid_frame_with_truncated_payload_is_torn(self, tmp_path):
        # Adversarial tear: the header claims more rows than the payload
        # holds, and the *file* ends exactly where a CRC word would sit, so
        # the trailing 4 bytes of payload parse as a CRC candidate.  The
        # decoder must size the record from the header, notice the payload
        # cannot fit before EOF, and declare the frame torn — never hand
        # back a short-read array.
        store_dir, durable = self._fresh_store(tmp_path)
        durable.append_block(_batch(0))
        durable.close()
        wal_path = store_dir / "wal.log"
        frame = wal_path.read_bytes()
        wal_path.write_bytes(frame[: len(frame) - BATCH_ROWS * 4])

        records, torn = replay_wal(wal_path)
        assert records == []
        assert torn > 0
        recovered = DurableBlockStore.open(store_dir)
        assert recovered.recovered_appends == 0
        assert recovered.store.total_rows == BASE_ROWS
        recovered.close()

    def test_catalog_versions_stay_monotonic_across_recovery(self, tmp_path):
        # version-keyed caches rely on versions never moving backwards:
        # snapshot at v, crash with 2 logged appends, reopen -> v+2, and a
        # live append on the recovered store continues from there
        store_dir, durable = self._fresh_store(tmp_path)
        durable.append_block(_batch(0))
        durable.append_block(_batch(1))
        base_version = durable.table_version
        durable.close()

        observed = []
        with AQPEngine(seed=7) as engine:
            engine.catalog.subscribe(
                lambda event, table, version: observed.append(version)
            )
            engine.open(store_dir)
            recovered_version = engine.catalog.version("t")
            assert recovered_version == base_version
            engine.append_array("t", _batch(2))
            final_version = engine.catalog.version("t")
        assert final_version == recovered_version + 1
        assert observed == sorted(observed)


class TestInjectedTornFrames:
    def test_injected_torn_frame_fails_append_and_recovers(self, tmp_path):
        from repro import faults
        from repro.errors import InjectedFault
        from repro.faults import FaultPlan, FaultSpec, fault_scope

        store_dir = tmp_path / "t"
        base = BlockStore.from_array("t", _base_values(), block_count=BASE_BLOCKS)
        durable = DurableBlockStore.create(base, store_dir)
        durable.append_block(_batch(0))

        plan = FaultPlan(seed=0, specs=(FaultSpec(site="wal.torn_frame"),))
        with fault_scope(plan):
            with pytest.raises(InjectedFault):
                durable.append_block(_batch(1))
        assert faults.active() is None
        # the failed append neither applied in memory nor bumped the version
        assert durable.store.total_rows == BASE_ROWS + BATCH_ROWS
        durable.close()

        # reopen: the torn frame is discarded, the intact prefix replays
        recovered = DurableBlockStore.open(store_dir)
        assert recovered.recovered_appends == 1
        assert recovered.recovered_torn_bytes > 0
        assert recovered.store.total_rows == BASE_ROWS + BATCH_ROWS
        # and the log is consistent again for new appends
        recovered.append_block(_batch(1))
        recovered.close()
        records, torn = replay_wal(store_dir / "wal.log")
        assert torn == 0
        assert len(records) == 2
