"""Tests for the observability layer (repro.obs) and its wiring."""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import (
    NULL_SPAN,
    InMemorySpanExporter,
    JsonlSpanExporter,
    Tracer,
    summarize_trace,
)
from repro.query.engine import AQPEngine
from repro.storage.blockstore import BlockStore


@pytest.fixture
def store(normal_values):
    return BlockStore.from_array("readings", normal_values, block_count=10)


@pytest.fixture
def engine(normal_values):
    engine = AQPEngine(ISLAConfig(telemetry=True), seed=5)
    engine.register_array("readings", normal_values, block_count=10)
    return engine


# --------------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_semantics(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)
        counter.reset()
        assert counter.value == 0.0

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(-4.0)
        assert gauge.value == 6.0

    def test_histogram_statistics(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.sum == pytest.approx(5050.0)
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.percentile(0.50) == pytest.approx(50.5, abs=1.0)
        assert histogram.percentile(0.95) == pytest.approx(95.05, abs=1.0)
        assert histogram.percentile(0.99) == pytest.approx(99.01, abs=1.0)
        snapshot = histogram.snapshot()
        assert snapshot["min"] == 1.0 and snapshot["max"] == 100.0
        assert snapshot["p50"] is not None

    def test_histogram_reservoir_stays_bounded(self):
        histogram = Histogram("h", capacity=64)
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        assert len(histogram._values) <= 64
        # The decimated reservoir still spans the whole stream.
        assert histogram.percentile(0.5) == pytest.approx(5000, rel=0.2)

    def test_empty_histogram_percentile_is_nan(self):
        import math

        assert math.isnan(Histogram("h").percentile(0.5))

    def test_registry_get_or_create_and_kind_clash(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_registry_snapshot_reset_and_json(self):
        registry = MetricsRegistry()
        registry.inc("queries", 3)
        registry.observe("latency", 0.5)
        registry.set_gauge("depth", 7)
        snapshot = registry.snapshot()
        assert snapshot["queries"]["value"] == 3
        assert snapshot["latency"]["count"] == 1
        assert snapshot["depth"]["value"] == 7
        parsed = json.loads(registry.to_json())
        assert parsed["queries"]["type"] == "counter"
        registry.reset()
        assert registry.counter("queries").value == 0.0
        assert registry.histogram("latency").count == 0

    def test_counter_thread_safety(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


# --------------------------------------------------------------------- tracing
class TestTracing:
    def test_span_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", statement="q") as root:
            with tracer.span("child.a") as a:
                a.set_tag("rows", 10)
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child.b"):
                pass
        assert root.finished
        assert [child.name for child in root.children] == ["child.a", "child.b"]
        assert root.children[0].children[0].name == "grandchild"
        assert root.find("grandchild") is not None
        assert len(root.find_all("child.a")) == 1
        assert root.duration_seconds >= root.children[0].duration_seconds

    def test_root_spans_land_in_ring_buffer_and_exporters(self, tmp_path):
        memory = InMemorySpanExporter()
        jsonl = JsonlSpanExporter(tmp_path / "traces.jsonl")
        tracer = Tracer(exporters=(memory, jsonl), max_traces=2)
        for index in range(3):
            with tracer.span(f"trace{index}"):
                pass
        # Ring buffer keeps only the last two, exporters saw all three.
        assert [span.name for span in tracer.traces] == ["trace1", "trace2"]
        assert tracer.last_trace().name == "trace2"
        assert [span.name for span in memory.spans] == ["trace0", "trace1", "trace2"]
        lines = (tmp_path / "traces.jsonl").read_text().strip().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["name"] == "trace0"

    def test_exception_tags_the_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        root = tracer.last_trace()
        assert "RuntimeError" in root.tags["error"]

    def test_to_dict_and_render(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("inner", rows=5):
                pass
        payload = root.to_dict()
        assert payload["name"] == "root"
        assert payload["children"][0]["tags"] == {"rows": 5}
        text = root.render()
        assert "root" in text and "inner" in text and "ms" in text

    def test_summarize_trace_derives_counters(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            with tracer.span("sample.draw", rows=100):
                pass
            with tracer.span("isla.iteration", iterations=7):
                pass
        summary = summarize_trace(root)
        assert summary["counters"]["sample.rows"] == 100
        assert summary["counters"]["isla.iterations"] == 7
        assert summary["counters"]["spans"] == 3
        assert set(summary["stage_seconds"]) == {"query", "sample.draw", "isla.iteration"}


# ------------------------------------------------------------------- telemetry
class TestTelemetry:
    def test_disabled_span_is_the_shared_noop(self):
        telemetry = obs.Telemetry(enabled=False)
        with telemetry.activate():
            assert obs.span("x") is NULL_SPAN
            with obs.span("x") as sp:
                sp.set_tag("ignored", 1)
            assert telemetry.tracer.traces == ()
        # Disabled counters/observations record nothing either.
        with telemetry.activate():
            obs.counter("c", 5)
            obs.observe("h", 1.0)
        assert telemetry.registry.names == ()

    def test_enabled_scope_records_spans_and_metrics(self):
        telemetry = obs.Telemetry(enabled=True)
        with telemetry.activate():
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.counter("c")
        root = telemetry.tracer.last_trace()
        assert root.name == "outer"
        assert root.children[0].name == "inner"
        assert telemetry.registry.counter("c").value == 1

    def test_env_variable_toggle(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_VAR, "1")
        assert obs.Telemetry().enabled
        monkeypatch.setenv(obs.ENV_VAR, "off")
        assert not obs.Telemetry().enabled
        monkeypatch.delenv(obs.ENV_VAR)
        assert not obs.Telemetry().enabled

    def test_stopwatch_times_even_when_disabled(self):
        telemetry = obs.Telemetry(enabled=False)
        with telemetry.activate():
            with obs.stopwatch("stage") as watch:
                pass
        assert watch.span is None
        assert watch.elapsed_seconds >= 0.0
        assert telemetry.registry.names == ()

    def test_stopwatch_records_span_and_histogram_when_enabled(self):
        telemetry = obs.Telemetry(enabled=True)
        with telemetry.activate():
            with obs.stopwatch("stage", kind="test") as watch:
                pass
        assert watch.span is not None
        assert telemetry.tracer.last_trace().name == "stage"
        assert telemetry.registry.histogram("stage.seconds").count == 1


# ---------------------------------------------------------------------- wiring
class TestQueryTelemetry:
    def test_execution_result_carries_span_tree(self, engine):
        result = engine.execute("SELECT AVG(value) FROM readings PRECISION 0.5")
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.trace.name == "query"
        child_names = [child.name for child in telemetry.trace.children]
        assert child_names == ["query.parse", "query.plan", "query.execute"]
        assert telemetry.trace.find("isla.aggregate") is not None
        assert telemetry.trace.find("sample.draw") is not None
        assert telemetry.counters["sample.rows"] > 0
        assert telemetry.counters["isla.blocks"] == 10
        assert "isla.iteration" in telemetry.stage_seconds
        # The summary serialises cleanly.
        json.dumps(telemetry.to_dict())

    def test_baseline_method_is_traced_too(self, engine):
        result = engine.execute(
            "SELECT AVG(value) FROM readings PRECISION 0.5 METHOD US"
        )
        draw = result.telemetry.trace.find("sample.draw")
        assert draw is not None
        assert draw.tags["method"] == "US"
        assert result.telemetry.counters["sample.rows"] == result.sample_size

    def test_disabled_engine_attaches_no_telemetry(self, normal_values):
        engine = AQPEngine(ISLAConfig(telemetry=False), seed=5)
        engine.register_array("readings", normal_values, block_count=10)
        result = engine.execute("SELECT AVG(value) FROM readings PRECISION 0.5")
        assert result.telemetry is None

    def test_noop_mode_emits_no_spans_at_all(self, store):
        # Run a full aggregation inside a disabled scope and assert the
        # disabled fast path produced zero spans and zero metrics.
        telemetry = obs.Telemetry(enabled=False)
        with telemetry.activate():
            ISLAAggregator(ISLAConfig(precision=0.5), seed=3).aggregate_avg(store)
        assert telemetry.tracer.traces == ()
        assert telemetry.registry.names == ()

    def test_aggregator_config_toggle_records_standalone(self, store):
        aggregator = ISLAAggregator(
            ISLAConfig(precision=0.5, telemetry=True), seed=3
        )
        aggregator.aggregate_avg(store)
        root = aggregator.telemetry.tracer.last_trace()
        assert root.name == "isla.aggregate"
        assert root.find("isla.pre_estimate") is not None

    def test_parallel_extension_keeps_spans_in_one_trace(self, store):
        from repro.extensions.distributed import ParallelISLAAggregator

        telemetry = obs.Telemetry(enabled=True)
        with telemetry.activate():
            ParallelISLAAggregator(
                ISLAConfig(precision=0.5), max_workers=4, seed=6
            ).aggregate_avg(store)
        root = telemetry.tracer.last_trace()
        assert root.name == "parallel.scan"
        # Worker-thread spans attach to the same trace via context copies.
        assert len(root.find_all("parallel.partition")) == store.block_count
        assert len(root.find_all("sample.draw")) == store.block_count

    def test_timed_extension_replaces_manual_timing(self, store):
        from repro.extensions.time_constraint import TimeConstrainedAggregator

        telemetry = obs.Telemetry(enabled=True)
        with telemetry.activate():
            result = TimeConstrainedAggregator(
                ISLAConfig(precision=0.5), seed=2
            ).aggregate_within(store, budget_seconds=5.0)
        root = telemetry.tracer.last_trace()
        assert root.name == "timed.aggregate"
        assert root.find("timed.calibrate") is not None
        assert result.elapsed_seconds > 0


class TestExplainAnalyze:
    def test_report_contains_plan_timings_and_counters(self, normal_values):
        # explain_analyze force-enables telemetry even on a default engine.
        engine = AQPEngine(seed=5)
        engine.register_array("readings", normal_values, block_count=10)
        report = engine.explain_analyze(
            "SELECT AVG(value) FROM readings PRECISION 0.5 CONFIDENCE 0.95"
        )
        assert "via ISLA" in report                       # the logical plan
        assert "query.execute" in report                  # the span tree
        assert "isla.pre_estimate" in report
        assert "ms" in report                             # per-stage timings
        assert "isla.iterations" in report                # iteration count
        assert "sample.rows" in report                    # per-stage samples
        assert "stage totals:" in report

    def test_exact_method_report(self, engine):
        report = engine.explain_analyze("SELECT AVG(value) FROM readings METHOD EXACT")
        assert "EXACT" in report and "query.execute" in report


class TestMetricsOut:
    def test_cli_writes_metrics_json(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "metrics.json"
        previous = obs.get_telemetry().enabled
        try:
            assert main(
                ["table7", "--data-size", "30000", "--seed", "2",
                 "--metrics-out", str(out)]
            ) == 0
        finally:
            obs.configure(enabled=previous)
        payload = json.loads(out.read_text())
        assert "table7" in payload["experiments"]
        assert payload["experiments"]["table7"] > 0
        assert "experiment.table7.seconds" in payload["metrics"]
        assert payload["metrics"]["sample.rows"]["value"] > 0
