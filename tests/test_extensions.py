"""Tests for the Section VII extensions."""

import numpy as np
import pytest

from repro.core.config import ISLAConfig
from repro.errors import EstimationError, TimeBudgetExceeded
from repro.extensions.distributed import ParallelISLAAggregator
from repro.extensions.extreme import ExtremeValueAggregator
from repro.extensions.noniid import NonIIDAggregator
from repro.extensions.online import OnlineAggregator
from repro.extensions.time_constraint import TimeConstrainedAggregator
from repro.workloads.noniid import NonIIDWorkload


class TestOnlineAggregation:
    def test_refinement_accumulates_samples(self, normal_store):
        config = ISLAConfig(precision=0.5)
        online = OnlineAggregator(config, seed=17)
        first = online.start(normal_store, initial_rate=0.01)
        second = online.refine(additional_rate=0.01)
        third = online.refine(additional_rate=0.01)
        assert first.sample_size < second.sample_size < third.sample_size
        assert online.state.rounds == 3
        truth = normal_store.exact_mean()
        assert third.error_against(truth) <= 2 * config.precision

    def test_later_rounds_reuse_previous_state(self, normal_store):
        online = OnlineAggregator(ISLAConfig(precision=0.5), seed=17)
        online.start(normal_store, initial_rate=0.01)
        counts_before = {
            bid: m.count for bid, m in online.state.param_s.items()
        }
        online.refine(additional_rate=0.01)
        for block_id, before in counts_before.items():
            assert online.state.param_s[block_id].count >= before

    def test_refine_before_start_rejected(self, normal_store):
        online = OnlineAggregator(ISLAConfig(), seed=1)
        with pytest.raises(EstimationError):
            online.refine(0.01)

    def test_non_positive_rate_rejected(self, normal_store):
        online = OnlineAggregator(ISLAConfig(precision=0.5), seed=1)
        online.start(normal_store, initial_rate=0.01)
        with pytest.raises(EstimationError):
            online.refine(0.0)

    def test_ingest_appends_block_and_touches_catalog(self):
        from repro.storage.blockstore import BlockStore
        from repro.storage.catalog import Catalog

        rng = np.random.default_rng(5)
        store = BlockStore.from_array("stream", rng.normal(100.0, 20.0, 50_000),
                                      block_count=5)
        catalog = Catalog()
        catalog.register(store)
        online = OnlineAggregator(ISLAConfig(precision=0.5), seed=17)
        online.start(store, initial_rate=0.05)

        block_id = online.ingest(rng.normal(100.0, 20.0, 10_000), catalog=catalog)
        assert block_id == 5
        assert store.block_count == 6
        assert catalog.version("stream") == 2  # register + touch

        refined = online.refine(additional_rate=0.05)
        # the appended block participates in the refined answer
        assert online.state.samples_drawn[block_id] > 0
        assert refined.error_against(store.exact_mean()) <= 1.0

    def test_ingest_before_start_rejected(self):
        online = OnlineAggregator(ISLAConfig(), seed=1)
        with pytest.raises(EstimationError):
            online.ingest([1.0, 2.0])


class TestNonIIDAggregation:
    def test_paper_setup_meets_precision(self):
        workload = NonIIDWorkload.paper_blocks(rows_per_block=40_000)
        store = workload.generate_store(seed=2)
        config = ISLAConfig(precision=0.5)
        result = NonIIDAggregator(config, seed=2).aggregate_avg(store)
        assert result.method == "ISLA-noniid"
        assert abs(result.value - workload.true_mean()) <= 2 * config.precision

    def test_beats_global_boundaries_on_heterogeneous_blocks(self):
        from repro.core.isla import ISLAAggregator

        workload = NonIIDWorkload.paper_blocks(rows_per_block=40_000)
        store = workload.generate_store(seed=3)
        config = ISLAConfig(precision=0.5)
        truth = workload.true_mean()
        noniid_error = abs(NonIIDAggregator(config, seed=3).aggregate_avg(store).value - truth)
        global_error = abs(ISLAAggregator(config, seed=3).aggregate_avg(store).value - truth)
        assert noniid_error <= global_error + 0.5


class TestParallelExecution:
    def test_matches_sequential_quality(self, normal_store):
        config = ISLAConfig(precision=0.5)
        truth = normal_store.exact_mean()
        result = ParallelISLAAggregator(config, max_workers=4, seed=6).aggregate_avg(
            normal_store
        )
        assert result.method == "ISLA-parallel"
        assert len(result.block_results) == normal_store.block_count
        assert result.error_against(truth) <= 2 * config.precision

    def test_deterministic_given_seed(self, normal_store):
        config = ISLAConfig(precision=0.5)
        first = ParallelISLAAggregator(config, max_workers=3, seed=9).aggregate_avg(normal_store)
        second = ParallelISLAAggregator(config, max_workers=3, seed=9).aggregate_avg(normal_store)
        assert first.value == pytest.approx(second.value, rel=1e-12)


class TestExtremeValues:
    def test_max_and_min_bracket_the_truth(self, normal_store):
        aggregator = ExtremeValueAggregator(base_rate=0.2, seed=4)
        column = normal_store.full_column()
        max_result = aggregator.aggregate_max(normal_store)
        min_result = aggregator.aggregate_min(normal_store)
        assert max_result.kind == "max" and min_result.kind == "min"
        assert max_result.value <= column.max()
        assert min_result.value >= column.min()
        # With a 20% sampling rate the sampled extreme should be close.
        assert max_result.value >= np.percentile(column, 99.5)
        assert min_result.value <= np.percentile(column, 0.5)

    def test_reports_per_block_diagnostics(self, normal_store):
        result = ExtremeValueAggregator(base_rate=0.05, seed=4).aggregate_max(normal_store)
        assert len(result.per_block_extremes) == normal_store.block_count
        assert len(result.per_block_rates) == normal_store.block_count

    def test_invalid_base_rate(self):
        with pytest.raises(EstimationError):
            ExtremeValueAggregator(base_rate=0.0)


class TestTimeConstrained:
    def test_answers_within_generous_budget(self, normal_store):
        config = ISLAConfig(precision=0.5)
        result = TimeConstrainedAggregator(config, seed=2).aggregate_within(
            normal_store, budget_seconds=5.0
        )
        assert result.method == "ISLA-timed"
        assert result.error_against(normal_store.exact_mean()) <= 1.0
        assert result.elapsed_seconds < 5.0

    def test_impossible_budget_raises(self, normal_store):
        config = ISLAConfig(precision=0.5)
        with pytest.raises(TimeBudgetExceeded):
            TimeConstrainedAggregator(config, seed=2).aggregate_within(
                normal_store, budget_seconds=-1.0
            )
