"""Tests for the experiment harness, runners and CLI (at a reduced scale)."""

import pytest

from repro.experiments import ablations, figures, runtime, tables
from repro.experiments.cli import main
from repro.experiments.harness import ExperimentResult, compare_methods
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.core.config import ISLAConfig
from repro.errors import ConfigurationError

#: small sizes so the whole module runs in seconds
SMALL = dict(data_size=60_000, datasets=2, seed=1)


class TestHarness:
    def test_result_rendering(self):
        result = ExperimentResult("x", "A title", columns=["a", "b"])
        result.add_row("row1", a=1.0, b=2.0)
        result.add_row("row2", a=3.0)
        text = result.to_text()
        assert "A title" in text
        assert "row1" in text and "row2" in text
        assert result.column_values("a") == [1.0, 3.0]
        assert result.column_values("b") == [2.0]

    def test_compare_methods_includes_truth(self, normal_store):
        comparison = compare_methods(
            ["US", "MV"], normal_store, ISLAConfig(precision=0.5), seed=0
        )
        assert set(comparison.answers) == {"US", "MV"}
        assert comparison.error("US") < comparison.error("MV")


class TestRunners:
    def test_fig6a(self):
        result = figures.run_fig6a_precision(
            precisions=(0.1, 0.2), data_size=60_000, datasets=2, seed=1
        )
        assert len(result.rows) == 2
        for answer in result.column_values("dataset1"):
            assert answer == pytest.approx(100.0, abs=1.0)

    def test_fig6c_blocks(self):
        result = figures.run_fig6c_blocks(
            block_counts=(4, 8), data_size=60_000, datasets=2, seed=1
        )
        assert [row.label for row in result.rows] == ["b=4", "b=8"]

    def test_varying_data_size(self):
        result = figures.run_varying_data_size(sizes=(30_000, 60_000), seed=1)
        errors = result.column_values("abs_error")
        assert all(error < 1.0 for error in errors)

    def test_table3_shape(self):
        result = tables.run_table3_accuracy(**SMALL)
        # The last row is the average; MV should sit near 104, ISLA near 100.
        average = result.rows[-1].values
        assert average["MV"] == pytest.approx(104.0, abs=1.5)
        assert average["ISLA"] == pytest.approx(100.0, abs=0.5)
        assert average["ISLA"] < average["MVB"] < average["MV"]

    def test_table5_isla_uses_less_budget_and_meets_precision(self):
        result = tables.run_table5_uniform_stratified(**SMALL)
        for row in result.rows:
            assert row.values["ISLA_error"] <= 1.5  # e = 0.5 with slack for noise

    def test_table4_partial_answers(self):
        result = tables.run_table4_modulation(data_size=60_000, seed=1)
        assert len(result.rows) == 10
        for row in result.rows:
            assert row.values["ISLA_partial"] == pytest.approx(100.0, abs=1.5)

    def test_table6_exponential_ordering(self):
        result = tables.run_table6_exponential(
            rates=(0.1, 0.2), data_size=60_000, seed=1
        )
        for row in result.rows:
            truth = row.values["accurate"]
            assert abs(row.values["ISLA"] - truth) < abs(row.values["MV"] - truth)

    def test_table7_uniform_ordering(self):
        result = tables.run_table7_uniform(datasets=2, data_size=60_000, seed=1)
        for row in result.rows:
            assert abs(row.values["ISLA"] - 100.0) < abs(row.values["MV"] - 100.0)
            assert abs(row.values["ISLA"] - 100.0) < abs(row.values["MVB"] - 100.0)

    def test_noniid_runner(self):
        result = tables.run_noniid(rows_per_block=20_000, runs=2, seed=1)
        for row in result.rows:
            assert row.values["abs_error"] < 1.5

    def test_real_data_runner(self):
        result = tables.run_real_data(salary_rows=40_000, trip_rows=40_000, seed=1)
        assert {row.label for row in result.rows} == {"salary", "tlc_trip"}
        for row in result.rows:
            truth = row.values["truth"]
            assert abs(row.values["ISLA"] - truth) < abs(row.values["MV"] - truth)

    def test_runtime_runner(self):
        result = runtime.run_runtime_comparison(rows=50_000, repetitions=1, seed=1)
        methods = [row.label for row in result.rows]
        assert methods == ["ISLA", "MV", "MVB", "US", "STS"]
        assert all(row.values["total_seconds"] > 0 for row in result.rows)

    def test_alpha_ablation(self):
        result = ablations.run_alpha_ablation(
            alphas=(0.0, 0.5), data_size=60_000, datasets=2, seed=1
        )
        assert "ISLA_iterative" in result.columns

    def test_q_ablation(self):
        result = ablations.run_q_ablation(
            sketch_biases=(-0.5, 0.5), data_size=60_000, seed=1
        )
        assert len(result.rows) == 2


class TestRegistryAndCli:
    def test_registry_contains_every_paper_artifact(self):
        for key in ("fig6a", "fig6b", "fig6c", "fig6d", "table3", "table4",
                    "table5", "table6", "table7", "noniid", "realdata", "runtime"):
            assert key in EXPERIMENTS

    def test_get_experiment_unknown(self):
        with pytest.raises(ConfigurationError):
            get_experiment("nope")

    def test_list_experiments_descriptions(self):
        descriptions = list_experiments()
        assert descriptions["table3"].startswith("Table III")

    def test_cli_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out

    def test_cli_runs_one_experiment(self, capsys):
        assert main(["table7", "--data-size", "30000", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table VII" in out
