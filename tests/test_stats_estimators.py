"""Unit tests for the classical estimators used by the baselines."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.stats.estimators import (
    hansen_hurwitz_mean,
    population_total,
    trimmed_mean,
    weighted_mean,
)


class TestWeightedMean:
    def test_equal_weights_is_plain_mean(self):
        assert weighted_mean([1, 2, 3, 4], [1, 1, 1, 1]) == pytest.approx(2.5)

    def test_weights_need_not_be_normalised(self):
        assert weighted_mean([10, 20], [2, 6]) == pytest.approx(17.5)

    def test_rejects_empty(self):
        with pytest.raises(EstimationError):
            weighted_mean([], [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(EstimationError):
            weighted_mean([1, 2], [1])

    def test_rejects_zero_weight_sum(self):
        with pytest.raises(EstimationError):
            weighted_mean([1, 2], [0, 0])


class TestHansenHurwitz:
    def test_uniform_probabilities_reduce_to_sample_mean(self, rng):
        population = rng.normal(50, 5, size=1_000)
        indices = rng.integers(0, 1_000, size=200)
        probs = np.full(200, 1.0 / 1_000)
        estimate = hansen_hurwitz_mean(population[indices], probs, population_size=1_000)
        assert estimate == pytest.approx(population[indices].mean(), rel=1e-9)

    def test_unbiased_under_pps(self, rng):
        # Probability-proportional-to-size sampling of a known population.
        population = rng.uniform(1.0, 10.0, size=500)
        probabilities = population / population.sum()
        estimates = []
        for seed in range(200):
            local = np.random.default_rng(seed)
            draws = local.choice(500, size=50, replace=True, p=probabilities)
            estimates.append(
                hansen_hurwitz_mean(population[draws], probabilities[draws], 500)
            )
        assert np.mean(estimates) == pytest.approx(population.mean(), rel=0.02)

    def test_rejects_zero_probability(self):
        with pytest.raises(EstimationError):
            hansen_hurwitz_mean([1.0], [0.0], 10)

    def test_rejects_empty_sample(self):
        with pytest.raises(EstimationError):
            hansen_hurwitz_mean([], [], 10)


class TestTrimmedMean:
    def test_no_trim_is_plain_mean(self):
        assert trimmed_mean([1, 2, 3, 100], proportion=0.0) == pytest.approx(26.5)

    def test_trimming_removes_outliers(self):
        values = list(range(100)) + [10_000]
        assert trimmed_mean(values, proportion=0.05) < 60

    def test_rejects_half_or_more(self):
        with pytest.raises(EstimationError):
            trimmed_mean([1, 2, 3], proportion=0.5)


class TestPopulationTotal:
    def test_sum_is_mean_times_size(self):
        assert population_total(2.5, 1000) == pytest.approx(2500.0)

    def test_rejects_negative_size(self):
        with pytest.raises(EstimationError):
            population_total(1.0, -1)
