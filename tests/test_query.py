"""Unit and integration tests for the query front-end."""

import pytest

from repro.core.result import AggregateResult
from repro.errors import (
    QueryPlanError,
    QuerySyntaxError,
    TimeBudgetExceeded,
    UnknownTableError,
)
from repro.query.ast import AggregateQuery
from repro.query.engine import AQPEngine
from repro.query.parser import parse_query, tokenize


class TestTokenizer:
    def test_splits_words_numbers_punctuation(self):
        tokens = tokenize("SELECT AVG(value) FROM t PRECISION 0.1")
        assert tokens == ["SELECT", "AVG", "(", "value", ")", "FROM", "t",
                          "PRECISION", "0.1"]

    def test_scientific_notation(self):
        assert tokenize("PRECISION 1e-3") == ["PRECISION", "1e-3"]

    def test_rejects_garbage(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("SELECT @#!")


class TestParser:
    def test_minimal_query_defaults(self):
        query = parse_query("SELECT AVG(price) FROM orders")
        assert query.aggregate == "avg"
        assert query.column == "price"
        assert query.table == "orders"
        assert query.precision == 0.1
        assert query.confidence == 0.95
        assert query.method == "ISLA"

    def test_full_query(self):
        query = parse_query(
            "SELECT SUM(amount) FROM sales WHERE PRECISION 0.25 "
            "CONFIDENCE 0.99 METHOD US TIME 500;"
        )
        assert query.aggregate == "sum"
        assert query.precision == 0.25
        assert query.confidence == 0.99
        assert query.method == "US"
        assert query.time_budget_ms == 500

    def test_case_insensitive_keywords(self):
        query = parse_query("select avg(x) from t precision 0.2 method mvb")
        assert query.method == "MVB"

    def test_describe_round_trips(self):
        query = parse_query("SELECT AVG(x) FROM t PRECISION 0.3 METHOD STS")
        assert parse_query(query.describe()) == query

    @pytest.mark.parametrize(
        "statement",
        [
            "",
            "SELECT FROM t",
            "SELECT MEDIAN(x) FROM t",
            "SELECT AVG(x) t",
            "SELECT AVG(x) FROM t PRECISION abc",
            "SELECT AVG(x) FROM t METHOD GUESS",
            "SELECT AVG(x) FROM t FROBNICATE 3",
            "SELECT AVG(x) FROM t PRECISION -0.5",
        ],
    )
    def test_rejects_invalid_statements(self, statement):
        with pytest.raises(QuerySyntaxError):
            parse_query(statement)

    def test_ast_validation(self):
        with pytest.raises(QuerySyntaxError):
            AggregateQuery(aggregate="avg", column="x", table="t", confidence=2.0)

    def test_cache_signature_named_fields(self):
        query = parse_query("SELECT SUM(x) FROM Orders PRECISION 0.3")
        signature = query.cache_signature()
        # the named fields are the API; positional indexing stays for
        # backward compatibility with tuple-keyed caches
        assert signature.table == "orders"
        assert signature.aggregate == "sum"
        assert signature.column == "x"
        assert signature.method == "ISLA"
        assert signature.time_budget_ms is None
        assert signature == (
            signature.aggregate,
            signature.column,
            signature.table,
            signature.method,
            signature.time_budget_ms,
        )
        assert hash(signature) == hash(tuple(signature))

    def test_cache_signature_ignores_error_budget(self):
        tight = parse_query("SELECT AVG(x) FROM t PRECISION 0.1 CONFIDENCE 0.99")
        loose = parse_query("SELECT AVG(x) FROM t PRECISION 2 CONFIDENCE 0.9")
        assert tight.cache_signature() == loose.cache_signature()


class TestEngine:
    @pytest.fixture
    def engine(self, normal_values):
        engine = AQPEngine(seed=5)
        engine.register_array("readings", normal_values, block_count=10)
        return engine

    def test_register_and_list_tables(self, engine):
        assert engine.tables == ("readings",)

    def test_explain(self, engine):
        text = engine.explain("SELECT AVG(value) FROM readings PRECISION 0.5")
        assert "readings" in text and "ISLA" in text

    def test_isla_execution(self, engine, normal_values):
        result = engine.execute("SELECT AVG(value) FROM readings PRECISION 0.5")
        assert result.method == "ISLA"
        assert result.value == pytest.approx(normal_values.mean(), abs=0.5)
        assert isinstance(result.raw, AggregateResult)

    def test_sum_execution(self, engine, normal_values):
        result = engine.execute("SELECT SUM(value) FROM readings PRECISION 0.5")
        assert result.value == pytest.approx(normal_values.sum(), rel=0.01)

    @pytest.mark.parametrize("method", ["US", "STS", "MV", "MVB", "EBS", "BILEVEL", "BLOCK"])
    def test_baseline_methods_execute(self, engine, method):
        result = engine.execute(
            f"SELECT AVG(value) FROM readings PRECISION 0.5 METHOD {method}"
        )
        assert result.method == method
        assert result.sample_size > 0

    def test_exact_method(self, engine, normal_values):
        result = engine.execute("SELECT AVG(value) FROM readings METHOD EXACT")
        assert result.value == pytest.approx(normal_values.mean(), rel=1e-12)

    def test_time_budget_execution(self, engine):
        result = engine.execute(
            "SELECT AVG(value) FROM readings PRECISION 0.5 TIME 500"
        )
        assert result.sample_size > 0
        assert result.details["time_budget_ms"] == 500

    def test_time_budget_result_reports_actual_method(self, engine):
        result = engine.execute(
            "SELECT AVG(value) FROM readings PRECISION 0.5 TIME 500"
        )
        assert result.method == "ISLA-timed"

    def test_blown_time_budget_propagates(self, engine):
        # A 1 microsecond budget cannot even cover pre-estimation +
        # calibration; the runtime failure must surface as TimeBudgetExceeded,
        # not be re-wrapped as a planning error.
        with pytest.raises(TimeBudgetExceeded):
            engine.execute(
                "SELECT AVG(value) FROM readings PRECISION 0.5 TIME 0.001"
            )

    def test_unknown_table(self, engine):
        with pytest.raises(UnknownTableError):
            engine.execute("SELECT AVG(value) FROM ghost PRECISION 0.5")

    def test_unknown_column_is_a_plan_error(self, engine):
        with pytest.raises(QueryPlanError):
            engine.execute("SELECT AVG(missing) FROM readings PRECISION 0.5")
