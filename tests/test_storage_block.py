"""Unit tests for Block and Table."""

import numpy as np
import pytest

from repro.errors import StorageError, UnknownColumnError
from repro.storage.block import Block
from repro.storage.table import Table


class TestBlock:
    def test_size_and_columns(self):
        block = Block(block_id=0, columns={"a": np.arange(10.0), "b": np.ones(10)})
        assert len(block) == 10
        assert block.size == 10
        assert set(block.column_names) == {"a", "b"}

    def test_inconsistent_column_lengths_rejected(self):
        with pytest.raises(StorageError):
            Block(block_id=0, columns={"a": np.arange(3.0), "b": np.arange(4.0)})

    def test_unknown_column(self):
        block = Block.from_values(1, np.arange(5.0))
        with pytest.raises(UnknownColumnError):
            block.column("missing")

    def test_sample_column_with_replacement(self, rng):
        block = Block.from_values(0, np.arange(100.0))
        sample = block.sample_column("value", 500, rng)
        assert sample.size == 500
        assert sample.min() >= 0.0 and sample.max() <= 99.0

    def test_sample_without_replacement_clips_to_size(self, rng):
        block = Block.from_values(0, np.arange(10.0))
        sample = block.sample_column("value", 50, rng, replace=False)
        assert sample.size == 10
        assert sorted(sample.tolist()) == list(map(float, range(10)))

    def test_sample_zero_returns_empty(self, rng):
        block = Block.from_values(0, np.arange(10.0))
        assert block.sample_column("value", 0, rng).size == 0

    def test_sample_empty_block_raises(self, rng):
        block = Block.from_values(0, np.empty(0))
        with pytest.raises(StorageError):
            block.sample_column("value", 5, rng)

    def test_iter_column_batches(self):
        block = Block.from_values(0, np.arange(1000.0))
        batches = list(block.iter_column("value", batch_size=300))
        assert [b.size for b in batches] == [300, 300, 300, 100]
        assert np.concatenate(batches).tolist() == list(map(float, range(1000)))

    def test_values_coerced_to_float(self):
        block = Block.from_values(0, [1, 2, 3])
        assert block.column("value").dtype == np.float64


class TestTable:
    def test_from_mapping_and_row_count(self):
        table = Table.from_mapping("t", {"x": [1, 2, 3], "y": [4, 5, 6]})
        assert table.row_count == 3
        assert set(table.column_names) == {"x", "y"}

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(StorageError):
            Table.from_mapping("t", {"x": [1, 2], "y": [1]})

    def test_unknown_column(self):
        table = Table.from_values("t", [1.0, 2.0])
        with pytest.raises(UnknownColumnError):
            table.column("nope")

    def test_with_column_returns_new_table(self):
        table = Table.from_values("t", [1.0, 2.0])
        extended = table.with_column("twice", [2.0, 4.0])
        assert "twice" not in table.column_names
        assert extended.column("twice").tolist() == [2.0, 4.0]

    def test_with_column_length_mismatch(self):
        table = Table.from_values("t", [1.0, 2.0])
        with pytest.raises(StorageError):
            table.with_column("bad", [1.0])
