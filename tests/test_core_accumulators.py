"""Unit tests for the region moment accumulators (paramS / paramL)."""

import numpy as np
import pytest

from repro.core.accumulators import RegionMoments
from repro.errors import EstimationError


class TestRegionMoments:
    def test_update_matches_power_sums(self, rng):
        values = rng.normal(100.0, 20.0, size=1_000)
        moments = RegionMoments.from_values(values)
        assert moments.count == 1_000
        assert moments.total == pytest.approx(values.sum())
        assert moments.square_sum == pytest.approx((values ** 2).sum())
        assert moments.cube_sum == pytest.approx((values ** 3).sum())
        assert moments.mean == pytest.approx(values.mean())

    def test_scalar_updates_equal_batch(self, rng):
        values = rng.uniform(0, 50, size=200)
        scalar = RegionMoments()
        for value in values:
            scalar.update(float(value))
        batch = RegionMoments.from_values(values)
        assert scalar.count == batch.count
        assert scalar.total == pytest.approx(batch.total)
        assert scalar.square_sum == pytest.approx(batch.square_sum)
        assert scalar.cube_sum == pytest.approx(batch.cube_sum)

    def test_order_insensitivity(self, rng):
        """The paper's key property: accumulators ignore the sampling order."""
        values = rng.normal(10.0, 3.0, size=500)
        shuffled = rng.permutation(values)
        forward = RegionMoments.from_values(values)
        permuted = RegionMoments.from_values(shuffled)
        assert forward.total == pytest.approx(permuted.total)
        assert forward.square_sum == pytest.approx(permuted.square_sum)
        assert forward.cube_sum == pytest.approx(permuted.cube_sum)

    def test_merge_supports_online_mode(self, rng):
        first_round = rng.normal(0, 1, size=300)
        second_round = rng.normal(0, 1, size=700)
        merged = RegionMoments.from_values(first_round)
        merged.merge(RegionMoments.from_values(second_round))
        full = RegionMoments.from_values(np.concatenate([first_round, second_round]))
        assert merged.count == full.count
        assert merged.cube_sum == pytest.approx(full.cube_sum)

    def test_add_operator(self):
        a = RegionMoments.from_values([1.0, 2.0])
        b = RegionMoments.from_values([3.0])
        combined = a + b
        assert combined.count == 3
        assert a.count == 2 and b.count == 1  # operands untouched

    def test_empty_region(self):
        moments = RegionMoments()
        assert moments.is_empty
        with pytest.raises(EstimationError):
            _ = moments.mean

    def test_copy_is_independent(self):
        original = RegionMoments.from_values([2.0])
        clone = original.copy()
        clone.update(5.0)
        assert original.count == 1 and clone.count == 2
