"""Integration tests for the full ISLA pipeline."""

import numpy as np
import pytest

from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.errors import EmptyDataError
from repro.storage.blockstore import BlockStore
from repro.workloads.synthetic import ExponentialWorkload, NormalWorkload, UniformWorkload


class TestAggregateAvg:
    def test_meets_precision_on_paper_default_workload(self, normal_store):
        config = ISLAConfig(precision=0.5)
        truth = normal_store.exact_mean()
        result = ISLAAggregator(config, seed=11).aggregate_avg(normal_store)
        assert result.error_against(truth) <= config.precision
        assert result.aggregate == "avg"
        assert result.method == "ISLA"
        assert result.sample_size > 0
        assert len(result.block_results) == normal_store.block_count

    def test_result_metadata_is_consistent(self, normal_store):
        config = ISLAConfig(precision=0.5)
        result = ISLAAggregator(config, seed=11).aggregate_avg(normal_store)
        assert result.data_size == normal_store.total_rows
        assert result.interval.contains(result.value)
        assert result.precision == config.precision
        assert result.confidence == config.confidence
        assert result.participating_samples <= result.sample_size
        assert 0.0 < result.sampling_rate <= 1.0
        dictionary = result.to_dict()
        assert dictionary["value"] == result.value
        assert dictionary["blocks"] == normal_store.block_count

    def test_same_seed_is_deterministic(self, normal_store):
        config = ISLAConfig(precision=0.5)
        first = ISLAAggregator(config, seed=3).aggregate_avg(normal_store)
        second = ISLAAggregator(config, seed=3).aggregate_avg(normal_store)
        assert first.value == pytest.approx(second.value, rel=1e-12)

    def test_rate_override_controls_sample_size(self, normal_store):
        config = ISLAConfig(precision=0.5)
        full = ISLAAggregator(config, seed=4).aggregate_avg(normal_store)
        third = ISLAAggregator(config, seed=4).aggregate_avg(
            normal_store, rate=full.sampling_rate / 3.0
        )
        assert third.sample_size == pytest.approx(full.sample_size / 3.0, rel=0.05)

    def test_accepts_external_rng(self, normal_store):
        config = ISLAConfig(precision=0.5)
        rng = np.random.default_rng(9)
        result = ISLAAggregator(config).aggregate_avg(normal_store, rng=rng)
        assert result.error_against(normal_store.exact_mean()) < 1.0

    def test_negative_data_translation(self):
        """The footnote-1 trick: all-negative data still aggregate correctly."""
        workload = NormalWorkload(200_000, mean=-500.0, std=20.0, seed=8)
        store = workload.generate_store("negative", block_count=10)
        config = ISLAConfig(precision=0.5)
        result = ISLAAggregator(config, seed=8).aggregate_avg(store)
        assert result.translation_offset > 0.0
        assert result.error_against(store.exact_mean()) <= 3 * config.precision

    def test_small_store_with_empty_regions_falls_back(self):
        store = BlockStore.from_array("tiny", np.full(200, 7.0), block_count=2)
        result = ISLAAggregator(ISLAConfig(precision=0.5), seed=1).aggregate_avg(store)
        assert result.value == pytest.approx(7.0)
        assert result.fallback_blocks == 2

    def test_empty_store_rejected(self):
        store = BlockStore(name="empty")
        with pytest.raises(EmptyDataError):
            ISLAAggregator(ISLAConfig(), seed=0).aggregate_avg(store)


class TestAggregateSum:
    def test_sum_is_avg_times_size(self, normal_store):
        config = ISLAConfig(precision=0.5)
        aggregator = ISLAAggregator(config, seed=21)
        avg = aggregator.aggregate_avg(normal_store)
        total = ISLAAggregator(config, seed=21).aggregate_sum(normal_store)
        assert total.aggregate == "sum"
        assert total.value == pytest.approx(avg.value * normal_store.total_rows, rel=1e-9)
        assert total.precision == pytest.approx(config.precision * normal_store.total_rows)
        assert total.error_against(normal_store.exact_sum()) <= total.precision


class TestOtherDistributions:
    def test_exponential_shape(self):
        """Table VI shape: ISLA under-estimates mildly; stays within ~20%."""
        workload = ExponentialWorkload(300_000, rate=0.1, seed=2)
        store = workload.generate_store("exp", block_count=10)
        result = ISLAAggregator(ISLAConfig(precision=0.1), seed=2).aggregate_avg(store)
        assert 8.0 <= result.value <= 10.5

    def test_uniform_distribution_accuracy(self):
        """Table VII shape: ISLA lands close to 100 on Uniform[1, 199]."""
        workload = UniformWorkload(300_000, low=1.0, high=199.0, seed=2)
        store = workload.generate_store("uniform", block_count=10)
        result = ISLAAggregator(ISLAConfig(precision=0.1), seed=2).aggregate_avg(store)
        assert result.value == pytest.approx(100.0, abs=1.5)
