"""Unit tests for ISLAConfig and the data boundaries / regions."""

import numpy as np
import pytest

from repro.core.boundaries import DataBoundaries, Region
from repro.core.config import ISLAConfig
from repro.errors import ConfigurationError


class TestISLAConfig:
    def test_paper_defaults(self):
        config = ISLAConfig.paper_defaults()
        assert config.precision == 0.1
        assert config.confidence == 0.95
        assert config.p1 == 0.5
        assert config.p2 == 2.0
        assert config.step_length_factor == 0.8
        assert config.convergence_rate == 0.5

    def test_relaxed_precision(self):
        config = ISLAConfig(precision=0.2, relaxed_factor=3.0)
        assert config.relaxed_precision == pytest.approx(0.6)

    def test_with_updates_revalidates(self):
        config = ISLAConfig()
        updated = config.with_updates(precision=0.5)
        assert updated.precision == 0.5
        with pytest.raises(ConfigurationError):
            config.with_updates(precision=-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"precision": 0.0},
            {"confidence": 1.0},
            {"p1": 2.0, "p2": 1.0},
            {"step_length_factor": 1.0},
            {"convergence_rate": 0.0},
            {"threshold": 0.0},
            {"relaxed_factor": 1.0},
            {"pilot_sample_size": 1},
            {"balance_tolerance": 0.0},
            {"mild_band": 0.001},       # below balance_tolerance
            {"q_moderate": 0.5},
            {"max_iterations": 0},
        ],
    )
    def test_invalid_configurations(self, kwargs):
        with pytest.raises(ConfigurationError):
            ISLAConfig(**kwargs)


class TestDataBoundaries:
    def test_from_sketch_paper_defaults(self):
        boundaries = DataBoundaries.from_sketch(100.0, 20.0, p1=0.5, p2=2.0)
        assert boundaries.ts_s == pytest.approx(60.0)
        assert boundaries.s_n == pytest.approx(90.0)
        assert boundaries.n_l == pytest.approx(110.0)
        assert boundaries.l_tl == pytest.approx(140.0)
        assert boundaries.center == pytest.approx(100.0)

    def test_classify_value_each_region(self):
        boundaries = DataBoundaries.from_sketch(100.0, 20.0)
        assert boundaries.classify_value(10.0) is Region.TOO_SMALL
        assert boundaries.classify_value(60.0) is Region.TOO_SMALL   # closed on TS side
        assert boundaries.classify_value(75.0) is Region.SMALL
        assert boundaries.classify_value(90.0) is Region.NORMAL      # closed on N side
        assert boundaries.classify_value(100.0) is Region.NORMAL
        assert boundaries.classify_value(110.0) is Region.NORMAL
        assert boundaries.classify_value(125.0) is Region.LARGE
        assert boundaries.classify_value(140.0) is Region.TOO_LARGE  # closed on TL side
        assert boundaries.classify_value(500.0) is Region.TOO_LARGE

    def test_vectorised_classification_matches_scalar(self, rng):
        boundaries = DataBoundaries.from_sketch(100.0, 20.0)
        values = rng.normal(100.0, 40.0, size=2_000)
        vectorised = boundaries.classify(values)
        scalar = np.array([int(boundaries.classify_value(v)) for v in values])
        assert np.array_equal(vectorised, scalar)

    def test_split_sl(self, rng):
        boundaries = DataBoundaries.from_sketch(100.0, 20.0)
        values = rng.normal(100.0, 20.0, size=5_000)
        s_values, l_values = boundaries.split_sl(values)
        assert np.all((s_values > 60.0) & (s_values < 90.0))
        assert np.all((l_values > 110.0) & (l_values < 140.0))
        regions = boundaries.classify(values)
        assert s_values.size == int((regions == int(Region.SMALL)).sum())
        assert l_values.size == int((regions == int(Region.LARGE)).sum())

    def test_region_widths_and_translate(self):
        boundaries = DataBoundaries.from_sketch(100.0, 20.0)
        assert boundaries.region_widths == pytest.approx((30.0, 20.0, 30.0))
        shifted = boundaries.translate(10.0)
        assert shifted.center == pytest.approx(110.0)
        assert shifted.region_widths == boundaries.region_widths

    def test_short_names(self):
        assert [region.short_name for region in Region] == ["TS", "S", "N", "L", "TL"]

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DataBoundaries.from_sketch(100.0, -1.0)
        with pytest.raises(ConfigurationError):
            DataBoundaries.from_sketch(100.0, 20.0, p1=2.0, p2=1.0)
        with pytest.raises(ConfigurationError):
            DataBoundaries(ts_s=1.0, s_n=0.5, n_l=2.0, l_tl=3.0)
