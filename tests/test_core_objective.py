"""Unit tests for probabilities (Eq. 2) and Theorem 3's closed form."""

import numpy as np
import pytest

from repro.core.accumulators import RegionMoments
from repro.core.objective import ObjectiveFunction, leverage_coefficients
from repro.core.probability import leverage_based_average, reweighted_probabilities
from repro.errors import EstimationError


class TestProbabilities:
    def test_probabilities_sum_to_one_for_any_alpha(self, rng):
        leverages = rng.dirichlet(np.ones(25))
        for alpha in (0.0, 0.1, 0.5, 0.9):
            probabilities = reweighted_probabilities(leverages, alpha)
            assert probabilities.sum() == pytest.approx(1.0)

    def test_alpha_zero_is_uniform(self):
        leverages = np.array([0.7, 0.2, 0.1])
        assert reweighted_probabilities(leverages, 0.0) == pytest.approx([1 / 3] * 3)

    def test_alpha_one_is_pure_leverage(self):
        leverages = np.array([0.7, 0.2, 0.1])
        assert reweighted_probabilities(leverages, 1.0) == pytest.approx(leverages)

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            reweighted_probabilities(np.empty(0), 0.5)

    def test_paper_example_1_answer(self):
        """Section IV-B / Table II: S={4,5}, L={8}, alpha=0.1 gives ~5.67."""
        estimate, prob_s, prob_l = leverage_based_average(
            np.array([4.0, 5.0]), np.array([8.0]), alpha=0.1
        )
        assert estimate == pytest.approx(5.665, abs=0.01)
        assert prob_s.sum() + prob_l.sum() == pytest.approx(1.0)


class TestTheorem3:
    def test_c_is_mean_of_participating_samples(self, rng):
        s = rng.uniform(60, 90, size=40)
        l = rng.uniform(110, 140, size=60)
        _, c = leverage_coefficients(RegionMoments.from_values(s),
                                     RegionMoments.from_values(l))
        assert c == pytest.approx(np.concatenate([s, l]).mean())

    @pytest.mark.parametrize("alpha", [-0.3, 0.0, 0.1, 0.25, 0.6, 1.0])
    @pytest.mark.parametrize("q", [0.1, 0.2, 1.0, 5.0])
    def test_closed_form_matches_explicit_computation(self, rng, alpha, q):
        """kα + c must equal the per-sample computation of Appendix A."""
        s = rng.uniform(60, 90, size=35)
        l = rng.uniform(110, 140, size=55)
        objective = ObjectiveFunction.from_moments(
            RegionMoments.from_values(s), RegionMoments.from_values(l), q=q
        )
        explicit, _, _ = leverage_based_average(s, l, alpha=alpha, q=q)
        assert objective.l_estimator(alpha) == pytest.approx(explicit, rel=1e-9)

    def test_paper_example_1_at_alpha_0_1(self):
        objective = ObjectiveFunction.from_moments(
            RegionMoments.from_values([4.0, 5.0]), RegionMoments.from_values([8.0])
        )
        assert objective.c == pytest.approx(17.0 / 3.0)
        assert objective.l_estimator(0.1) == pytest.approx(5.665, abs=0.01)

    def test_initial_value_and_alpha_solver(self):
        objective = ObjectiveFunction(k=2.0, c=10.0)
        assert objective.initial_value(9.0) == pytest.approx(1.0)
        assert objective.value(0.5, 9.0) == pytest.approx(2.0)
        assert objective.alpha_for_target(12.0) == pytest.approx(1.0)

    def test_alpha_solver_rejects_zero_k(self):
        with pytest.raises(EstimationError):
            ObjectiveFunction(k=0.0, c=1.0).alpha_for_target(2.0)

    def test_empty_region_rejected(self):
        with pytest.raises(EstimationError):
            leverage_coefficients(RegionMoments(), RegionMoments.from_values([1.0]))

    def test_invalid_q_rejected(self):
        s = RegionMoments.from_values([1.0])
        l = RegionMoments.from_values([2.0])
        with pytest.raises(EstimationError):
            leverage_coefficients(s, l, q=0.0)
