"""Unit tests for the baseline samplers and estimators."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import (
    BiLevelAggregator,
    BlockLevelAggregator,
    ErrorBoundedStratifiedAggregator,
    MeasureBiasedBoundaryAggregator,
    MeasureBiasedValueAggregator,
    ReservoirSampler,
    SlevAggregator,
    StratifiedAggregator,
    UniformAggregator,
)
from repro.storage.blockstore import BlockStore


class TestBaseRateResolution:
    def test_rate_and_precision_are_mutually_exclusive(self, normal_store):
        with pytest.raises(SamplingError):
            UniformAggregator(seed=0).aggregate(normal_store, rate=0.1, precision=0.5)

    def test_one_of_rate_or_precision_required(self, normal_store):
        with pytest.raises(SamplingError):
            UniformAggregator(seed=0).aggregate(normal_store)

    def test_invalid_rate_rejected(self, normal_store):
        with pytest.raises(SamplingError):
            UniformAggregator(seed=0).aggregate(normal_store, rate=1.7)

    def test_precision_derives_reasonable_rate(self, normal_store):
        estimate = UniformAggregator(seed=0).aggregate(normal_store, precision=0.5)
        # sigma ~ 20, e = 0.5, beta = 0.95 -> m ~ 6150 over 200k rows -> ~3%.
        assert 0.02 < estimate.sampling_rate < 0.045


class TestUniformAndStratified:
    def test_uniform_estimate_is_unbiased(self, normal_store):
        truth = normal_store.exact_mean()
        estimates = [
            UniformAggregator(seed=s).aggregate(normal_store, rate=0.02).value
            for s in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(truth, abs=0.3)

    def test_stratified_proportional(self, normal_store):
        estimate = StratifiedAggregator(seed=1).aggregate(normal_store, rate=0.02)
        assert estimate.method == "STS"
        assert estimate.value == pytest.approx(normal_store.exact_mean(), abs=1.0)
        assert estimate.details["allocation"] == "proportional"

    def test_stratified_neyman_allocates_more_to_spread_blocks(self):
        arrays = [np.random.default_rng(0).normal(100, 1, 20_000),
                  np.random.default_rng(1).normal(100, 50, 20_000)]
        store = BlockStore.from_block_arrays("two", arrays)
        estimate = StratifiedAggregator(allocation="neyman", seed=2).aggregate(store, rate=0.05)
        per_stratum = estimate.details["per_stratum"]
        assert per_stratum[1] > per_stratum[0]

    def test_stratified_invalid_allocation(self):
        with pytest.raises(SamplingError):
            StratifiedAggregator(allocation="magic")


class TestMeasureBiased:
    def test_mv_is_biased_upward_on_normal_data(self, normal_store):
        """The paper's Table III: MV lands near (mu^2 + sigma^2) / mu = 104."""
        estimate = MeasureBiasedValueAggregator(seed=3).aggregate(normal_store, rate=0.05)
        assert estimate.value == pytest.approx(104.0, abs=1.0)

    def test_mvb_is_between_mv_and_truth(self, normal_store):
        mv = MeasureBiasedValueAggregator(seed=3).aggregate(normal_store, rate=0.05).value
        mvb = MeasureBiasedBoundaryAggregator(seed=3).aggregate(normal_store, rate=0.05).value
        truth = normal_store.exact_mean()
        assert truth < mvb < mv

    def test_mv_on_uniform_data_matches_analysis(self):
        """Table VII: MV on Uniform[1,199] lands near 132-133."""
        values = np.random.default_rng(5).uniform(1, 199, size=300_000)
        store = BlockStore.from_array("u", values, block_count=10)
        estimate = MeasureBiasedValueAggregator(seed=5).aggregate(store, rate=0.05)
        assert estimate.value == pytest.approx(133.0, abs=2.0)

    def test_mvb_invalid_boundaries(self):
        with pytest.raises(SamplingError):
            MeasureBiasedBoundaryAggregator(p1=2.0, p2=1.0)


class TestOtherBaselines:
    def test_slev_is_approximately_unbiased(self, normal_store):
        truth = normal_store.exact_mean()
        estimates = [
            SlevAggregator(alpha=0.9, seed=s).aggregate(normal_store, rate=0.01).value
            for s in range(5)
        ]
        assert np.mean(estimates) == pytest.approx(truth, abs=1.0)

    def test_slev_alpha_validation(self):
        with pytest.raises(SamplingError):
            SlevAggregator(alpha=1.5)

    def test_bilevel_reports_block_leverages(self, normal_store):
        estimate = BiLevelAggregator(seed=4).aggregate(normal_store, rate=0.02)
        leverages = estimate.details["block_leverages"]
        assert len(leverages) == normal_store.block_count
        assert sum(leverages) == pytest.approx(1.0, abs=0.01)
        assert estimate.value == pytest.approx(normal_store.exact_mean(), abs=1.0)

    def test_block_level_uses_subset_of_blocks(self, normal_store):
        estimate = BlockLevelAggregator(block_fraction=0.4, seed=4).aggregate(
            normal_store, rate=0.02
        )
        assert len(estimate.details["blocks_used"]) == 4
        assert estimate.value == pytest.approx(normal_store.exact_mean(), abs=1.5)

    def test_error_bounded_stratified(self, normal_store):
        estimate = ErrorBoundedStratifiedAggregator(strata=6, seed=4).aggregate(
            normal_store, rate=0.02
        )
        assert estimate.value == pytest.approx(normal_store.exact_mean(), abs=1.0)
        assert len(estimate.details["allocations"]) == 6

    def test_error_bounded_requires_two_strata(self):
        with pytest.raises(SamplingError):
            ErrorBoundedStratifiedAggregator(strata=1)


class TestReservoirSampler:
    def test_keeps_at_most_capacity(self):
        sampler = ReservoirSampler(capacity=50, seed=0)
        sampler.extend(range(1_000))
        assert len(sampler) == 50
        assert sampler.seen == 1_000
        assert sampler.is_full

    def test_sample_values_come_from_stream(self):
        sampler = ReservoirSampler(capacity=10, seed=0)
        sampler.extend(float(v) for v in range(100))
        assert all(0 <= v < 100 for v in sampler.sample())

    def test_mean_is_roughly_unbiased(self):
        means = []
        for seed in range(30):
            sampler = ReservoirSampler(capacity=100, seed=seed)
            sampler.extend(float(v) for v in range(1_000))
            means.append(sampler.mean())
        assert np.mean(means) == pytest.approx(499.5, abs=30)

    def test_empty_mean_raises(self):
        with pytest.raises(SamplingError):
            ReservoirSampler(capacity=5).mean()

    def test_invalid_capacity(self):
        with pytest.raises(SamplingError):
            ReservoirSampler(capacity=0)
