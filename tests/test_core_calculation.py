"""Unit tests for pre-estimation, the two calculation phases and summarization."""

import numpy as np
import pytest

from repro.core.accumulators import RegionMoments
from repro.core.boundaries import DataBoundaries
from repro.core.calculation import BlockCalculator, iteration_phase, sampling_phase
from repro.core.config import ISLAConfig
from repro.core.modulation import ModulationCase
from repro.core.pre_estimation import PreEstimator
from repro.core.result import BlockResult
from repro.core.summarization import combine_block_results, combine_partial_means
from repro.errors import EstimationError
from repro.storage.block import Block


class TestPreEstimation:
    def test_estimates_sigma_sketch_and_rate(self, normal_store, rng):
        config = ISLAConfig(precision=0.1)
        estimate = PreEstimator(config).estimate(normal_store, rng=rng)
        assert estimate.sigma == pytest.approx(20.0, rel=0.1)
        assert estimate.sketch0 == pytest.approx(100.0, abs=1.0)
        expected_rate = (1.96 * estimate.sigma / 0.1) ** 2 / normal_store.total_rows
        assert estimate.sampling_rate == pytest.approx(min(1.0, expected_rate), rel=0.01)
        assert estimate.relaxed_precision == pytest.approx(config.relaxed_precision)
        assert estimate.required_sample_size > 0

    def test_sketch_uses_relaxed_precision(self, normal_store, rng):
        config = ISLAConfig(precision=0.5, relaxed_factor=2.0)
        estimate = PreEstimator(config).estimate(normal_store, rng=rng)
        # The sketch sample is about (te)^2 times smaller than the main sample.
        assert estimate.sketch_sample_size < estimate.required_sample_size

    def test_constant_column_degenerates_gracefully(self, rng):
        from repro.storage.blockstore import BlockStore

        store = BlockStore.from_array("const", np.full(1_000, 42.0), block_count=4)
        estimate = PreEstimator(ISLAConfig()).estimate(store, rng=rng)
        assert estimate.sigma == 0.0
        assert estimate.sketch0 == pytest.approx(42.0)
        assert 0.0 < estimate.sampling_rate <= 1.0


class TestSamplingPhase:
    def test_accumulates_only_s_and_l(self, rng):
        block = Block.from_values(0, rng.normal(100.0, 20.0, size=50_000))
        boundaries = DataBoundaries.from_sketch(100.0, 20.0)
        param_s, param_l, drawn = sampling_phase(block, "value", 0.2, boundaries, rng)
        assert drawn == 10_000
        # With the paper's boundaries roughly 57% of a normal sample is S or L.
        participating = param_s.count + param_l.count
        assert 0.45 * drawn < participating < 0.70 * drawn
        # S values are below the centre, L values above: check via the means.
        assert param_s.mean < 100.0 < param_l.mean

    def test_zero_rate_returns_empty(self, rng):
        block = Block.from_values(0, rng.normal(0, 1, size=100))
        boundaries = DataBoundaries.from_sketch(0.0, 1.0)
        param_s, param_l, drawn = sampling_phase(block, "value", 0.0, boundaries, rng)
        assert drawn == 0
        assert param_s.is_empty and param_l.is_empty


class TestIterationPhase:
    def test_balanced_returns_sketch(self):
        param_s = RegionMoments.from_values([80.0] * 100)
        param_l = RegionMoments.from_values([120.0] * 100)
        output = iteration_phase(param_s, param_l, 100.5, ISLAConfig())
        assert output.estimate == 100.5
        assert output.case is ModulationCase.BALANCED
        assert not output.used_fallback

    def test_empty_region_falls_back_to_sketch(self):
        output = iteration_phase(
            RegionMoments(), RegionMoments.from_values([120.0] * 10), 99.0, ISLAConfig()
        )
        assert output.used_fallback
        assert output.estimate == 99.0
        assert output.fallback_reason == "empty_S_region"

    def test_unbalanced_block_is_modulated(self, rng):
        sample = rng.normal(100.0, 20.0, size=40_000)
        sketch0 = 101.0
        boundaries = DataBoundaries.from_sketch(sketch0, 20.0)
        s_values, l_values = boundaries.split_sl(sample)
        output = iteration_phase(
            RegionMoments.from_values(s_values),
            RegionMoments.from_values(l_values),
            sketch0,
            ISLAConfig(),
        )
        assert output.case is not ModulationCase.BALANCED
        assert output.iterations > 0
        assert abs(output.estimate - 100.0) < abs(sketch0 - 100.0)

    def test_clamping_to_sketch_interval(self, rng):
        sample = rng.normal(100.0, 20.0, size=5_000)
        sketch0 = 102.0
        boundaries = DataBoundaries.from_sketch(sketch0, 20.0)
        s_values, l_values = boundaries.split_sl(sample)
        config = ISLAConfig(clamp_to_sketch_interval=True)
        output = iteration_phase(
            RegionMoments.from_values(s_values),
            RegionMoments.from_values(l_values),
            sketch0,
            config,
            sketch_interval_radius=0.05,
        )
        assert sketch0 - 0.05 <= output.estimate <= sketch0 + 0.05


class TestBlockCalculator:
    def test_produces_complete_block_result(self, rng):
        block = Block.from_values(3, rng.normal(100.0, 20.0, size=30_000))
        boundaries = DataBoundaries.from_sketch(100.3, 20.0)
        result = BlockCalculator(ISLAConfig()).run(
            block, "value", 0.3, boundaries, 100.3, rng
        )
        assert isinstance(result, BlockResult)
        assert result.block_id == 3
        assert result.block_size == 30_000
        assert result.sample_size == 9_000
        assert result.participating_samples == result.count_s + result.count_l
        assert result.converged


class TestSummarization:
    def test_weighted_combination(self):
        assert combine_partial_means([10.0, 20.0], [1, 3]) == pytest.approx(17.5)

    def test_combine_block_results(self):
        blocks = [
            BlockResult(block_id=0, estimate=10.0, block_size=100, sample_size=10,
                        count_s=3, count_l=3, case="case5", iterations=0, alpha=0.0,
                        q=1.0, deviation=1.0, converged=True, used_fallback=False),
            BlockResult(block_id=1, estimate=20.0, block_size=300, sample_size=30,
                        count_s=9, count_l=9, case="case5", iterations=0, alpha=0.0,
                        q=1.0, deviation=1.0, converged=True, used_fallback=False),
        ]
        assert combine_block_results(blocks) == pytest.approx(17.5)

    def test_empty_inputs_rejected(self):
        with pytest.raises(EstimationError):
            combine_partial_means([], [])
        with pytest.raises(EstimationError):
            combine_block_results([])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EstimationError):
            combine_partial_means([1.0], [1, 2])
