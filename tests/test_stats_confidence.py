"""Unit tests for repro.stats.confidence (Eq. 1 and Definition 1)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.stats.confidence import (
    ConfidenceInterval,
    confidence_interval,
    half_width,
    normal_quantile,
    required_sample_size,
    required_sampling_rate,
)


class TestNormalQuantile:
    def test_95_percent_quantile(self):
        assert normal_quantile(0.95) == pytest.approx(1.959964, abs=1e-5)

    def test_99_percent_quantile(self):
        assert normal_quantile(0.99) == pytest.approx(2.575829, abs=1e-5)

    def test_monotone_in_confidence(self):
        assert normal_quantile(0.8) < normal_quantile(0.9) < normal_quantile(0.99)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ConfigurationError):
            normal_quantile(bad)


class TestRequiredSampleSize:
    def test_paper_default_parameters(self):
        # sigma=20, e=0.1, beta=0.95: m = (1.96*20/0.1)^2 ~= 153,658.
        m = required_sample_size(20.0, 0.1, 0.95)
        assert 153_000 < m < 154_500

    def test_scales_with_sigma_squared(self):
        base = required_sample_size(10.0, 0.5, 0.95)
        quadrupled = required_sample_size(20.0, 0.5, 0.95)
        assert quadrupled == pytest.approx(4 * base, rel=0.01)

    def test_scales_inverse_with_precision_squared(self):
        loose = required_sample_size(20.0, 0.2, 0.95)
        tight = required_sample_size(20.0, 0.1, 0.95)
        assert tight == pytest.approx(4 * loose, rel=0.01)

    def test_zero_sigma_needs_one_sample(self):
        assert required_sample_size(0.0, 0.1, 0.95) == 1

    def test_rejects_non_positive_precision(self):
        with pytest.raises(ConfigurationError):
            required_sample_size(20.0, 0.0, 0.95)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            required_sample_size(-1.0, 0.1, 0.95)


class TestRequiredSamplingRate:
    def test_rate_is_sample_size_over_population(self):
        m = required_sample_size(20.0, 0.1, 0.95)
        rate = required_sampling_rate(20.0, 0.1, 0.95, 1_000_000)
        assert rate == pytest.approx(m / 1_000_000)

    def test_rate_capped_at_one(self):
        assert required_sampling_rate(20.0, 0.001, 0.95, 100) == 1.0

    def test_rejects_non_positive_population(self):
        with pytest.raises(ConfigurationError):
            required_sampling_rate(20.0, 0.1, 0.95, 0)


class TestHalfWidth:
    def test_matches_definition(self):
        # u * sigma / sqrt(m)
        expected = normal_quantile(0.95) * 20.0 / math.sqrt(10_000)
        assert half_width(20.0, 10_000, 0.95) == pytest.approx(expected)

    def test_round_trip_with_sample_size(self):
        m = required_sample_size(20.0, 0.1, 0.95)
        assert half_width(20.0, m, 0.95) <= 0.1 + 1e-9

    def test_rejects_zero_samples(self):
        with pytest.raises(ConfigurationError):
            half_width(20.0, 0, 0.95)


class TestConfidenceInterval:
    def test_interval_bounds_and_width(self):
        interval = ConfidenceInterval(center=10.0, radius=0.5, confidence=0.95)
        assert interval.low == 9.5
        assert interval.high == 10.5
        assert interval.width == pytest.approx(1.0)

    def test_contains_is_inclusive(self):
        interval = ConfidenceInterval(center=0.0, radius=1.0, confidence=0.9)
        assert interval.contains(1.0)
        assert interval.contains(-1.0)
        assert not interval.contains(1.0001)

    def test_factory_uses_half_width(self):
        interval = confidence_interval(mean=5.0, sigma=2.0, sample_size=400, confidence=0.95)
        assert interval.center == 5.0
        assert interval.radius == pytest.approx(half_width(2.0, 400, 0.95))
