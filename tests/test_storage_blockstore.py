"""Unit tests for BlockStore."""

import numpy as np
import pytest

from repro.errors import EmptyDataError, StorageError, UnknownColumnError
from repro.storage.blockstore import BlockStore, resolve_block_share
from repro.storage.table import Table


class TestConstruction:
    def test_from_array_even_blocks(self):
        store = BlockStore.from_array("t", np.arange(1000.0), block_count=10)
        assert store.block_count == 10
        assert store.total_rows == 1000
        assert all(block.size == 100 for block in store.blocks)

    def test_from_array_uneven_division(self):
        store = BlockStore.from_array("t", np.arange(103.0), block_count=10)
        assert store.total_rows == 103
        assert store.block_count == 10

    def test_from_table_partitions_all_columns(self):
        table = Table.from_mapping("t", {"a": np.arange(100.0), "b": np.arange(100.0) * 2})
        store = BlockStore.from_table(table, block_count=4)
        assert store.block_count == 4
        assert store.has_column("a") and store.has_column("b")

    def test_from_block_arrays(self):
        store = BlockStore.from_block_arrays("t", [[1.0, 2.0], [3.0, 4.0, 5.0]])
        assert store.block_count == 2
        assert store.block_sizes().tolist() == [2.0, 3.0]

    def test_blocks_sorted_by_id(self):
        from repro.storage.block import Block

        blocks = [Block.from_values(2, [1.0]), Block.from_values(0, [2.0]),
                  Block.from_values(1, [3.0])]
        store = BlockStore.from_blocks("t", blocks)
        assert [b.block_id for b in store.blocks] == [0, 1, 2]


class TestValidation:
    def test_validate_default_column(self, small_store):
        assert small_store.validate_column(None) == "value"

    def test_validate_unknown_column(self, small_store):
        with pytest.raises(UnknownColumnError):
            small_store.validate_column("nope")

    def test_empty_store_rejected(self):
        store = BlockStore(name="empty")
        with pytest.raises(EmptyDataError):
            store.validate_column(None)


class TestSampling:
    def test_pilot_sample_size_roughly_proportional(self, small_store, rng):
        pilot = small_store.pilot_sample(None, 400, rng)
        assert 380 <= pilot.size <= 420

    def test_pilot_sample_requires_positive_size(self, small_store, rng):
        with pytest.raises(StorageError):
            small_store.pilot_sample(None, 0, rng)

    def test_uniform_sample_rate(self, small_store, rng):
        sample = small_store.uniform_sample(None, 0.05, rng)
        expected = 0.05 * small_store.total_rows
        assert abs(sample.size - expected) <= small_store.block_count

    def test_uniform_sample_invalid_rate(self, small_store, rng):
        with pytest.raises(StorageError):
            small_store.uniform_sample(None, 0.0, rng)
        with pytest.raises(StorageError):
            small_store.uniform_sample(None, 1.5, rng)

    def test_exact_mean_and_sum(self):
        values = np.arange(1.0, 101.0)
        store = BlockStore.from_array("t", values, block_count=5)
        assert store.exact_mean() == pytest.approx(50.5)
        assert store.exact_sum() == pytest.approx(5050.0)

    def test_full_column_concatenates_all_blocks(self):
        values = np.arange(30.0)
        store = BlockStore.from_array("t", values, block_count=3)
        assert np.array_equal(np.sort(store.full_column()), values)

    def test_resolve_block_share_rounds_normally_above_half(self, rng):
        assert resolve_block_share(0.05, 100, rng) == 5
        assert resolve_block_share(0.01, 250, rng) == 2  # banker's rounding of 2.5
        assert resolve_block_share(0.5, 0, rng) == 0

    def test_resolve_block_share_sub_rounding_draw_is_probabilistic(self):
        # expected share 0.2: rounding alone would always return 0 and the
        # block could never contribute — the probabilistic draw restores an
        # expected contribution of rate * size
        rate, size, trials = 0.02, 10, 20_000
        rng = np.random.default_rng(123)
        draws = sum(resolve_block_share(rate, size, rng) for _ in range(trials))
        assert 0 < draws < trials
        assert draws / trials == pytest.approx(rate * size, rel=0.1)

    def test_uniform_sample_unbiased_on_skewed_block_sizes(self):
        # one huge block plus many tiny ones: with plain round() the tiny
        # blocks (expected share 0.1 each) would never be sampled and the
        # estimate would collapse onto the big block's distribution
        rate = 0.01
        big = np.zeros(10_000)
        tiny = [np.full(10, 100.0) for _ in range(200)]
        store = BlockStore.from_block_arrays("t", [big] + tiny)
        tiny_rows = sum(len(t) for t in tiny)
        expected_mean = 100.0 * tiny_rows / store.total_rows

        rng = np.random.default_rng(7)
        totals = []
        tiny_hits = 0
        for _ in range(400):
            sample = store.uniform_sample(None, rate, rng)
            totals.append(sample)
            tiny_hits += int(np.any(sample == 100.0))
        pooled = np.concatenate(totals)
        # the tiny blocks do contribute...
        assert tiny_hits > 0
        # ...the overall sample size stays at rate * M in expectation...
        assert pooled.size / 400 == pytest.approx(rate * store.total_rows, rel=0.1)
        # ...and the pooled sample mean is unbiased, not collapsed to 0.0
        assert pooled.mean() == pytest.approx(expected_mean, rel=0.15)


class TestAppendBlock:
    def test_append_assigns_next_id(self, small_store):
        before = small_store.block_count
        block = small_store.append_block(np.arange(5.0))
        assert block.block_id == before
        assert small_store.block_count == before + 1

    def test_append_empty_rejected(self, small_store):
        with pytest.raises(EmptyDataError):
            small_store.append_block(np.empty(0))

    def test_append_wrong_column_rejected(self, small_store):
        with pytest.raises(StorageError):
            small_store.append_block(np.arange(5.0), column="other")

    def test_first_append_to_empty_store_checks_default_column(self):
        # regression: the default-column check used to be skipped when the
        # store had no blocks yet, so the first append could create a store
        # whose own default column no block carries
        store = BlockStore(name="fresh", default_column="value")
        with pytest.raises(StorageError):
            store.append_block(np.arange(3.0), column="other")
        assert store.block_count == 0
        block = store.append_block(np.arange(3.0))
        assert block.has_column("value")
