"""Setup shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package (the
legacy ``pip install -e . --no-use-pep517`` path needs a ``setup.py``).
"""

from setuptools import setup

setup()
