"""Benchmark the partition-parallel scan backend against the serial scan.

Measures wall-clock of the serial ISLA aggregator versus
:class:`~repro.parallel.PartitionParallelAggregator` at parallelism 2 and 4
on one multi-block table (best-of-N to damp scheduler noise), and checks
the seed-determinism contract: the same seed must produce bit-identical
estimates and CI bounds at parallelism 1, 2 and 4.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_scan.py
    PYTHONPATH=src python benchmarks/bench_parallel_scan.py --smoke

``--smoke`` shrinks the table so CI can assert the two acceptance
properties in seconds: seeded results bit-identical across parallelism
1/2/4 (always), and the parallel scan beating the serial one (enforced
whenever the machine has at least two usable cores — on a single core the
win is physically impossible and the speed check reports but does not
fail).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.parallel.bench import format_report, run_benchmark  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run with pass/fail assertions (CI)")
    parser.add_argument("--data-size", type=int, default=None,
                        help="rows in the bench table (default 400000, smoke 120000)")
    parser.add_argument("--blocks", type=int, default=16,
                        help="blocks the table is partitioned into (default 16)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions, best-of (default 3, smoke 2)")
    args = parser.parse_args(argv)

    rows = args.data_size if args.data_size is not None else (
        120_000 if args.smoke else 400_000
    )
    repeats = args.repeats if args.repeats is not None else (2 if args.smoke else 3)

    report = run_benchmark(
        rows=rows, blocks=args.blocks, seed=args.seed, repeats=repeats
    )
    print(format_report(report))

    if args.smoke and not report.passed():
        print("SMOKE FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
