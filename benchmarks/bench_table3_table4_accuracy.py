"""Benchmarks for Table III (accuracy vs MV/MVB) and Table IV (modulation)."""

import pytest

from repro.experiments import tables


def test_table3_accuracy_vs_measure_biased(record_experiment, bench_scale):
    """Table III — ISLA ~100, MV ~104, MVB ~100.5 on N(100, 20^2)."""
    result = record_experiment(
        tables.run_table3_accuracy,
        datasets=10,
        data_size=bench_scale,
        precision=0.1,
        seed=0,
    )
    average = result.rows[-1].values
    assert average["ISLA"] == pytest.approx(100.0, abs=0.3)
    assert average["MV"] == pytest.approx(104.0, abs=1.0)
    assert average["MVB"] == pytest.approx(100.5, abs=0.5)
    # Ordering: ISLA closest to the truth, MV farthest.
    assert abs(average["ISLA"] - 100.0) < abs(average["MVB"] - 100.0) < abs(
        average["MV"] - 100.0
    )


def test_table4_modulation_abilities(record_experiment, bench_scale):
    """Table IV — every ISLA partial answer is closer to 100 than MV's."""
    result = record_experiment(
        tables.run_table4_modulation,
        data_size=bench_scale,
        precision=0.1,
        seed=0,
    )
    assert len(result.rows) == 10
    for row in result.rows:
        assert abs(row.values["ISLA_partial"] - 100.0) < abs(
            row.values["MV_partial"] - 100.0
        )
