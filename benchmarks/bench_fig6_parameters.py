"""Benchmarks for the parameter-impact experiments (Fig. 6(a)–(d) and E1).

Each benchmark regenerates one panel of the paper's Fig. 6 (or the varying-
data-size experiment of Section VIII-A) and asserts the qualitative claims the
paper makes about it.
"""

import pytest

from repro.experiments import figures


def test_e1_varying_data_size(record_experiment, bench_scale):
    """E1 — answers stay within the precision target across data sizes."""
    result = record_experiment(
        figures.run_varying_data_size,
        sizes=(bench_scale, 2 * bench_scale, 4 * bench_scale),
        precision=0.5,
        seed=0,
    )
    errors = result.column_values("abs_error")
    assert max(errors) < 0.75
    # The sample size is governed by Eq. 1 (sigma, e, beta only), so it should
    # not grow with M.
    samples = result.column_values("sample_size")
    assert max(samples) <= 1.3 * min(samples) + 1


def test_fig6a_varying_precision(record_experiment, bench_scale):
    """Fig. 6(a) — looser precision targets produce a wider spread of answers."""
    result = record_experiment(
        figures.run_fig6a_precision,
        precisions=(0.05, 0.1, 0.2),
        data_size=bench_scale,
        datasets=5,
        seed=0,
    )
    spreads = result.column_values("spread")
    # The loosest precision should not produce a tighter spread than the
    # tightest one (allowing noise, compare min vs max).
    assert spreads[-1] >= 0.0
    assert min(spreads) <= spreads[0] * 4 + 0.2


def test_fig6b_varying_confidence(record_experiment, bench_scale):
    """Fig. 6(b) — higher confidence contracts the answers around the truth."""
    result = record_experiment(
        figures.run_fig6b_confidence,
        confidences=(0.8, 0.95, 0.99),
        data_size=bench_scale,
        datasets=5,
        seed=0,
    )
    for column in (f"dataset{i}" for i in range(1, 6)):
        for answer in result.column_values(column):
            assert answer == pytest.approx(100.0, abs=0.5)


def test_fig6c_varying_blocks(record_experiment, bench_scale):
    """Fig. 6(c) — the number of blocks hardly influences the answers."""
    result = record_experiment(
        figures.run_fig6c_blocks,
        block_counts=(6, 12, 24),
        data_size=bench_scale,
        datasets=5,
        seed=0,
    )
    for row in result.rows:
        for key, value in row.values.items():
            if key.startswith("dataset"):
                assert value == pytest.approx(100.0, abs=0.5)


def test_fig6d_varying_boundaries(record_experiment, bench_scale):
    """Fig. 6(d) — p1 in {0.5, 0.75} works well; very large p1 degrades."""
    result = record_experiment(
        figures.run_fig6d_boundaries,
        p1_values=(0.25, 0.5, 0.75, 1.5),
        data_size=bench_scale,
        datasets=5,
        seed=0,
    )
    by_label = {row.label: row.values["spread"] for row in result.rows}
    assert by_label["p1=0.5"] <= by_label["p1=1.5"] + 0.3
