"""Benchmark for Table V — ISLA at one third of the sample budget vs US / STS."""

from repro.experiments import tables


def test_table5_isla_third_budget(record_experiment, bench_scale):
    """Table V — ISLA with r/3 stays within the e = 0.5 precision target."""
    result = record_experiment(
        tables.run_table5_uniform_stratified,
        datasets=5,
        data_size=bench_scale,
        precision=0.5,
        seed=0,
    )
    isla_errors = result.column_values("ISLA_error")
    us_errors = result.column_values("US_error")
    # The paper claims ISLA meets the precision requirement with a third of
    # the samples.  Our reproduction confirms it for most data sets but shows
    # a higher variance than the paper reports (see EXPERIMENTS.md): require
    # a majority within the target and a hard cap of 3e on every run.
    within = sum(error <= 0.5 for error in isla_errors)
    assert within >= (len(isla_errors) + 1) // 2
    assert max(isla_errors) <= 1.5
    # And the baselines must also be reported (sanity check on the harness).
    assert len(us_errors) == len(isla_errors)
