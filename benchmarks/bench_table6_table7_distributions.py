"""Benchmarks for Table VI (exponential) and Table VII (uniform) distributions."""

import pytest

from repro.experiments import tables


def test_table6_exponential(record_experiment, bench_scale):
    """Table VI — ISLA stays near 1/gamma while MV roughly doubles it."""
    result = record_experiment(
        tables.run_table6_exponential,
        rates=(0.05, 0.1, 0.15, 0.2),
        data_size=bench_scale,
        seed=0,
    )
    for row in result.rows:
        truth = row.values["accurate"]
        assert abs(row.values["ISLA"] - truth) / truth < 0.25
        assert row.values["MV"] == pytest.approx(2.0 * truth, rel=0.15)
        assert abs(row.values["ISLA"] - truth) < abs(row.values["MV"] - truth)


def test_table7_uniform(record_experiment, bench_scale):
    """Table VII — ISLA near 100, MV near 133, MVB off by several units."""
    result = record_experiment(
        tables.run_table7_uniform,
        datasets=5,
        data_size=bench_scale,
        seed=0,
    )
    for row in result.rows:
        assert row.values["ISLA"] == pytest.approx(100.0, abs=2.0)
        assert row.values["MV"] == pytest.approx(133.0, abs=3.0)
        assert abs(row.values["ISLA"] - 100.0) < abs(row.values["MVB"] - 100.0)
