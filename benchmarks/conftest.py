"""Shared helpers for the benchmark suite.

Each benchmark wraps one experiment runner from :mod:`repro.experiments` in
pytest-benchmark, records the reproduced table in ``benchmark.extra_info`` and
prints it so ``pytest benchmarks/ --benchmark-only -s`` shows the paper-style
output next to the timings.  Scales are reduced relative to the paper (see
DESIGN.md §4); pass ``--bench-scale`` to change the default row count.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        type=int,
        default=150_000,
        help="rows per synthetic data set used by the benchmarks (default 150000)",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> int:
    """Rows per data set for the benchmark runs."""
    return int(request.config.getoption("--bench-scale"))


@pytest.fixture
def record_experiment(benchmark):
    """Run an experiment runner once under the benchmark and record its table."""

    def runner(experiment_callable, **kwargs):
        result = benchmark.pedantic(
            lambda: experiment_callable(**kwargs), rounds=1, iterations=1
        )
        benchmark.extra_info["experiment"] = result.experiment_id
        benchmark.extra_info["title"] = result.title
        benchmark.extra_info["rows"] = [
            {"label": row.label, **row.values} for row in result.rows
        ]
        print()
        print(result.to_text())
        return result

    return runner
