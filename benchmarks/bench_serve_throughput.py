"""Throughput benchmark for the query-serving subsystem.

Compares a serial ``engine.execute`` loop against the
:class:`~repro.serve.QueryService` worker pool (with and without the
precision-aware result cache) on a repeated multi-table workload, and
verifies every served answer against the exact ground truth.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --smoke

``--smoke`` shrinks the data so CI can assert the two acceptance
properties in seconds: the cached pool beats the serial loop, and a
repeated workload reaches at least a 50% cache hit rate with zero
precision violations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serve.bench import format_report, run_throughput_benchmark  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run with pass/fail assertions (CI)")
    parser.add_argument("--data-size", type=int, default=None,
                        help="rows per synthetic table (default 200000, smoke 20000)")
    parser.add_argument("--tables", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=4,
                        help="times each unique statement repeats (default 4)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    data_size = args.data_size if args.data_size is not None else (
        20_000 if args.smoke else 200_000
    )
    report = run_throughput_benchmark(
        data_size=data_size,
        table_count=args.tables,
        repeats=args.repeats,
        workers=args.workers,
        seed=args.seed,
    )
    print(format_report(report))

    failures = []
    # The workload runs at 95% confidence, so ~5% of *executions* may miss
    # their bound by design — and a single tail-event execution can be
    # re-served many times by the cache.  The statistical check therefore
    # counts misses per execution (allowing a couple for binomial slack on
    # small batches); the cache contract check is deterministic and strict.
    if report["executed_misses"] > max(2, round(0.15 * report["executed"])):
        failures.append(
            f"{report['executed_misses']}/{report['executed']} executions missed "
            f"their requested precision against exact ground truth "
            f"(far beyond the 95%-confidence allowance)"
        )
    if report["contract_violations"]:
        failures.append(
            f"{report['contract_violations']} cached answers were served beyond "
            f"their achieved precision/confidence bound (serving-layer bug)"
        )
    if report["cache_hit_rate"] < 0.5:
        failures.append(
            f"cache hit rate {report['cache_hit_rate']:.0%} below the 50% target "
            f"on a x{args.repeats} repeated workload"
        )
    if report["pool_cached_seconds"] >= report["serial_seconds"]:
        failures.append(
            f"cached pool ({report['pool_cached_seconds']:.3f}s) did not beat "
            f"the serial loop ({report['serial_seconds']:.3f}s)"
        )
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nPASS: cached pool beats serial, >=50% cache hits, executions within "
          "bound at the workload confidence level, cache contract intact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
