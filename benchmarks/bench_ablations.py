"""Benchmarks for the two ablation studies (A1: alpha, A2: q)."""

from repro.experiments import ablations


def test_ablation_fixed_vs_iterated_alpha(record_experiment, bench_scale):
    """A1 — the iterated alpha is competitive with the best fixed alpha."""
    result = record_experiment(
        ablations.run_alpha_ablation,
        alphas=(0.0, 0.1, 0.3, 0.5),
        data_size=bench_scale,
        datasets=5,
        seed=0,
    )
    # Average absolute error of the iterative scheme across data sets.
    iterative_errors = [abs(v - 100.0) for v in result.column_values("ISLA_iterative")]
    fixed_half_errors = [abs(v - 100.0) for v in result.column_values("alpha=0.5")]
    assert sum(iterative_errors) <= sum(fixed_half_errors) + 0.5


def test_ablation_q_allocation(record_experiment, bench_scale):
    """A2 — the q guard never makes a biased-sketch run substantially worse."""
    result = record_experiment(
        ablations.run_q_ablation,
        sketch_biases=(-1.0, -0.5, 0.5, 1.0),
        data_size=bench_scale,
        seed=0,
    )
    with_q = result.column_values("with_q_error")
    without_q = result.column_values("without_q_error")
    assert sum(with_q) <= sum(without_q) + 0.5
