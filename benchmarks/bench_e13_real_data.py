"""Benchmark for the real-data analogues of Section VIII-G."""

from repro.experiments import tables


def test_real_data_analogues(record_experiment, bench_scale):
    """Skewed salary-like and trip-distance-like columns (simulated)."""
    result = record_experiment(
        tables.run_real_data,
        salary_rows=max(100_000, bench_scale),
        trip_rows=max(100_000, bench_scale),
        seed=0,
    )
    for row in result.rows:
        truth = row.values["truth"]
        isla_error = abs(row.values["ISLA"] - truth)
        mv_error = abs(row.values["MV"] - truth)
        mvb_error = abs(row.values["MVB"] - truth)
        # ISLA (at half the baselines' budget) must beat both measure-biased
        # baselines on these skewed columns, as in the paper.
        assert isla_error < mv_error
        assert isla_error < mvb_error
