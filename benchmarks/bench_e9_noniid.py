"""Benchmark for the non-i.i.d. experiment of Section VIII-D."""

from repro.experiments import tables


def test_noniid_blocks(record_experiment, bench_scale):
    """Five heterogeneous blocks; every run should satisfy the e = 0.5 target."""
    result = record_experiment(
        tables.run_noniid,
        rows_per_block=max(20_000, bench_scale // 5),
        precision=0.5,
        runs=5,
        seed=0,
    )
    errors = result.column_values("abs_error")
    # Most runs should satisfy the target; every run must stay within 3e
    # (the reproduction shows somewhat higher variance than the paper — see
    # EXPERIMENTS.md).
    within = sum(error <= 0.5 for error in errors)
    assert within >= len(errors) // 2
    assert max(errors) <= 1.5
