"""Benchmark for the runtime comparison of Section VIII-F (TPC-H LINEITEM)."""

from repro.experiments import runtime


def test_runtime_comparison(record_experiment, bench_scale):
    """Relative wall-clock of ISLA / MV / MVB / US / STS on a LINEITEM column."""
    result = record_experiment(
        runtime.run_runtime_comparison,
        rows=max(bench_scale, 200_000),
        repetitions=3,
        seed=0,
    )
    by_method = {row.label: row.values for row in result.rows}
    # The unbiased samplers must land near the true mean of 25.5; the
    # measure-biased baselines are biased by design (that is Table III's
    # point) so only their timings are checked here.
    for method in ("ISLA", "US", "STS"):
        assert by_method[method]["abs_error"] < 2.0
    # ISLA should not be dramatically slower than uniform sampling (the paper
    # reports ~25% overhead; allow a generous factor for timing noise).
    assert by_method["ISLA"]["total_seconds"] <= 12 * by_method["US"]["total_seconds"]
