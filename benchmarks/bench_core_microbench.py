"""Micro-benchmarks of the core primitives (not tied to a paper artifact).

These give per-operation timings for the pieces a downstream user would care
about when sizing a deployment: the per-block sampling phase, the iteration
phase, and a full end-to-end aggregation.
"""

import numpy as np
import pytest

from repro.core.boundaries import DataBoundaries
from repro.core.calculation import iteration_phase, sampling_phase
from repro.core.config import ISLAConfig
from repro.core.isla import ISLAAggregator
from repro.storage.block import Block
from repro.storage.blockstore import BlockStore


@pytest.fixture(scope="module")
def block_and_boundaries():
    rng = np.random.default_rng(0)
    block = Block.from_values(0, rng.normal(100.0, 20.0, size=500_000))
    boundaries = DataBoundaries.from_sketch(100.1, 20.0)
    return block, boundaries


def test_bench_sampling_phase(benchmark, block_and_boundaries):
    """Algorithm 1 over a 500k-row block at a 10% sampling rate."""
    block, boundaries = block_and_boundaries
    rng = np.random.default_rng(1)
    param_s, param_l, drawn = benchmark(
        sampling_phase, block, "value", 0.1, boundaries, rng
    )
    assert drawn == 50_000
    assert param_s.count > 0 and param_l.count > 0


def test_bench_iteration_phase(benchmark, block_and_boundaries):
    """Algorithm 2 on pre-computed region moments."""
    block, boundaries = block_and_boundaries
    rng = np.random.default_rng(2)
    param_s, param_l, _ = sampling_phase(block, "value", 0.2, boundaries, rng)
    config = ISLAConfig()
    output = benchmark(iteration_phase, param_s, param_l, 100.4, config)
    assert output.converged


def test_bench_end_to_end_aggregation(benchmark):
    """Full pipeline on a 1M-row, 10-block store at e = 0.5."""
    rng = np.random.default_rng(3)
    store = BlockStore.from_array("bench", rng.normal(100.0, 20.0, size=1_000_000),
                                  block_count=10)
    config = ISLAConfig(precision=0.5)

    def run():
        return ISLAAggregator(config, seed=4).aggregate_avg(store)

    result = benchmark(run)
    assert abs(result.value - 100.0) < 1.0
