"""Benchmark and acceptance check for the durable block store.

Measures and verifies, on one synthetic table:

* **cold-open** — opening the on-disk store memory-mapped versus fully
  materialised, and versus rebuilding the table in memory;
* **mmap parity** — a seeded query over the mmap-backed store must be
  bit-identical to the same query over the in-memory store it was saved
  from;
* **recovery** — appends logged to the WAL (plus a deliberately torn tail
  record, as a crash mid-append would leave) must replay on open to the
  exact state — answers and catalog version — of a process that never
  crashed.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_persist.py
    PYTHONPATH=src python benchmarks/bench_persist.py --smoke

``--smoke`` shrinks the table so CI can assert the acceptance properties
in seconds; the two equality checks (mmap parity, recovery parity) are
enforced at every size.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.query.engine import AQPEngine  # noqa: E402
from repro.storage.persist import DurableBlockStore  # noqa: E402

STATEMENT = "SELECT AVG(value) FROM bench_t PRECISION 0.5 CONFIDENCE 0.95"


def run_benchmark(rows: int, blocks: int, seed: int, appends: int) -> dict:
    values = np.random.default_rng(seed).normal(100.0, 20.0, rows)
    workdir = Path(tempfile.mkdtemp(prefix="repro-persist-bench-"))
    store_dir = workdir / "bench_t"
    try:
        # ------------------------------------------------ in-memory baseline
        start = time.perf_counter()
        memory_engine = AQPEngine(seed=seed)
        memory_engine.register_array("bench_t", values, block_count=blocks)
        build_seconds = time.perf_counter() - start
        memory_result = memory_engine.execute(STATEMENT)

        # ------------------------------------------------------ save snapshot
        start = time.perf_counter()
        memory_engine.save("bench_t", store_dir)
        save_seconds = time.perf_counter() - start
        memory_engine.close()

        # ------------------------------------------- cold open, materialised
        start = time.perf_counter()
        DurableBlockStore.open(store_dir, mmap=False).close()
        open_eager_seconds = time.perf_counter() - start

        # --------------------------------------------------- cold open, mmap
        start = time.perf_counter()
        mmap_engine = AQPEngine(seed=seed)
        mmap_engine.open(store_dir, mmap=True)
        open_mmap_seconds = time.perf_counter() - start
        mmap_result = mmap_engine.execute(STATEMENT)
        mmap_parity = mmap_result.value == memory_result.value

        # --------------------------------------------------------- recovery
        # log appends through the WAL, then fake a crash mid-append by
        # leaving a torn record at the tail; no checkpoint happens
        rng = np.random.default_rng(seed + 1)
        logged = [rng.normal(100.0, 20.0, 500) for _ in range(appends)]
        for batch in logged:
            mmap_engine.append_array("bench_t", batch)
        crashed_version = mmap_engine.catalog.version("bench_t")
        mmap_engine.close()
        with open(store_dir / "wal.log", "ab") as handle:
            handle.write(b"RWL1\xff\xff\xff\xff partial record, torn by crash")

        start = time.perf_counter()
        recovered_engine = AQPEngine(seed=seed)
        recovered_engine.open(store_dir, mmap=True)
        recovery_seconds = time.perf_counter() - start
        durable = recovered_engine._durable["bench_t"]
        recovered_result = recovered_engine.execute(STATEMENT)
        recovered_engine.close()

        control_engine = AQPEngine(seed=seed)
        control_engine.register_array("bench_t", values, block_count=blocks)
        for batch in logged:
            control_engine.append_array("bench_t", batch)
        control_result = control_engine.execute(STATEMENT)

        return {
            "rows": rows,
            "blocks": blocks,
            "appends": appends,
            "build_seconds": build_seconds,
            "save_seconds": save_seconds,
            "open_eager_seconds": open_eager_seconds,
            "open_mmap_seconds": open_mmap_seconds,
            "recovery_seconds": recovery_seconds,
            "mmap_parity": mmap_parity,
            "replayed": durable.recovered_appends,
            "torn_discarded": durable.recovered_torn_bytes > 0,
            "recovery_parity": recovered_result.value == control_result.value,
            "version_parity": (
                recovered_engine.catalog.version("bench_t")
                == control_engine.catalog.version("bench_t")
                == crashed_version
            ),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def passed(report: dict) -> bool:
    return bool(
        report["mmap_parity"]
        and report["recovery_parity"]
        and report["version_parity"]
        and report["replayed"] == report["appends"]
        and report["torn_discarded"]
    )


def format_report(report: dict) -> str:
    check = {True: "ok", False: "FAIL"}
    return "\n".join(
        [
            "durable block store benchmark",
            f"  table:            {report['rows']} rows in {report['blocks']} blocks",
            f"  build in memory:  {report['build_seconds'] * 1000:.1f}ms",
            f"  snapshot save:    {report['save_seconds'] * 1000:.1f}ms",
            f"  cold open eager:  {report['open_eager_seconds'] * 1000:.1f}ms",
            f"  cold open mmap:   {report['open_mmap_seconds'] * 1000:.1f}ms",
            f"  crash recovery:   {report['recovery_seconds'] * 1000:.1f}ms "
            f"({report['replayed']}/{report['appends']} appends replayed, "
            f"torn tail discarded: {check[report['torn_discarded']]})",
            f"  mmap scan parity vs in-memory:   {check[report['mmap_parity']]}",
            f"  recovered answer vs never-crashed: {check[report['recovery_parity']]} "
            f"(version match: {check[report['version_parity']]})",
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run with pass/fail assertions (CI)")
    parser.add_argument("--data-size", type=int, default=None,
                        help="rows in the bench table (default 2000000, smoke 120000)")
    parser.add_argument("--blocks", type=int, default=16,
                        help="blocks the table is partitioned into (default 16)")
    parser.add_argument("--appends", type=int, default=8,
                        help="WAL appends logged before the simulated crash")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    rows = args.data_size if args.data_size is not None else (
        120_000 if args.smoke else 2_000_000
    )
    report = run_benchmark(
        rows=rows, blocks=args.blocks, seed=args.seed, appends=args.appends
    )
    print(format_report(report))

    if not passed(report):
        print("SMOKE FAILED" if args.smoke else "CHECKS FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
