"""Chaos benchmark: the serving stack under injected faults.

Runs a concurrent query workload through :class:`~repro.serve.QueryService`
while a fault plan fails partitions, straggles shards and (in a separate
phase) tears WAL frames, then asserts the robustness acceptance
properties:

* **zero hung workers** — every submitted ticket resolves and the worker
  pool drains on close;
* **no unhandled exceptions** — every outcome is ``ok`` (complete or
  degraded), ``failed`` with a typed error, or ``rejected`` with a typed
  reason (``queue_full`` / ``deadline`` / ``circuit_open``);
* **degraded answers stay honest** — each degraded result names its lost
  partitions, carries ``sample_fraction < 1`` and a CI at least as wide as
  requested;
* **no-fault parity** — with injection disabled the chaos harness is the
  plain serving path (same code, one ``None`` check per partition).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_chaos.py
    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro import faults  # noqa: E402
from repro.faults import FaultPlan, FaultSpec, fault_scope  # noqa: E402
from repro.parallel import reset_shared_scan_pool  # noqa: E402
from repro.query.engine import AQPEngine  # noqa: E402
from repro.serve import ServeConfig  # noqa: E402

TABLES = ("orders", "sensors", "trips")


def _build_engine(data_size: int, seed: int, parallelism: int) -> AQPEngine:
    engine = AQPEngine(seed=seed, parallelism=parallelism)
    rng = np.random.default_rng(seed)
    for index, table in enumerate(TABLES):
        values = rng.normal(100.0 + 25.0 * index, 15.0, size=data_size)
        engine.register_array(table, values, block_count=8)
    return engine


def _workload(queries: int) -> list:
    statements = []
    for index in range(queries):
        table = TABLES[index % len(TABLES)]
        precision = (0.5, 0.8, 1.0)[index % 3]
        statements.append(
            f"SELECT AVG(value) FROM {table} PRECISION {precision} CONFIDENCE 0.95"
        )
    return statements


def _run_serving_phase(engine, statements, plan, workers: int):
    config = ServeConfig(
        workers=workers,
        max_queue=max(64, len(statements)),
        cache_enabled=False,  # every query must execute under chaos
        breaker_enabled=False,  # count raw failures; the breaker test is separate
    )
    scope = fault_scope(plan) if plan is not None else None
    started = time.perf_counter()
    if scope is not None:
        with scope:
            with engine.serve(config=config) as service:
                outcomes = service.execute_many(statements, timeout=120.0)
                stats = service.stats()
                health = service.health()
    else:
        with engine.serve(config=config) as service:
            outcomes = service.execute_many(statements, timeout=120.0)
            stats = service.stats()
            health = service.health()
    elapsed = time.perf_counter() - started
    return outcomes, stats, health, elapsed


def _classify(outcomes):
    buckets = {"ok": 0, "degraded": 0, "failed": 0, "rejected": 0, "untyped": 0}
    for outcome in outcomes:
        if outcome.status == "ok":
            if outcome.result is not None and outcome.result.degraded:
                buckets["degraded"] += 1
            else:
                buckets["ok"] += 1
        elif outcome.status == "failed" and outcome.error is not None:
            buckets["failed"] += 1
        elif outcome.status == "rejected" and outcome.rejection is not None:
            buckets["rejected"] += 1
        else:
            buckets["untyped"] += 1
    return buckets


def _check_degraded_honesty(outcomes, failures):
    for outcome in outcomes:
        if outcome.status != "ok" or not outcome.result.degraded:
            continue
        result = outcome.result
        if not result.failed_partitions:
            failures.append(
                f"degraded answer without failed partitions: {outcome.statement}"
            )
        if not 0.0 < result.sample_fraction < 1.0:
            failures.append(
                f"degraded sample_fraction {result.sample_fraction} out of (0, 1)"
            )
        requested = result.details.get("precision")
        low = result.details.get("interval_low")
        high = result.details.get("interval_high")
        if requested is not None and low is not None and high is not None:
            if (high - low) / 2.0 < requested * 0.999:
                failures.append(
                    f"degraded CI narrower than requested: {outcome.statement}"
                )


def _wal_tear_phase(tmp_root: Path, appends: int) -> dict:
    """Tear a fraction of WAL appends, then prove recovery is consistent."""
    from repro.errors import InjectedFault
    from repro.storage.blockstore import BlockStore
    from repro.storage.persist import DurableBlockStore

    directory = tmp_root / "chaos-wal"
    base = BlockStore.from_array(
        "walchaos", np.random.default_rng(5).normal(50.0, 5.0, 4_000), block_count=4
    )
    durable = DurableBlockStore.create(base, directory)
    plan = FaultPlan(
        seed=13, specs=(FaultSpec(site="wal.torn_frame", rate=0.3),)
    )
    applied = torn = 0
    with fault_scope(plan):
        for index in range(appends):
            try:
                durable.append_block(np.full(100, float(index)))
                applied += 1
            except InjectedFault:
                torn += 1
                break  # a torn log tail must be recovered before appending
    durable.close()
    recovered = DurableBlockStore.open(directory)
    consistent = recovered.store.total_rows == base.total_rows + applied * 100
    recovered.close()
    return {
        "appends_attempted": applied + torn,
        "appends_applied": applied,
        "torn_frames": torn,
        "recovery_consistent": consistent,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run with pass/fail assertions (CI)")
    parser.add_argument("--data-size", type=int, default=None,
                        help="rows per synthetic table (default 120000, smoke 16000)")
    parser.add_argument("--queries", type=int, default=None,
                        help="workload size (default 120, smoke 45)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--failure-rate", type=float, default=0.25,
                        help="per-partition injected failure rate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tmp", type=str, default=None,
                        help="scratch directory for the WAL phase")
    args = parser.parse_args(argv)

    data_size = args.data_size or (16_000 if args.smoke else 120_000)
    queries = args.queries or (45 if args.smoke else 120)
    failures: list = []

    faults.clear()
    reset_shared_scan_pool()
    statements = _workload(queries)

    # ------------------------------------------------- phase 1: no faults
    engine = _build_engine(data_size, args.seed, parallelism=4)
    baseline_outcomes, _, _, baseline_elapsed = _run_serving_phase(
        engine, statements, plan=None, workers=args.workers
    )
    baseline_buckets = _classify(baseline_outcomes)
    print(f"phase 1  no faults        {queries} queries in {baseline_elapsed:.2f}s "
          f"-> {baseline_buckets}")
    if baseline_buckets["ok"] != queries:
        failures.append(f"no-fault phase not fully ok: {baseline_buckets}")

    # --------------------------------------- phase 2: partition failures
    chaos_plan = FaultPlan(
        seed=args.seed + 1,
        specs=(
            FaultSpec(site="scan.partition", rate=args.failure_rate),
            FaultSpec(site="scan.straggler", rate=0.1, delay_ms=20.0,
                      once_per_key=True),
        ),
    )
    engine = _build_engine(data_size, args.seed, parallelism=4)
    chaos_outcomes, chaos_stats, chaos_health, chaos_elapsed = _run_serving_phase(
        engine, statements, plan=chaos_plan, workers=args.workers
    )
    chaos_buckets = _classify(chaos_outcomes)
    print(f"phase 2  chaos rate={args.failure_rate:g}  {queries} queries in "
          f"{chaos_elapsed:.2f}s -> {chaos_buckets}")
    if chaos_buckets["untyped"]:
        failures.append(f"{chaos_buckets['untyped']} outcomes without typed status")
    if chaos_buckets["degraded"] == 0:
        failures.append("chaos phase produced no degraded answers")
    _check_degraded_honesty(chaos_outcomes, failures)
    if chaos_health["workers_alive"] != args.workers:
        failures.append(
            f"hung workers: {chaos_health['workers_alive']}/{args.workers} alive"
        )
    answered = chaos_buckets["ok"] + chaos_buckets["degraded"]
    total_accounted = (
        answered + chaos_buckets["failed"] + chaos_buckets["rejected"]
    )
    if total_accounted != queries:
        failures.append(
            f"outcome accounting mismatch: {total_accounted} != {queries}"
        )
    print(f"         degraded={chaos_stats['degraded']} "
          f"rejected={chaos_stats['rejected']} retries={chaos_stats['retries']}")

    # ------------------------------------------------ phase 3: WAL tears
    import tempfile

    tmp_root = Path(args.tmp) if args.tmp else Path(tempfile.mkdtemp(prefix="chaos-"))
    wal_report = _wal_tear_phase(tmp_root, appends=20)
    print(f"phase 3  wal tears        {wal_report}")
    if not wal_report["recovery_consistent"]:
        failures.append("WAL recovery inconsistent after torn frame")

    # --------------------------------------------------------- verdict
    faults.clear()
    if args.smoke:
        if failures:
            print("\nSMOKE FAILURES:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nsmoke ok: no hung workers, all outcomes typed, "
              "degraded answers honest, WAL recovery consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
