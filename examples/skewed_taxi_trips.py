#!/usr/bin/env python3
"""Skewed real-world-like data: average trip distance over a taxi-trip column.

This is the scenario of the paper's Section VIII-G (NYC TLC yellow-cab data):
the column is heavily skewed — most trips are short, a cluster of airport
trips is much longer, and a handful of bogus GPS glitches are enormous.
Uniform sampling is easily thrown off when a glitch lands in the sample;
ISLA's leverage regions damp exactly that effect.

The original data set is not redistributable, so the column is synthesised
with the same qualitative structure (see DESIGN.md §4).

Run with:  python examples/skewed_taxi_trips.py
"""

from __future__ import annotations

from repro import ISLAAggregator, ISLAConfig
from repro.sampling import (
    MeasureBiasedBoundaryAggregator,
    MeasureBiasedValueAggregator,
    StratifiedAggregator,
    UniformAggregator,
)
from repro.stats.distributions import summarize
from repro.workloads.tlc import TripDistanceGenerator


def main() -> None:
    generator = TripDistanceGenerator(rows=800_000, seed=11)
    store = generator.generate_store("tlc_trips", block_count=10)
    column = store.default_column
    truth = store.exact_mean(column)

    shape = summarize(store.full_column(column))
    print("simulated TLC trip_distance column (x1000, as in the paper)")
    print(f"  rows      : {shape.count}")
    print(f"  exact mean: {truth:.2f}")
    print(f"  std       : {shape.std:.2f}")
    print(f"  skewness  : {shape.skewness:.2f}")
    print(f"  p25/median/p75: {shape.p25:.0f} / {shape.median:.0f} / {shape.p75:.0f}")
    print(f"  max       : {shape.maximum:.0f}")

    # The paper gives the baselines twice the sample budget of ISLA.
    baseline_rate = 20_000 / store.total_rows
    isla_rate = baseline_rate / 2.0

    config = ISLAConfig(precision=shape.std / 100.0)
    methods = {
        "ISLA (half budget)": lambda: ISLAAggregator(config, seed=3).aggregate_avg(
            store, column, rate=isla_rate).value,
        "US": lambda: UniformAggregator(seed=3).aggregate(
            store, column, rate=baseline_rate).value,
        "STS": lambda: StratifiedAggregator(seed=4).aggregate(
            store, column, rate=baseline_rate).value,
        "MV": lambda: MeasureBiasedValueAggregator(seed=5).aggregate(
            store, column, rate=baseline_rate).value,
        "MVB": lambda: MeasureBiasedBoundaryAggregator(seed=6).aggregate(
            store, column, rate=baseline_rate).value,
    }

    print("\nmethod comparison (error vs exact mean)")
    print(f"  {'method':20s} {'estimate':>12s} {'abs error':>12s} {'rel error':>10s}")
    for name, runner in methods.items():
        estimate = runner()
        error = abs(estimate - truth)
        print(f"  {name:20s} {estimate:12.2f} {error:12.2f} {error / truth:10.2%}")


if __name__ == "__main__":
    main()
