#!/usr/bin/env python3
"""Distributed / non-i.i.d. aggregation across heterogeneous warehouse shards.

The paper's deployment story (Sections II-C, VII-C and VII-E): data live in
blocks on different machines, each block may follow its own local
distribution, and partial answers are combined by a coordinator.  This example
builds five shards with very different local distributions (the exact setup of
the paper's non-i.i.d. experiment), then compares:

* the plain i.i.d. ISLA pipeline (single global boundaries),
* the non-i.i.d. extension (per-block boundaries + variance-weighted rates),
* the thread-parallel executor, and
* round-trips the store through the paper's ``.txt`` block files.

Run with:  python examples/distributed_warehouse.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ISLAAggregator, ISLAConfig
from repro.extensions.distributed import ParallelISLAAggregator
from repro.extensions.noniid import NonIIDAggregator
from repro.storage.textio import read_blocks_from_directory, write_blocks_to_directory
from repro.workloads.noniid import NonIIDWorkload


def main() -> None:
    workload = NonIIDWorkload.paper_blocks(rows_per_block=150_000)
    store = workload.generate_store("warehouse", seed=21)
    truth = workload.true_mean()
    print("five warehouse shards with different local distributions")
    for block in store.blocks:
        values = block.column("value")
        print(f"  shard {block.block_id}: {block.size} rows, "
              f"local mean {values.mean():8.2f}, local std {values.std():6.2f}")
    print(f"  global (row-weighted) true mean: {truth:.3f}")

    config = ISLAConfig(precision=0.5)

    plain = ISLAAggregator(config, seed=5).aggregate_avg(store)
    noniid = NonIIDAggregator(config, seed=5).aggregate_avg(store)
    parallel = ParallelISLAAggregator(config, max_workers=4, seed=5).aggregate_avg(store)

    print("\nmethod comparison")
    for name, result in (
        ("ISLA (global boundaries)", plain),
        ("ISLA non-i.i.d. extension", noniid),
        ("ISLA thread-parallel", parallel),
    ):
        print(f"  {name:28s} estimate={result.value:9.3f} "
              f"error={abs(result.value - truth):6.3f} "
              f"samples={result.sample_size:7d} "
              f"elapsed={result.elapsed_seconds * 1000:7.1f} ms")

    # --- the paper's on-disk layout: one .txt file per block ---------------
    with tempfile.TemporaryDirectory() as tmp:
        paths = write_blocks_to_directory(store, tmp)
        loaded = read_blocks_from_directory(Path(tmp), name="warehouse_from_disk")
        roundtrip = NonIIDAggregator(config, seed=6).aggregate_avg(loaded)
        print(f"\nround-trip through {len(paths)} block .txt files: "
              f"estimate={roundtrip.value:.3f} (error {abs(roundtrip.value - truth):.3f})")


if __name__ == "__main__":
    main()
