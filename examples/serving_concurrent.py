#!/usr/bin/env python3
"""Serving concurrent queries with the worker pool and precision-aware cache.

The scenario: a dashboard fires the same handful of aggregate questions over
and over, with mixed error budgets.  A ``QueryService`` answers them through
a bounded worker pool; because every answer carries its achieved
precision/confidence, repeats with an equal-or-looser budget are served
straight from the result cache without touching a single block.  The script
also demonstrates load shedding under a tiny admission queue and cache
invalidation when new data is appended.

Run with:  PYTHONPATH=src python examples/serving_concurrent.py
"""

from __future__ import annotations

import numpy as np

from repro import AQPEngine, ServeConfig
from repro.serve import QueryService


def main() -> None:
    # ------------------------------------------------------------------ data
    rng = np.random.default_rng(7)
    engine = AQPEngine(seed=42)
    engine.register_array("sensors", rng.normal(100.0, 20.0, 500_000), block_count=16)
    engine.register_array("billing", rng.lognormal(3.0, 0.4, 500_000), block_count=16)
    truth = {name: engine.catalog.resolve(name).exact_mean() for name in engine.tables}
    print(f"tables: {', '.join(engine.tables)}  "
          f"(exact AVGs: {', '.join(f'{v:.2f}' for v in truth.values())})")

    # --------------------------------------------------- a repeated workload
    unique = [
        "SELECT AVG(value) FROM sensors PRECISION 0.5 CONFIDENCE 0.95",
        "SELECT AVG(value) FROM sensors PRECISION 1.0 CONFIDENCE 0.95",
        "SELECT AVG(value) FROM billing PRECISION 0.5 CONFIDENCE 0.95",
        "SELECT AVG(value) FROM billing PRECISION 1.0 CONFIDENCE 0.95",
    ]
    workload = unique * 5

    with engine.serve(workers=4, seed=7) as service:
        outcomes = service.execute_many(workload)
        hits = sum(1 for outcome in outcomes if outcome.cache_hit)
        print(f"\nserved {len(outcomes)} queries with 4 workers: "
              f"{hits} from cache/coalescing, {len(outcomes) - hits} executed")
        for outcome in outcomes[:4]:
            result = outcome.result
            err = abs(result.value - truth[result.table])
            print(f"  {result.table:8s} ~= {result.value:9.4f}  "
                  f"err={err:.4f}  cache_hit={outcome.cache_hit}")
        print(f"stats: {service.stats()['cache']}")

        # ------------------------------- appends invalidate cached answers
        engine.append_array("sensors", rng.normal(140.0, 5.0, 100_000))
        fresh = service.submit(unique[1]).outcome()
        print(f"\nafter appending 100k hot readings: sensors AVG ~= "
              f"{fresh.result.value:.3f} (cache_hit={fresh.cache_hit}, "
              f"recomputed on the new table version)")

    # ------------------------------------------------ overload: load shedding
    overloaded = QueryService(engine, ServeConfig(workers=1, max_queue=2, seed=1))
    with overloaded:
        tickets = [overloaded.submit(statement) for statement in workload[:8]]
        outcomes = [ticket.outcome() for ticket in tickets]
    shed = [outcome for outcome in outcomes if outcome.status == "rejected"]
    print(f"\nunder a max_queue=2 single-worker service, {len(shed)}/8 queries "
          f"were shed with typed Rejected outcomes "
          f"({shed[0].rejection.reason if shed else 'none'})")


if __name__ == "__main__":
    main()
