#!/usr/bin/env python3
"""Quickstart: approximate AVG aggregation with ISLA in a few lines.

The scenario mirrors the paper's default setup: a numeric column drawn from
N(100, 20^2), partitioned into 10 blocks, queried with a desired precision of
0.1 at 95% confidence.  The script compares the ISLA answer with the exact
full-scan mean and with plain uniform sampling, and also shows the SQL-style
front-end.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AQPEngine, BlockStore, ISLAAggregator, ISLAConfig
from repro.sampling import UniformAggregator


def main() -> None:
    # ------------------------------------------------------------------ data
    rng = np.random.default_rng(7)
    values = rng.normal(100.0, 20.0, size=1_000_000)
    store = BlockStore.from_array("sensor_readings", values, block_count=10)
    exact = store.exact_mean()
    print(f"data: {store.total_rows} rows in {store.block_count} blocks, "
          f"exact AVG = {exact:.4f}")

    # ------------------------------------------------------- programmatic API
    config = ISLAConfig(precision=0.1, confidence=0.95)
    result = ISLAAggregator(config, seed=42).aggregate_avg(store)
    print("\nISLA (programmatic API)")
    print(f"  estimate        : {result.value:.4f}")
    print(f"  absolute error  : {abs(result.value - exact):.4f}  "
          f"(target precision {config.precision})")
    print(f"  sampling rate   : {result.sampling_rate:.5f}")
    print(f"  samples drawn   : {result.sample_size}")
    print(f"  S/L samples used: {result.participating_samples}")
    print(f"  sketch estimator: {result.sketch0:.4f}")
    for block in result.block_results[:3]:
        print(f"  block {block.block_id}: partial={block.estimate:.4f} "
              f"case={block.case} iterations={block.iterations}")

    # -------------------------------------------------------------- baseline
    uniform = UniformAggregator(seed=42).aggregate(
        store, precision=config.precision, confidence=config.confidence
    )
    print("\nUniform sampling baseline")
    print(f"  estimate        : {uniform.value:.4f}")
    print(f"  absolute error  : {abs(uniform.value - exact):.4f}")
    print(f"  samples drawn   : {uniform.sample_size}")

    # ------------------------------------------------------------- SQL front
    engine = AQPEngine(seed=42)
    engine.register_store(store)
    statement = "SELECT AVG(value) FROM sensor_readings PRECISION 0.1 CONFIDENCE 0.95"
    print("\nSQL front-end")
    print(f"  {statement}")
    print(f"  plan  : {engine.explain(statement)}")
    answer = engine.execute(statement)
    print(f"  answer: {answer.value:.4f} via {answer.method} "
          f"({answer.sample_size} samples, {answer.elapsed_seconds * 1000:.1f} ms)")

    # SUM comes for free from AVG.
    total = engine.execute("SELECT SUM(value) FROM sensor_readings PRECISION 0.1")
    print(f"  SUM estimate: {total.value:,.0f} (exact {store.exact_sum():,.0f})")


if __name__ == "__main__":
    main()
