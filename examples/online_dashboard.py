#!/usr/bin/env python3
"""Online (progressive) aggregation driving a latency-bounded dashboard.

Two of the paper's extensions in one scenario:

* **Online mode (Section VII-A).**  A dashboard first shows a coarse answer,
  then keeps refining it with additional sampling rounds.  Because ISLA keeps
  only the per-region power sums, every refinement reuses all previous work
  without storing a single sample.
* **Time-constrained mode (Section VII-F).**  The same dashboard can instead
  ask for "the best answer you can give me in 200 ms".

Run with:  python examples/online_dashboard.py
"""

from __future__ import annotations

from repro import ISLAConfig
from repro.extensions.online import OnlineAggregator
from repro.extensions.time_constraint import TimeConstrainedAggregator
from repro.workloads.synthetic import MixtureWorkload, NormalWorkload


def main() -> None:
    # A request-latency column (milliseconds): two overlapping service-time
    # clusters — the "superimposed normals" shape the paper argues real data
    # usually takes (Section VII-B).
    workload = MixtureWorkload(
        600_000,
        components=[
            NormalWorkload(600_000, mean=230.0, std=30.0),
            NormalWorkload(600_000, mean=270.0, std=30.0),
        ],
        weights=[0.5, 0.5],
        seed=13,
    )
    store = workload.generate_store("latencies", block_count=10)
    truth = store.exact_mean()
    print(f"latency column: {store.total_rows} rows, exact mean {truth:.2f} ms")

    # ----------------------------------------------------------- online mode
    config = ISLAConfig(precision=truth * 0.01)
    online = OnlineAggregator(config, seed=29)
    result = online.start(store, initial_rate=0.002)
    print("\nprogressive refinement")
    print(f"  round 1: estimate={result.value:10.2f} error={abs(result.value - truth):8.2f} "
          f"samples={result.sample_size}")
    for round_number in range(2, 6):
        result = online.refine(additional_rate=0.002)
        print(f"  round {round_number}: estimate={result.value:10.2f} "
              f"error={abs(result.value - truth):8.2f} samples={result.sample_size}")

    # --------------------------------------------------- time-constrained mode
    print("\ntime-constrained answers")
    timed = TimeConstrainedAggregator(config, seed=31)
    for budget_ms in (100, 400):
        answer = timed.aggregate_within(store, budget_seconds=budget_ms / 1000.0)
        print(f"  budget {budget_ms:4d} ms: estimate={answer.value:10.2f} "
              f"error={abs(answer.value - truth):8.2f} "
          f"achieved precision={answer.precision:8.2f} "
              f"elapsed={answer.elapsed_seconds * 1000:6.1f} ms")


if __name__ == "__main__":
    main()
