#!/usr/bin/env python3
"""Degraded-mode execution: losing partitions widens the CI, honestly.

The scenario: a table of 8 partitions is queried twice — once healthy, once
under a fault plan that kills 2 of the 8 partitions mid-scan.  The degraded
answer is still statistically valid: the estimate re-weights over the six
surviving partitions and the confidence interval *widens* by
``sqrt(planned_samples / surviving_samples)`` at the same confidence level,
so the lost data is paid for in interval width, never hidden.

The same chaos can be driven without code changes by exporting the plan::

    REPRO_FAULTS='{"seed": 0, "specs": [{"site": "scan.partition",
        "keys": [2, 5]}]}' python your_app.py

Run with:  python examples/chaos_degraded.py
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro import AQPEngine
from repro.faults import FaultPlan, FaultSpec, fault_scope

STMT = "SELECT AVG(value) FROM sensors PRECISION 0.5 CONFIDENCE 0.95"


def describe(label, result, exact):
    interval = result.details
    low, high = interval["interval_low"], interval["interval_high"]
    print(f"\n{label}")
    print(f"  estimate          : {result.value:.4f}   (exact {exact:.4f})")
    print(f"  absolute error    : {abs(result.value - exact):.4f}")
    print(f"  interval          : [{low:.4f}, {high:.4f}]  "
          f"half-width {(high - low) / 2:.4f}")
    print(f"  degraded          : {result.degraded}")
    print(f"  failed partitions : {list(result.failed_partitions) or '-'}")
    print(f"  sample fraction   : {result.sample_fraction:.3f}")


def main() -> None:
    rng = np.random.default_rng(7)
    values = rng.normal(100.0, 20.0, size=400_000)

    engine = AQPEngine(seed=42, parallelism=4)
    engine.register_array("sensors", values, block_count=8)
    exact = engine.catalog.resolve("sensors").exact_mean()
    print(f"data: 400000 rows in 8 partitions, exact AVG = {exact:.4f}")

    # ------------------------------------------------------ healthy query
    healthy = engine.execute(STMT)
    describe("healthy (8/8 partitions)", healthy, exact)

    # ------------------------------------- same query, 2 partitions killed
    plan = FaultPlan(
        seed=0,
        specs=(FaultSpec(site="scan.partition", tables=("sensors",), keys=(2, 5)),),
    )
    with fault_scope(plan):
        degraded = engine.execute(STMT)
    describe("degraded (6/8 partitions)", degraded, exact)

    healthy_hw = (
        healthy.details["interval_high"] - healthy.details["interval_low"]
    ) / 2
    degraded_hw = (
        degraded.details["interval_high"] - degraded.details["interval_low"]
    ) / 2
    print(f"\nthe interval widened {degraded_hw / healthy_hw:.2f}x "
          f"(expected ~ sqrt(8/6) = {np.sqrt(8 / 6):.2f}) — the two lost "
          f"partitions are paid for in width, at the same 95% confidence")
    assert degraded.degraded and not healthy.degraded
    assert degraded_hw > healthy_hw


if __name__ == "__main__":
    main()
