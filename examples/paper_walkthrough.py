#!/usr/bin/env python3
"""Walk through the paper's own worked example and core machinery step by step.

This example reproduces, with library calls, the small leverage computation of
the paper's Example 1 (Section IV-B, Table II) and then shows how the same
quantities feed Theorem 3's closed form and the iterative modulation.  It is
meant as executable documentation of the algorithm's internals.

Run with:  python examples/paper_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.core.accumulators import RegionMoments
from repro.core.boundaries import DataBoundaries
from repro.core.config import ISLAConfig
from repro.core.leverage import LeverageNormalizer
from repro.core.modulation import IterativeModulator, classify_case
from repro.core.objective import ObjectiveFunction
from repro.core.probability import leverage_based_average


def main() -> None:
    # ----- the paper's Example 1 (Section IV-B) ----------------------------
    # Data set {1,2,2,3,4,4,5,5,6,6,7,8,9,10,15}, sample {2,3,4,5,6,7,8,15},
    # sketch0 = 6.2, p1*sigma = 1, p2*sigma = 3, alpha = 0.1.
    sample = np.array([2, 3, 4, 5, 6, 7, 8, 15], dtype=float)
    boundaries = DataBoundaries(ts_s=6.2 - 3, s_n=6.2 - 1, n_l=6.2 + 1, l_tl=6.2 + 3)
    s_values, l_values = boundaries.split_sl(sample)
    print("paper Example 1")
    print(f"  S samples: {s_values.tolist()}   L samples: {l_values.tolist()}")

    normalizer = LeverageNormalizer(s_values, l_values, q=1.0)
    raw_s, raw_l = normalizer.raw()
    fac_s, fac_l = normalizer.normalization_factors()
    norm_s, norm_l = normalizer.normalized()
    print(f"  raw leverages  S={np.round(raw_s, 4).tolist()} L={np.round(raw_l, 4).tolist()}")
    print(f"  normalisation factors: fac_S={fac_s:.4f}  fac_L={fac_l:.4f}")
    print(f"  normalised leverages S={np.round(norm_s, 4).tolist()} "
          f"L={np.round(norm_l, 4).tolist()}  (sum={norm_s.sum() + norm_l.sum():.4f})")

    estimate, prob_s, prob_l = leverage_based_average(s_values, l_values, alpha=0.1)
    print(f"  probabilities S={np.round(prob_s, 4).tolist()} L={np.round(prob_l, 4).tolist()}")
    print(f"  leverage-based answer at alpha=0.1: {estimate:.4f} "
          f"(uniform answer {sample.mean():.4f}, accurate average 5.8)")

    # ----- Theorem 3: the same computation from power sums only ------------
    param_s = RegionMoments.from_values(s_values)
    param_l = RegionMoments.from_values(l_values)
    objective = ObjectiveFunction.from_moments(param_s, param_l, q=1.0)
    print("\nTheorem 3 closed form")
    print(f"  k = {objective.k:.4f}, c = {objective.c:.4f}")
    print(f"  mu_hat(0.1) = {objective.l_estimator(0.1):.4f} "
          f"(matches the explicit computation above)")

    # ----- the iterative modulation on a realistic block -------------------
    rng = np.random.default_rng(0)
    block_sample = rng.normal(100.0, 20.0, size=20_000)
    sketch0 = 100.9  # a deliberately biased sketch
    config = ISLAConfig(precision=0.1)
    block_boundaries = DataBoundaries.from_sketch(sketch0, 20.0, config.p1, config.p2)
    s_vals, l_vals = block_boundaries.split_sl(block_sample)
    param_s = RegionMoments.from_values(s_vals)
    param_l = RegionMoments.from_values(l_vals)
    objective = ObjectiveFunction.from_moments(param_s, param_l)
    case = classify_case(objective.initial_value(sketch0), param_s.count, param_l.count,
                         config.balance_tolerance, contradiction_band=config.moderate_band)
    outcome = IterativeModulator(config, keep_trace=True).run(objective, sketch0, case=case)
    print("\niterative modulation on a biased sketch (true mean 100, sketch0 100.9)")
    print(f"  |S|={param_s.count}  |L|={param_l.count}  case={case.value}  "
          f"D0={objective.initial_value(sketch0):+.4f}")
    for record in outcome.trace[:6]:
        print(f"  iter {record.iteration}: D={record.d_value:+.5f} "
              f"alpha={record.alpha:+.5f} sketch={record.sketch:.4f} "
              f"mu_hat={record.l_estimate:.4f}")
    print(f"  converged after {outcome.iterations} iterations; "
          f"final estimate {outcome.estimate:.4f}")


if __name__ == "__main__":
    main()
