"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. offline environments where ``pip install -e .`` cannot build
an editable wheel).  When the package *is* installed this is a harmless
no-op because the installed distribution takes the same import name.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
